"""Parallel scaling: partial/merge clones vs the Figure-2 methods.

Reproduces the paper's resource-utilization argument on one host:

1. the speed-up of cloning the partial operator (the paper's Option 1),
2. Method B (restarts in parallel) on the same cell,
3. Method C (distance-partitioned) with its message-passing ledger.

Run:  python examples/parallel_scaling.py
"""

from repro.baselines import (
    method_b_restarts_in_parallel,
    method_c_distance_partitioned,
)
from repro.data import generate_cell_points
from repro.experiments import render_speedup, run_speedup_experiment


def main() -> None:
    speedups = run_speedup_experiment(
        n_points=20_000,
        k=40,
        restarts=3,
        n_chunks=8,
        clone_counts=(1, 2, 4),
        seed=3,
    )
    print(render_speedup(speedups))
    print()

    points = generate_cell_points(20_000, seed=3)

    model_b = method_b_restarts_in_parallel(
        points, k=40, restarts=4, max_workers=4, seed=3, max_iter=100
    )
    print(
        f"Method B (4 restarts on 4 workers): mse={model_b.mse:.2f} "
        f"t={model_b.total_seconds:.2f}s"
    )

    model_c, stats = method_c_distance_partitioned(
        points, k=40, n_slaves=4, seed=3, max_iter=100
    )
    print(
        f"Method C (4 slaves)               : mse={model_c.mse:.2f} "
        f"t={model_c.total_seconds:.2f}s"
    )
    print(
        f"  message ledger: {stats.broadcasts} mean broadcasts, "
        f"{stats.migrated_points} point migrations over "
        f"{stats.iterations} iterations"
    )
    print(
        "\nMethod C matches serial quality but pays per-iteration"
        "\ncommunication; partial/merge sends each point once and each"
        "\npartition's k weighted centroids once."
    )


if __name__ == "__main__":
    main()
