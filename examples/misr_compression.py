"""End-to-end MISR compression scenario — the paper's Section 1 use case.

Pipeline:

1. fly a simulated polar orbiter for several orbits (swath stripes),
2. bin the footprints into 1-degree grid buckets (one-pass scan),
3. persist the buckets in the binary grid-bucket format,
4. cluster each sufficiently-populated bucket with partial/merge k-means,
5. build the multivariate histogram (non-equi-depth buckets) per cell and
   report compression ratio and fidelity.

Run:  python examples/misr_compression.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.compression import (
    Codebook,
    MultivariateHistogram,
    moment_preservation_error,
    random_query_boxes,
    range_query_relative_errors,
)
from repro.core import PartialMergeKMeans
from repro.data import (
    SwathSimulator,
    bin_stripes_into_buckets,
    scan_bucket_dir,
    write_bucket_dir,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # 1-2. Acquire and bin.  Each geolocated footprint records a block of
    # pixel measurements, so cells fill up the way real MISR buckets do.
    simulator = SwathSimulator(
        footprints_per_orbit=1_500, samples_per_footprint=60, seed=11
    )
    buckets = bin_stripes_into_buckets(simulator.fly(n_orbits=2))
    print(f"swath produced {len(buckets)} touched grid cells")

    # Keep only cells with enough points to be worth compressing.
    populated = sorted(
        (b for b in buckets.values() if b.n_points >= 150),
        key=lambda b: -b.n_points,
    )
    cells = [bucket.freeze(rng) for bucket in populated[:8]]
    print(f"compressing the {len(cells)} most populated cells\n")

    with tempfile.TemporaryDirectory() as workdir:
        # 3. Persist and re-scan (the one-pass disk path).
        write_bucket_dir(Path(workdir), cells)

        header = (
            f"{'cell':>14} {'points':>7} {'k':>3} {'mse':>10} "
            f"{'ratio':>7} {'mean err':>9} {'query p50':>10}"
        )
        print(header)
        print("-" * len(header))

        for cell in scan_bucket_dir(workdir):
            k = min(20, max(4, cell.n_points // 30))
            report = PartialMergeKMeans(
                k=k, restarts=3, n_chunks=4, seed=1
            ).fit(cell.points)
            model = report.model

            histogram = MultivariateHistogram.from_model(cell.points, model)
            codebook = Codebook.from_model(model)
            centroids, counts = histogram.reconstruct()
            moments = moment_preservation_error(cell.points, centroids, counts)
            queries = random_query_boxes(cell.points, 32, rng)
            query_errors = range_query_relative_errors(
                cell.points, histogram, queries
            )

            print(
                f"{cell.cell_id.key:>14} {cell.n_points:>7} {k:>3} "
                f"{model.mse:>10.2f} {codebook.compression_ratio(cell.n_points):>6.1f}x "
                f"{moments['mean_relative_error']:>9.4f} "
                f"{float(np.median(query_errors)):>10.3f}"
            )

    print(
        "\nratio: raw bytes / (codebook + index stream); mean err: relative"
        "\nerror of the reconstructed cell mean; query p50: median relative"
        "\nerror of 32 range-count queries answered from the histogram."
    )


if __name__ == "__main__":
    main()
