"""Global analysis over compressed cells — the EOSDIS end game.

The point of compressing 64,800 grid cells is that science then runs on
the summaries.  This example does the whole loop at laptop scale:

1. build a skewed multi-cell workload (a "monthly summary"),
2. cluster every cell with the streamed partial/merge engine,
3. compress each cell into a multivariate histogram,
4. assemble a GlobalSummary and answer the questions a researcher asks:
   regional means, attribute-range selectivities, coverage statistics —
   all without touching the raw points again.

Run:  python examples/global_analysis.py
"""

import numpy as np

from repro.compression import GlobalSummary, MultivariateHistogram, Region
from repro.data import build_monthly_workload
from repro.stream import ResourceManager, run_partial_merge_stream


def main() -> None:
    workload = build_monthly_workload(
        n_cells=10, median_points=4_000, max_points=20_000, seed=8
    )
    sizes = workload.size_distribution()
    print(
        f"workload: {workload.n_cells} cells, "
        f"{workload.total_points:,} points "
        f"(median cell {sizes['median']:.0f}, max {sizes['max']:.0f})\n"
    )

    resources = ResourceManager(memory_budget_bytes=2 * 1024 * 1024)
    models, outcome = run_partial_merge_stream(
        workload.cells, k=24, restarts=3, resources=resources,
        seed=0, max_iter=80,
    )
    print(
        f"clustered every cell in {outcome.metrics.wall_seconds:.2f}s "
        f"(partial operators never held more than "
        f"{resources.max_points_per_partition(6):,} points)\n"
    )

    summary = GlobalSummary(dim=6)
    for key, model in models.items():
        histogram = MultivariateHistogram.from_model(
            workload.cells[key], model
        )
        summary.add_cell(workload.cell_ids[key], histogram)

    print(f"global summary: {len(summary)} cells, "
          f"{summary.total_count():,.0f} points, "
          f"compression ratio {summary.compression_ratio():.1f}x\n")

    # Question 1: the global attribute mean (exact from the summaries).
    global_mean = summary.mean()
    raw_mean = np.vstack(list(workload.cells.values())).mean(axis=0)
    print("global mean, summary vs raw:")
    print(f"  summary: {np.array2string(global_mean, precision=3)}")
    print(f"  raw    : {np.array2string(raw_mean, precision=3)}")

    # Question 2: a regional mean over the northern hemisphere.
    north = Region(0.0, 90.0, -180.0, 180.0)
    if summary.cells_in(north):
        print(
            f"\nnorthern hemisphere: {len(summary.cells_in(north))} cells, "
            f"{summary.total_count(north):,.0f} points, "
            f"mean[0]={summary.mean(north)[0]:.3f}"
        )

    # Question 3: selectivity — how many measurements resemble a typical
    # measurement of the busiest cell?  (The global mean sits in empty
    # space between cell regimes, so the probe centres on real density.)
    busiest_key = max(
        workload.cells, key=lambda key: workload.cells[key].shape[0]
    )
    probe = workload.cells[busiest_key].mean(axis=0)
    half_width = workload.cells[busiest_key].std(axis=0)
    estimate = summary.estimate_count(probe - half_width, probe + half_width)
    raw_points = np.vstack(list(workload.cells.values()))
    inside = (
        np.logical_and(
            raw_points >= probe - half_width,
            raw_points <= probe + half_width,
        )
        .all(axis=1)
        .sum()
    )
    print(
        f"\nrange query (±1 sigma around {busiest_key}'s mean): "
        f"estimated {estimate:,.0f}, true {inside:,} "
        f"({abs(estimate - inside) / max(inside, 1):.1%} error)"
    )

    # Question 4: coverage — which cells carry the most data?
    grid = summary.coverage_grid("count")
    top = np.argsort(grid.ravel())[-3:][::-1]
    print("\nbusiest cells:")
    for flat_index in top:
        lat, lon = np.unravel_index(flat_index, grid.shape)
        print(
            f"  lat{lat - 90:+d} lon{lon - 180:+d}: "
            f"{grid[lat, lon]:,.0f} points"
        )


if __name__ == "__main__":
    main()
