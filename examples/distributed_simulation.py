"""Simulate the paper's 4-PC deployment on this machine.

The original evaluation ran on four Pentium-4 PCs connected by a gigabit
switch.  This example anchors an event-driven cluster simulator to the
*real* Lloyd-kernel throughput of the current host, then replays the
partial/merge query and Method C on 1, 2 and 4 simulated machines:

1. calibrate distance-ops/second by timing the actual kernel,
2. simulate partial/merge: chunk shipping, cloned partial operators,
   centroid collection, coordinator merge,
3. simulate Method C's per-iteration broadcast + migration traffic,
4. compare makespans, utilization and bytes on the wire.

Run:  python examples/distributed_simulation.py
"""

from repro.stream.distributed import (
    DistributedSimulation,
    calibrate_ops_per_second,
    paper_testbed,
)
from repro.stream.tracing import render_gantt

N_POINTS = 75_000
DIM = 6
K = 40
CHUNKS = 12
RESTARTS = 10
PARTIAL_ITERATIONS = 17.0  # measured by the convergence study at this scale


def main() -> None:
    ops = calibrate_ops_per_second()
    print(f"host kernel throughput: {ops:.2e} distance-ops/s (measured)\n")

    print("partial/merge on the simulated testbed "
          f"(N={N_POINTS:,}, k={K}, {CHUNKS} chunks, R={RESTARTS}):")
    print(f"{'machines':>9} {'makespan':>9} {'speedup':>8} "
          f"{'min util':>9} {'network':>9}")
    baseline = None
    for n_machines in (1, 2, 4):
        sim = DistributedSimulation(
            paper_testbed(n_machines, ops_per_second=ops)
        )
        report = sim.simulate_partial_merge(
            n_points=N_POINTS,
            dim=DIM,
            k=K,
            n_chunks=CHUNKS,
            restarts=RESTARTS,
            partial_iterations=PARTIAL_ITERATIONS,
        )
        baseline = baseline or report.makespan_seconds
        print(
            f"{n_machines:>9} {report.makespan_seconds:>8.2f}s "
            f"{baseline / report.makespan_seconds:>8.2f} "
            f"{min(report.utilization().values()):>9.0%} "
            f"{report.network_bytes / 1e6:>7.1f}MB"
        )

    four_machine = DistributedSimulation(
        paper_testbed(4, ops_per_second=ops)
    ).simulate_partial_merge(
        n_points=N_POINTS,
        dim=DIM,
        k=K,
        n_chunks=CHUNKS,
        restarts=RESTARTS,
        partial_iterations=PARTIAL_ITERATIONS,
    )
    print()
    print(render_gantt(four_machine))

    print("\nMethod C on the same 4 machines (50 Lloyd iterations):")
    sim = DistributedSimulation(paper_testbed(4, ops_per_second=ops))
    method_c = sim.simulate_method_c(
        n_points=N_POINTS, dim=DIM, k=K, iterations=50
    )
    partial = sim.simulate_partial_merge(
        n_points=N_POINTS,
        dim=DIM,
        k=K,
        n_chunks=CHUNKS,
        restarts=RESTARTS,
        partial_iterations=PARTIAL_ITERATIONS,
    )
    print(
        f"  method C      : makespan {method_c.makespan_seconds:.2f}s "
        f"(single run; x{RESTARTS} restarts = "
        f"{method_c.makespan_seconds * RESTARTS:.2f}s), "
        f"{method_c.network_bytes / 1e6:.1f} MB on the wire per run"
    )
    print(
        f"  partial/merge : makespan {partial.makespan_seconds:.2f}s "
        f"(includes all {RESTARTS} restarts), "
        f"{partial.network_bytes / 1e6:.1f} MB on the wire"
    )
    print(
        "\nMethod C exchanges means and migrating points every iteration;"
        "\npartial/merge ships each point once and each partition's k"
        "\nweighted centroids once — the paper's communication argument."
    )


if __name__ == "__main__":
    main()
