"""Quickstart: cluster one synthetic MISR grid cell three ways.

Demonstrates the library's front door in under a minute:

1. generate a realistic 6-attribute grid cell,
2. cluster it with the serial baseline,
3. cluster it with partial/merge k-means (the paper's algorithm),
4. compare quality (MSE against the raw points) and timing.

Run:  python examples/quickstart.py
"""

from repro.baselines import SerialKMeans
from repro.core import PartialMergeKMeans
from repro.core.quality import mse
from repro.data import generate_cell_points


def main() -> None:
    # A 10,000-point grid cell with the paper's 6 attributes.
    points = generate_cell_points(n_points=10_000, seed=42)
    k, restarts = 40, 5

    serial_model = SerialKMeans(k, restarts=restarts, seed=0).fit(points)
    serial_mse = mse(points, serial_model.centroids)
    print(
        f"serial k-means        : MSE {serial_mse:10.2f}   "
        f"time {serial_model.total_seconds:6.2f}s"
    )

    for n_chunks in (5, 10):
        report = PartialMergeKMeans(
            k=k, restarts=restarts, n_chunks=n_chunks, seed=0
        ).fit(points)
        model = report.model
        print(
            f"partial/merge {n_chunks:2d}-split: MSE {model.mse:10.2f}   "
            f"time {model.total_seconds:6.2f}s "
            f"(partial {model.partial_seconds:.2f}s + merge "
            f"{model.merge_seconds:.2f}s)"
        )

    print(
        "\nEach partial step clustered one memory-sized chunk into weighted"
        "\ncentroids; the merge step combined them with a weighted k-means"
        "\nseeded by the heaviest centroids — no stage ever held the full"
        "\ncell in memory."
    )


if __name__ == "__main__":
    main()
