"""Drive the stream engine directly: plan, clone, execute, inspect.

Shows the Conquest-style machinery underneath the high-level API:

1. build the logical scan -> partial -> merge dataflow for several cells,
2. let the planner clone the expensive partial operator,
3. execute, then read the per-operator metrics (utilization, queueing).

Run:  python examples/streaming_engine.py
"""

import numpy as np

from repro.data import generate_cell_points
from repro.stream import (
    Executor,
    Planner,
    ResourceManager,
    build_partial_merge_graph,
)


def main() -> None:
    # Three grid cells of different sizes, like adjacent cells in a swath.
    cells = {
        f"lat{30 + i}lon-110": generate_cell_points(
            n_points, seed=100 + i
        )
        for i, n_points in enumerate((4_000, 8_000, 12_000))
    }

    # A deliberately tight memory budget: the source will derive several
    # chunks per cell instead of being told a fixed split.
    resources = ResourceManager(
        memory_budget_bytes=512 * 1024, worker_slots=6
    )
    per_chunk = resources.max_points_per_partition(dim=6)
    print(f"memory budget allows ~{per_chunk} points per partition\n")

    graph = build_partial_merge_graph(
        cells, k=24, restarts=3, resources=resources, seed=5, max_iter=100
    )
    plan = Planner(resources).plan(graph)
    print(plan.describe())
    print()

    outcome = Executor().run(plan)
    models = outcome.value

    for cell_id, model in sorted(models.items()):
        print(
            f"{cell_id}: {model.partitions} partitions, "
            f"k={model.k}, mse={model.mse:.2f}, "
            f"t={model.total_seconds:.2f}s"
        )
    print()
    print("\n".join(outcome.metrics.summary_lines()))

    queue_stats = outcome.metrics.queues["q->partial"]
    print(
        f"\nscan->partial queue: {queue_stats.puts} chunks, "
        f"high-water {queue_stats.high_water_mark}, "
        f"producer blocked {queue_stats.producer_block_seconds:.3f}s "
        f"(backpressure at work)"
    )


if __name__ == "__main__":
    main()
