"""Compare partial/merge against every implemented clustering baseline.

One grid cell, identical k, every algorithm in the library: serial
k-means, partial/merge (5- and 10-split), STREAM/LOCALSEARCH, BIRCH,
mini-batch k-means, and ECVQ (which chooses its own effective k).

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro.baselines import Birch, MiniBatchKMeans, SerialKMeans, StreamLocalSearch
from repro.core import PartialMergeKMeans, ecvq
from repro.core.quality import mse
from repro.data import generate_cell_points


def main() -> None:
    points = generate_cell_points(n_points=15_000, seed=9)
    k = 40

    rows: list[tuple[str, float, float, str]] = []

    model = SerialKMeans(k, restarts=5, seed=0).fit(points)
    rows.append(("serial k-means", mse(points, model.centroids),
                 model.total_seconds, f"k={model.k}"))

    for n_chunks in (5, 10):
        report = PartialMergeKMeans(
            k=k, restarts=5, n_chunks=n_chunks, seed=0
        ).fit(points)
        rows.append((
            f"partial/merge {n_chunks}-split",
            report.model.mse,
            report.model.total_seconds,
            f"k={report.model.k}",
        ))

    stream_model = StreamLocalSearch(
        k, batch_size=3_000, restarts=3, seed=0
    ).fit(points)
    rows.append((
        "STREAM/LOCALSEARCH",
        stream_model.mse,
        stream_model.total_seconds,
        f"{stream_model.extra['compressions']} compressions",
    ))

    birch_model = Birch(k, threshold=2.5).fit(points)
    rows.append((
        "BIRCH",
        birch_model.mse,
        birch_model.total_seconds,
        f"{birch_model.extra['leaf_cf_count']} leaf CFs",
    ))

    minibatch_model = MiniBatchKMeans(k, batch_size=512, seed=0).fit(points)
    rows.append((
        "mini-batch k-means",
        minibatch_model.mse,
        minibatch_model.total_seconds,
        f"{minibatch_model.extra['steps']} steps",
    ))

    ecvq_result = ecvq(points, max_k=2 * k, lam=2.0, rng=np.random.default_rng(0))
    rows.append((
        "ECVQ (adaptive k)",
        mse(points, ecvq_result.summary.centroids),
        float("nan"),
        f"effective k={ecvq_result.effective_k}, "
        f"rate={ecvq_result.rate_bits:.2f} bits",
    ))

    header = f"{'algorithm':<24} {'MSE':>10} {'time (s)':>9}   notes"
    print(header)
    print("-" * len(header))
    for name, model_mse, seconds, notes in rows:
        time_text = f"{seconds:9.2f}" if seconds == seconds else "        -"
        print(f"{name:<24} {model_mse:>10.2f} {time_text}   {notes}")


if __name__ == "__main__":
    main()
