"""Incremental maintenance: a grid cell that keeps growing.

A satellite revisits the same cell every few days; recomputing the cell's
cluster model from scratch each time defeats the point of streaming.
This example maintains one cell's model across five revisits using the
partial/merge decomposition (each revisit is a partial step folded into
the running model), then compares against a from-scratch batch run over
all the accumulated data.

Run:  python examples/incremental_updates.py
"""

import numpy as np

from repro.baselines import SerialKMeans
from repro.core import IncrementalClusterer
from repro.core.quality import mse
from repro.data import MisrCellDistribution, random_cell_distribution


def main() -> None:
    rng = np.random.default_rng(42)
    distribution: MisrCellDistribution = random_cell_distribution(rng)
    k = 24

    clusterer = IncrementalClusterer(k=k, restarts=3, refresh_every=3, seed=0)
    accumulated: list[np.ndarray] = []

    print(f"{'revisit':>8} {'new pts':>8} {'total pts':>10} "
          f"{'incremental mse':>16} {'batch mse':>10}")
    print("-" * 58)

    for revisit in range(5):
        new_points = distribution.sample(3_000, rng)
        accumulated.append(new_points)
        clusterer.add(new_points)

        all_points = np.vstack(accumulated)
        incremental_model = clusterer.model()
        incremental_mse = mse(all_points, incremental_model.centroids)

        batch_model = SerialKMeans(k, restarts=3, seed=revisit).fit(all_points)
        batch_mse = mse(all_points, batch_model.centroids)

        print(
            f"{revisit:>8} {new_points.shape[0]:>8,} "
            f"{all_points.shape[0]:>10,} {incremental_mse:>16.3f} "
            f"{batch_mse:>10.3f}"
        )

    final = clusterer.model()
    print(
        f"\nfinal model: k={final.k}, weights sum to "
        f"{final.weights.sum():,.0f} points seen — but the clusterer only "
        f"ever held {k} weighted centroids plus one revisit in memory."
    )


if __name__ == "__main__":
    main()
