"""Benchmark: robustness to contamination (outlier-split extension).

Real cells carry anomalous measurements; this sweep contaminates a cell
with a uniform background at 0/1/5% and scores each summary on the
*clean* signal.  The outlier-split extension (tail stored exactly, body
summarised) must degrade less than the plain pipeline as contamination
grows.
"""

from __future__ import annotations

from repro.experiments.noise_study import render_noise_study, run_noise_study


def test_bench_noise_robustness(benchmark):
    points = benchmark.pedantic(
        lambda: run_noise_study(
            epsilons=(0.0, 0.01, 0.05),
            n_points=8_000,
            k=40,
            restarts=3,
            n_chunks=8,
            seed=0,
            max_iter=100,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(render_noise_study(points))

    dirty = points[-1]  # 5% contamination
    # The robust variant must beat the plain pipeline once noise is real.
    assert dirty.robust_mse <= dirty.split_mse
    # The split must catch most of the injected junk.
    assert dirty.tail_captured > 0.5
    # And robustness must not come at a catastrophic clean-data cost:
    # the robust variant stays within the k-means class on clean data.
    clean = points[0]
    assert clean.robust_mse < clean.split_mse * 5 + 1.0
