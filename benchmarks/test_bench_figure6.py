"""Benchmark: regenerate Figure 6 (overall execution time vs N).

Paper reference: serial time grows super-linearly with N ("increasing
exponentially"); partial/merge overall time is significantly lower for
large cells even with the partial steps run serially on one machine; at
N=75,000 the 10-split takes ~30% of the serial time.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.serial import SerialKMeans
from repro.data.generator import generate_cell_points
from repro.experiments.figures import figure6, render_figure


def test_bench_figure6(benchmark, grid_results):
    """Time one serial run (the figure's dominant curve) and print it."""
    config = grid_results.config
    points = generate_cell_points(config.sizes[-1], seed=config.seed)

    def serial_run():
        return SerialKMeans(
            config.k,
            restarts=min(3, config.restarts),
            max_iter=config.max_iter,
            seed=0,
        ).fit(points)

    benchmark.pedantic(serial_run, rounds=1, iterations=1)

    figure = figure6(grid_results)
    print()
    print(render_figure(figure))

    sizes = np.array(figure.x, dtype=float)
    serial_times = np.array(figure.series["serial"])

    # Shape 1: serial time grows super-linearly: time ratio outpaces the
    # size ratio between the smallest and largest cells.
    size_ratio = sizes[-1] / sizes[0]
    time_ratio = serial_times[-1] / max(serial_times[0], 1e-9)
    assert time_ratio > size_ratio * 0.8

    # Shape 2: at the largest N every split curve sits below serial.
    for case, times in figure.series.items():
        if case != "serial":
            assert times[-1] < serial_times[-1]

    # Shape 3: the biggest split is the cheapest at the largest N
    # (paper: 10-split wins for large cells).
    split_finals = {
        case: times[-1]
        for case, times in figure.series.items()
        if case != "serial"
    }
    biggest_split = max(split_finals, key=lambda c: int(c.replace("split", "")))
    assert split_finals[biggest_split] == min(split_finals.values())
