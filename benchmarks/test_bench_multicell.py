"""Benchmark: multi-cell throughput — the production workload.

The paper's end goal is 64,800 cells per global coverage.  This
benchmark runs a skewed 12-cell monthly workload through two execution
strategies on identical data:

* **Method A** (Figure 2): one serial k-means per cell on a worker pool,
* **streamed partial/merge**: one dataflow over all cells, partial
  clones shared across cells, memory-budgeted chunking, merge sink
  finalising each cell as its last partition arrives.

Asserted shape: both produce a model for every cell with conserved
mass; the streamed engine's per-cell memory stays bounded by the budget
while Method A requires each worker to hold a whole cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.parallel_methods import method_a_cells_in_parallel
from repro.data.workloads import build_monthly_workload
from repro.stream.kmeans_ops import run_partial_merge_stream
from repro.stream.scheduler import ResourceManager

_K = 24


def test_bench_multicell_throughput(benchmark):
    workload = build_monthly_workload(
        n_cells=12, median_points=3_000, max_points=12_000, seed=3
    )
    print()
    print(
        f"workload: {workload.n_cells} cells, "
        f"{workload.total_points:,} points, "
        f"sizes {workload.size_distribution()}"
    )

    resources = ResourceManager(
        memory_budget_bytes=1 * 1024 * 1024, worker_slots=4
    )

    models_stream, outcome = benchmark.pedantic(
        lambda: run_partial_merge_stream(
            workload.cells,
            k=_K,
            restarts=3,
            resources=resources,
            seed=0,
            max_iter=60,
        ),
        rounds=1,
        iterations=1,
    )

    models_a = method_a_cells_in_parallel(
        workload.cells, k=_K, restarts=3, max_workers=4, seed=0, max_iter=60
    )

    # Every strategy must cover every cell with conserved mass.
    assert set(models_stream) == set(workload.cells)
    assert set(models_a) == set(workload.cells)
    for key, points in workload.cells.items():
        assert models_stream[key].weights.sum() == pytest.approx(
            points.shape[0]
        )
        assert models_a[key].weights.sum() == pytest.approx(points.shape[0])

    # Memory shape: the streamed engine's chunks respect the budget even
    # for the biggest cell; Method A inherently holds whole cells.
    cap = resources.max_points_per_partition(6)
    biggest = max(p.shape[0] for p in workload.cells.values())
    biggest_key = max(
        workload.cells, key=lambda key: workload.cells[key].shape[0]
    )
    partitions = models_stream[biggest_key].partitions
    assert -(-biggest // partitions) <= cap
    print(
        f"stream engine: biggest cell {biggest:,} pts split into "
        f"{partitions} chunks (cap {cap}); Method A held it whole"
    )

    # Quality shape: streamed models stay in the same class as Method A's
    # per-cell serial models (median ratio across cells).
    ratios = []
    for key in workload.cells:
        if models_a[key].mse > 0:
            ratios.append(models_stream[key].mse / models_a[key].mse)
    median_ratio = float(np.median(ratios))
    print(f"median stream/serial raw-MSE ratio: {median_ratio:.2f}")
    assert median_ratio < 2.0

    # Eager finalisation: merges interleave with partials instead of all
    # landing after the last chunk.
    merge_metrics = [
        op for op in outcome.metrics.operators if op.name == "merge"
    ]
    assert merge_metrics and merge_metrics[0].items_in > 0
