"""Benchmark: the Section 3.2 complexity model (iterations vs N).

Paper reference: serial iterations I grow with N ("If N is large, then
I increases exponentially"); a chunk's iterations I' satisfy I' << I
because N' = N/p << N; hence the summed partial cost O(N·K·I') beats
serial O(N·K·I).  This benchmark measures I and I' directly and checks
that the analytic distance-operation model predicts the measured
speed-up direction.
"""

from __future__ import annotations

from repro.experiments.convergence_study import (
    partial_merge_distance_ops,
    render_convergence_study,
    run_convergence_study,
    serial_distance_ops,
)

_SIZES = (500, 2_000, 8_000, 20_000)
_K = 40
_RESTARTS = 3


def test_bench_convergence_model(benchmark):
    study = benchmark.pedantic(
        lambda: run_convergence_study(
            sizes=_SIZES, k=_K, restarts=_RESTARTS, n_chunks=10, seed=0
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(render_convergence_study(study, k=_K, restarts=_RESTARTS))

    # Shape 1: serial iterations grow with N.
    serial_iters = [p.serial_iterations for p in study]
    assert serial_iters[-1] > serial_iters[0] * 2

    # Shape 2: I' << I at every size beyond the smallest.
    for point in study[1:]:
        assert point.partial_iterations < point.serial_iterations * 0.75

    # Shape 3: the cost model predicts a partial/merge win at scale, and
    # the measured wall-clock agrees at the largest N.
    largest = study[-1]
    model_ratio = serial_distance_ops(
        largest.n_points, _K, largest.serial_iterations, _RESTARTS
    ) / partial_merge_distance_ops(
        largest.n_points,
        _K,
        largest.partial_iterations,
        _RESTARTS,
        largest.n_chunks,
    )
    measured_ratio = largest.serial_seconds / largest.partial_merge_seconds
    assert model_ratio > 1.5
    assert measured_ratio > 1.5
    # The model and the measurement agree within a factor of two at scale
    # (constants cancel because both pipelines share one kernel).
    assert 0.5 < model_ratio / measured_ratio < 2.0
