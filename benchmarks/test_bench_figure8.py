"""Benchmark: regenerate Figure 8 (partial k-means time, 5- vs 10-split).

Paper reference: partial-step time dominates the pipeline and grows with
N for both split counts; the 10-split curve sits below the 5-split curve
at large N because each chunk is smaller and Lloyd converges in fewer
iterations (the paper's I' << I argument).
"""

from __future__ import annotations

import numpy as np

from repro.core.partial import partial_kmeans
from repro.data.generator import generate_cell_points
from repro.experiments.figures import figure8, render_figure


def test_bench_figure8(benchmark, grid_results):
    """Time one partial k-means chunk (the figure's unit of work)."""
    config = grid_results.config
    chunk = generate_cell_points(
        max(config.sizes[-1] // 10, config.k), seed=config.seed
    )

    benchmark.pedantic(
        lambda: partial_kmeans(
            chunk,
            config.k,
            restarts=min(3, config.restarts),
            rng=np.random.default_rng(0),
            max_iter=config.max_iter,
        ),
        rounds=1,
        iterations=1,
    )

    figure = figure8(grid_results)
    print()
    print(render_figure(figure))

    cases = sorted(figure.series, key=lambda c: int(c.replace("split", "")))
    fewer, more = cases[0], cases[-1]

    # Shape 1: partial time grows with N for both split counts.
    for case in (fewer, more):
        times = figure.series[case]
        assert times[-1] > times[0]

    # Shape 2: at the largest N, more splits cost no more partial time
    # (smaller chunks converge faster; paper's 10-split advantage).
    assert figure.series[more][-1] <= figure.series[fewer][-1] * 1.1
