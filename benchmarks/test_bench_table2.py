"""Benchmark: regenerate the paper's Table 2.

Paper reference (Table 2, ms on 2.8 GHz P4 / JDK 1.3; shape target):

    75,000 points: 10split t=2,028,978 mse=15,680 | serial t=5,908,854
                   mse=105,020  -> 10split ~3x faster, ~6.7x lower MSE
     2,500 points: serial and 5split comparable; 10split MSE poor
       250 points: serial fastest (splits pay pure overhead)

The benchmark times one representative partial/merge run; the full table
(every size x case, averaged over dataset versions) is printed from the
session-wide grid results and its shape is asserted.
"""

from __future__ import annotations

from repro.core.pipeline import PartialMergeKMeans
from repro.data.generator import generate_cell_points
from repro.experiments.tables import render_table2, table2_rows


def test_bench_table2(benchmark, grid_results):
    """Time one 5-split partial/merge run and print the regenerated table."""
    config = grid_results.config
    mid_size = config.sizes[len(config.sizes) // 2]
    points = generate_cell_points(mid_size, seed=config.seed)

    def one_case():
        return PartialMergeKMeans(
            k=config.k,
            restarts=config.restarts,
            n_chunks=5,
            max_iter=config.max_iter,
            seed=0,
        ).fit(points)

    benchmark.pedantic(one_case, rounds=1, iterations=1)

    print()
    print(render_table2(grid_results))

    rows = {
        (row["data_pts"], row["case"]): row for row in table2_rows(grid_results)
    }
    largest = max(config.sizes)
    smallest = min(config.sizes)
    split_cases = [case for case in config.cases if case != "serial"]

    # Shape 1: at the largest N, every split case beats serial end-to-end.
    for case in split_cases:
        assert (
            rows[(largest, case)]["overall_s"]
            < rows[(largest, "serial")]["overall_s"]
        )

    # Shape 2: at the largest N, the paper-metric MSE of the biggest split
    # is far below serial (paper: 15,680 vs 105,020).
    biggest_split = split_cases[-1]
    assert (
        rows[(largest, biggest_split)]["min_mse"]
        < rows[(largest, "serial")]["min_mse"]
    )

    # Shape 3: at the smallest N, serial is at least as fast (splits pay
    # overhead; paper: 10x slower for partial/merge at N=250).
    fastest_split = min(rows[(smallest, case)]["overall_s"] for case in split_cases)
    assert rows[(smallest, "serial")]["overall_s"] <= fastest_split * 1.5

    # Shape 4: merge time is a small fraction of partial time at scale.
    for case in split_cases:
        assert (
            rows[(largest, case)]["t_merge_s"]
            < rows[(largest, case)]["t_partial_s"]
        )
