"""Benchmark: partial/merge against every implemented clustering method.

Not a paper table, but the comparison a downstream adopter needs: on one
representative cell and identical k, time and raw-point MSE for serial
k-means, partial/merge, STREAM/LOCALSEARCH, BIRCH, mini-batch k-means,
CLARANS and CURE.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    Birch,
    Clarans,
    Cure,
    MiniBatchKMeans,
    SerialKMeans,
    StreamLocalSearch,
)
from repro.core.pipeline import PartialMergeKMeans
from repro.core.quality import mse as evaluate_mse
from repro.data.generator import generate_cell_points

_N_POINTS = 10_000
_K = 40


def test_bench_all_baselines(benchmark):
    points = generate_cell_points(_N_POINTS, seed=31)
    rows: dict[str, tuple[float, float]] = {}

    pm_report = benchmark.pedantic(
        lambda: PartialMergeKMeans(
            k=_K, restarts=5, n_chunks=10, max_iter=100, seed=0
        ).fit(points),
        rounds=1,
        iterations=1,
    )
    rows["partial/merge 10-split"] = (
        pm_report.model.mse,
        pm_report.model.total_seconds,
    )

    serial = SerialKMeans(_K, restarts=5, max_iter=100, seed=0).fit(points)
    rows["serial k-means"] = (
        evaluate_mse(points, serial.centroids),
        serial.total_seconds,
    )

    stream = StreamLocalSearch(
        _K, batch_size=2_000, restarts=3, max_iter=100, seed=0
    ).fit(points)
    rows["STREAM/LOCALSEARCH"] = (stream.mse, stream.total_seconds)

    birch = Birch(_K, threshold=2.0).fit(points)
    rows["BIRCH"] = (birch.mse, birch.total_seconds)

    minibatch = MiniBatchKMeans(_K, batch_size=512, seed=0).fit(points)
    rows["mini-batch k-means"] = (minibatch.mse, minibatch.total_seconds)

    clarans = Clarans(
        _K, numlocal=1, maxneighbor=200, seed=0
    ).fit(points)
    rows["CLARANS"] = (clarans.mse, clarans.total_seconds)

    cure = Cure(_K, sample_size=200, seed=0).fit(points)
    rows["CURE"] = (cure.mse, cure.total_seconds)

    print()
    header = f"{'method':<24} {'raw MSE':>9} {'time (s)':>9}"
    print(header)
    print("-" * len(header))
    for name, (row_mse, seconds) in sorted(rows.items(), key=lambda r: r[1][0]):
        print(f"{name:<24} {row_mse:>9.3f} {seconds:>9.3f}")

    # Shape 1: partial/merge quality is in the k-means class — within 2x
    # of serial on raw MSE.
    assert rows["partial/merge 10-split"][0] < rows["serial k-means"][0] * 2.0
    # Shape 2: partial/merge is faster than serial at this scale.
    assert rows["partial/merge 10-split"][1] < rows["serial k-means"][1]
    # Shape 3: the iterative-refinement family (serial, partial/merge,
    # STREAM) beats the single-pass/medoid heuristics on raw MSE here.
    refinement_worst = max(
        rows["partial/merge 10-split"][0],
        rows["serial k-means"][0],
        rows["STREAM/LOCALSEARCH"][0],
    )
    heuristic_best = min(rows["CLARANS"][0], rows["CURE"][0])
    assert refinement_worst < heuristic_best * 1.5
