"""Benchmark: the motivating compression application (paper Section 1).

Not a numbered table in the paper, but its stated purpose: compress each
grid cell into multivariate histograms with non-equi-depth buckets that
"adapt to the shape and complexity of the actual data", and produce a
"highly faithful representation".  This benchmark quantifies that claim
against the cheap alternative the related work cites — random sampling —
on identical cells and equal summary budgets.
"""

from __future__ import annotations

import numpy as np

from repro.compression.histogram import MultivariateHistogram
from repro.compression.metrics import (
    moment_preservation_error,
    random_query_boxes,
    range_query_relative_errors,
)
from repro.compression.sampling import sample_compress
from repro.core.pipeline import PartialMergeKMeans
from repro.data.generator import generate_cell_points

_N_POINTS = 20_000
_K = 40


def test_bench_compression_vs_sampling(benchmark):
    points = generate_cell_points(_N_POINTS, seed=21)
    rng = np.random.default_rng(0)

    clustered = benchmark.pedantic(
        lambda: PartialMergeKMeans(
            k=_K, restarts=5, n_chunks=5, max_iter=100, seed=0
        ).fit(points).model,
        rounds=1,
        iterations=1,
    )
    sampled = sample_compress(points, _K, np.random.default_rng(1))

    rows = {}
    queries = random_query_boxes(points, 64, rng)
    for name, model in (("clustered", clustered), ("sampled", sampled)):
        histogram = MultivariateHistogram.from_model(points, model)
        moments = moment_preservation_error(
            points, *histogram.reconstruct()
        )
        query_errors = range_query_relative_errors(points, histogram, queries)
        rows[name] = {
            "mse": model.mse,
            "mean_err": moments["mean_relative_error"],
            "m2_err": moments["second_moment_relative_error"],
            "query_p50": float(np.median(query_errors)),
        }

    print()
    header = f"{'summary':>10} {'mse':>9} {'mean err':>9} {'2nd-mom err':>12} {'query p50':>10}"
    print(header)
    print("-" * len(header))
    for name, row in rows.items():
        print(
            f"{name:>10} {row['mse']:>9.3f} {row['mean_err']:>9.5f} "
            f"{row['m2_err']:>12.5f} {row['query_p50']:>10.3f}"
        )

    # Shape: at equal budget (k=40 representatives), the clustering-based
    # summary reconstructs the cell with clearly lower distortion...
    assert rows["clustered"]["mse"] < rows["sampled"]["mse"] * 0.8
    # ...and preserves the cell's moments an order of magnitude better
    # (cluster centroids are exact conditional means; sampled points are
    # not).
    assert rows["clustered"]["mean_err"] < rows["sampled"]["mean_err"] * 0.5
    assert rows["clustered"]["m2_err"] < rows["sampled"]["m2_err"] * 0.5
