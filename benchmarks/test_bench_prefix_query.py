"""Benchmark: coreset-tree prefix queries vs full re-merges.

The tree's reason to exist (ISSUE 6): answering "cluster everything seen
so far" mid-stream by re-clustering the O(log P) cached tree roots
instead of re-merging all P partition summaries from scratch.  This
benchmark quantifies that trade on a realistic partition stream and
writes ``BENCH_prefix.json`` at the repository root:

* **latency** — cold query (result cache cleared, covers re-merged) and
  warm query (cache hit) vs the full ``merge_kmeans`` over all P
  summaries, min-of-repeats on both sides;
* **speed-up gate** — cold query >= 10x faster than the full re-merge at
  P >= 64 partitions;
* **quality** — SSE of the coreset answer on the raw points, relative to
  the one-shot exact merge (the approximation the millisecond answer
  costs); recorded, and loosely gated so a quality collapse fails loudly;
* **window** — sliding-window ("last N chunks") query latency, the
  O(log N) re-merge path.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.merge import merge_kmeans
from repro.core.partial import partial_kmeans
from repro.core.quality import sse
from repro.data.generator import generate_cell_points
from repro.stream.coreset import CoresetTree
from repro.stream.items import CentroidMessage

_REPO_ROOT = Path(__file__).resolve().parent.parent

_K = 8
_DIM = 4
_RESTARTS = 2
_POINTS_PER_CHUNK = 400
#: Partition counts; 64 = power of two (single root, best case for the
#: tree), 96 = two roots (64 + 32), the general case.  The >= 10x
#: acceptance gate applies to every row with >= 64 partitions.
_PARTITION_COUNTS = (16, 64, 96)
_REPEATS = 5
_WINDOW = 8


def _build_stream(n_partitions):
    """Partition summaries and raw points for one simulated cell."""
    rng = np.random.default_rng(163)
    chunks = []
    summaries = []
    for partition in range(n_partitions):
        chunk = generate_cell_points(
            _POINTS_PER_CHUNK, seed=500 + partition, dim=_DIM
        )
        chunks.append(chunk)
        summaries.append(
            partial_kmeans(
                chunk,
                _K,
                restarts=_RESTARTS,
                rng=rng,
                source=f"bench/P{partition}",
            ).summary
        )
    return np.vstack(chunks), summaries


def _min_seconds(fn, repeats=_REPEATS):
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return value, best


def test_bench_prefix_query(benchmark):
    """Tree query vs full re-merge across P; write BENCH_prefix.json."""
    rows = []
    flagship_row = None
    for n_partitions in _PARTITION_COUNTS:
        points, summaries = _build_stream(n_partitions)
        messages = [
            CentroidMessage(
                cell_id="bench",
                partition=index,
                summary=summary,
                n_partitions=n_partitions,
            )
            for index, summary in enumerate(summaries)
        ]

        tree = CoresetTree(k=_K)
        ingest_started = time.perf_counter()
        for message in messages:
            tree.offer(message)
        ingest_seconds = time.perf_counter() - ingest_started

        # Baseline: the engine's one-shot exact merge over all P
        # summaries — what answering a mid-stream query costs without
        # the tree.
        full_result, full_seconds = _min_seconds(
            lambda: merge_kmeans(list(summaries), _K)
        )

        # Cold query: clear the result cache each repeat so every run
        # re-merges the O(log P) cover nodes.
        def cold_query():
            tree._query_cache.clear()
            return tree.query_prefix()

        cold_answer, cold_seconds = _min_seconds(cold_query)
        if n_partitions == max(_PARTITION_COUNTS):
            # The flagship cold query is the benchmarked measurement.
            cold_answer = benchmark.pedantic(
                cold_query, rounds=1, iterations=1
            )

        # Warm query: same prefix again, answered from the cache.
        _, warm_seconds = _min_seconds(lambda: tree.query_prefix())
        warm_answer = tree.query_prefix()
        assert warm_answer.cached

        # Sliding window: last _WINDOW chunks only.
        def window_query():
            tree._query_cache.clear()
            return tree.query_window(_WINDOW)

        window_answer, window_seconds = _min_seconds(window_query)

        exact_sse = sse(points, full_result.model.centroids)
        tree_sse = sse(points, cold_answer.model.centroids)
        quality_ratio = tree_sse / exact_sse
        speedup = full_seconds / max(cold_seconds, 1e-12)

        row = {
            "partitions": n_partitions,
            "points": int(points.shape[0]),
            "tree_nodes": tree.n_nodes,
            "tree_depth": tree.depth,
            "nodes_reused_by_query": cold_answer.nodes_reused,
            "ingest_seconds": ingest_seconds,
            "full_remerge_seconds": full_seconds,
            "cold_query_seconds": cold_seconds,
            "warm_query_seconds": warm_seconds,
            "window": _WINDOW,
            "window_query_seconds": window_seconds,
            "window_nodes_reused": window_answer.nodes_reused,
            "speedup_cold_vs_full": speedup,
            "sse_exact_merge": exact_sse,
            "sse_tree_query": tree_sse,
            "sse_ratio": quality_ratio,
        }
        rows.append(row)
        if n_partitions == max(_PARTITION_COUNTS):
            flagship_row = row

        print()
        print(
            f"P={n_partitions}: full={full_seconds * 1e3:.2f}ms "
            f"cold={cold_seconds * 1e3:.3f}ms ({speedup:.1f}x) "
            f"warm={warm_seconds * 1e6:.1f}us "
            f"window={window_seconds * 1e3:.3f}ms "
            f"sse_ratio={quality_ratio:.4f}"
        )

        # Mass conservation: the coreset answer carries every point.
        assert cold_answer.model.total_weight == float(points.shape[0])
        # The acceptance gate: >= 10x at >= 64 partitions.
        if n_partitions >= 64:
            assert speedup >= 10.0, row
        # The cover must be logarithmic, not linear, in P.
        assert cold_answer.nodes_reused <= max(
            1, int(np.ceil(np.log2(n_partitions + 1)))
        )
        # Quality guard: the hierarchical answer may differ from the
        # one-shot merge, but a collapse (>2x SSE) means the tree is
        # broken, not approximate.
        assert quality_ratio < 2.0, row
        # Warm queries are pure cache hits — strictly cheaper than cold.
        assert warm_seconds <= cold_seconds

    assert flagship_row is not None
    payload = {
        "k": _K,
        "dim": _DIM,
        "restarts": _RESTARTS,
        "points_per_chunk": _POINTS_PER_CHUNK,
        "repeats": _REPEATS,
        "flagship_partitions": flagship_row["partitions"],
        "flagship_speedup": flagship_row["speedup_cold_vs_full"],
        "flagship_sse_ratio": flagship_row["sse_ratio"],
        "rows": rows,
    }
    (_REPO_ROOT / "BENCH_prefix.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
