"""Benchmark: regenerate Figure 7 (minimum MSE vs N).

Paper reference (Section 5.2 metric — raw-point MSE for serial, weighted
centroid error E_pm for splits): at N=75,000, 10-split scores 15,680 vs
serial 105,020 (~6.7x); at N=2,500 the 10-split quality is poor and serial
still wins; the break-even is around N=12,500.

The like-for-like variant (both algorithms scored on raw points) is also
printed; see EXPERIMENTS.md for why the two disagree.
"""

from __future__ import annotations

from repro.core.quality import mse as evaluate_mse
from repro.core.pipeline import PartialMergeKMeans
from repro.data.generator import generate_cell_points
from repro.experiments.figures import figure7, figure7_fair, render_figure


def test_bench_figure7(benchmark, grid_results):
    """Time the quality evaluation path and print both Figure 7 variants."""
    config = grid_results.config
    points = generate_cell_points(config.sizes[-1], seed=config.seed)
    report = PartialMergeKMeans(
        k=config.k, restarts=2, n_chunks=10, max_iter=config.max_iter, seed=0
    ).fit(points)

    benchmark.pedantic(
        lambda: evaluate_mse(points, report.model.centroids),
        rounds=3,
        iterations=1,
    )

    paper_fig = figure7(grid_results)
    fair_fig = figure7_fair(grid_results)
    print()
    print(render_figure(paper_fig))
    print()
    print(render_figure(fair_fig))

    sizes = list(paper_fig.x)
    serial = paper_fig.series["serial"]
    split_cases = [c for c in paper_fig.series if c != "serial"]
    biggest_split = max(split_cases, key=lambda c: int(c.replace("split", "")))

    # Shape 1 (paper metric): at the largest N the biggest split's MSE is
    # far below serial — the paper's headline quality claim.
    assert paper_fig.series[biggest_split][-1] < serial[-1] * 0.6

    # Shape 2 (paper metric): serial wins at the smallest N (paper: for
    # N <= 2,500 serial still performs best).
    smallest_index = sizes.index(min(sizes))
    smallest_split_scores = [
        paper_fig.series[case][smallest_index] for case in split_cases
    ]
    assert serial[smallest_index] <= max(smallest_split_scores) * 1.5

    # Shape 3 (fair metric): scored on raw points, partial/merge stays in
    # the same quality class as serial at scale (within 2x).
    fair_serial = fair_fig.series["serial"]
    for case in split_cases:
        assert fair_fig.series[case][-1] < fair_serial[-1] * 2.0
