"""Benchmark: thread backend vs process backend for the partial stage.

The process backend exists because thread clones only parallelise as far
as numpy releases the GIL; worker processes sidestep the GIL entirely at
the cost of shared-memory transfers and per-worker spawn time.  This
benchmark runs the same fixed-seed pipeline on both backends, checks the
results are bit-identical, and records the wall-time comparison in
``BENCH_backend.json`` at the repository root.

Note (same caveat as ``test_bench_speedup``): wall-clock speed-up needs
spare CPU cores.  On a single-core host the run still validates the
worker/shared-memory machinery and records honest flat timings; the
speed-up assertion only arms on hosts with >= 4 cores.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.data.generator import generate_cell_points
from repro.stream.kmeans_ops import run_partial_merge_stream

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(backend: str, cells, clones: int):
    return run_partial_merge_stream(
        cells,
        k=40,
        restarts=2,
        n_chunks=8,
        seed=7,
        max_iter=60,
        partial_clones=clones,
        backend=backend,
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="backend comparison needs >= 2 host CPUs to say anything",
)
def test_bench_backend_speedup(benchmark):
    """Threads vs processes: identical bits, wall times to the ledger."""
    host_cpus = os.cpu_count() or 1
    clones = min(4, max(2, host_cpus))
    # A speed-up number measured with fewer cores than clones is not a
    # statement about the backends — it is a statement about the host.
    # Record that honestly so downstream consumers (CI dashboards) can
    # filter instead of being misled by e.g. 0.59x on a 1-CPU runner.
    meaningful = host_cpus >= clones
    cells = {"cell": generate_cell_points(10_000, seed=7)}

    thread_models, thread_outcome = _run("threads", cells, clones)
    process_models, process_outcome = benchmark.pedantic(
        lambda: _run("processes", cells, clones), rounds=1, iterations=1
    )

    # The backends must not disagree on a single output bit.
    assert set(thread_models) == set(process_models)
    for cell in thread_models:
        assert (
            thread_models[cell].centroids.tobytes()
            == process_models[cell].centroids.tobytes()
        )
        assert (
            thread_models[cell].weights.tobytes()
            == process_models[cell].weights.tobytes()
        )

    thread_wall = thread_outcome.metrics.wall_seconds
    process_wall = process_outcome.metrics.wall_seconds
    speedup = thread_wall / process_wall if process_wall > 0 else float("inf")

    payload = {
        "host_cpus": host_cpus,
        "clones": clones,
        "n_points": 10_000,
        "k": 40,
        "n_chunks": 8,
        "threads": {
            "wall_seconds": thread_wall,
            "partial_busy_seconds": thread_outcome.metrics.busy_seconds_for(
                "partial"
            ),
        },
        "processes": {
            "wall_seconds": process_wall,
            "partial_busy_seconds": process_outcome.metrics.busy_seconds_for(
                "partial"
            ),
            "worker_busy_seconds": process_outcome.metrics.worker_busy_seconds,
            "shm_megabytes": process_outcome.metrics.shm_bytes / 1e6,
            "workers": [
                {
                    "name": worker.name,
                    "items": worker.items,
                    "busy_seconds": worker.busy_seconds,
                    "spawn_seconds": worker.spawn_seconds,
                }
                for worker in process_outcome.metrics.workers
            ],
        },
        "speedup_processes_over_threads": speedup,
        "meaningful": meaningful,
        "bit_identical": True,
    }
    (_REPO_ROOT / "BENCH_backend.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    print()
    print(
        f"backend comparison ({clones} clones, {host_cpus} host cpus): "
        f"threads {thread_wall:.3f}s vs processes {process_wall:.3f}s "
        f"({speedup:.2f}x)"
    )

    metrics = process_outcome.metrics
    assert metrics.backend == "processes"
    assert len(metrics.workers) == clones
    assert metrics.shm_bytes > 0
    assert metrics.worker_busy_seconds > 0

    if meaningful and host_cpus >= 4:
        # With real cores the GIL-free workers must clearly win.  On
        # hosts with fewer cores than clones the comparison is recorded
        # (with "meaningful": false) but never asserted on.
        assert speedup > 1.5
