"""Benchmark: the Figure-2 parallelization taxonomy (Methods A, B, C).

The paper analyses (Section 2.1) why the conventional parallelizations do
not remove the memory bottleneck: Method A/B still require a whole cell in
one machine's memory; Method C divides memory but pays per-iteration
message passing.  This benchmark measures all three on the same cell and
prints Method C's communication ledger next to partial/merge's one-shot
exchange.
"""

from __future__ import annotations

from repro.baselines.parallel_methods import (
    method_a_cells_in_parallel,
    method_b_restarts_in_parallel,
    method_c_distance_partitioned,
)
from repro.core.pipeline import PartialMergeKMeans
from repro.data.generator import generate_cell_points

_N_POINTS = 10_000
_K = 40
_SLAVES = 4


def test_bench_method_a(benchmark):
    cells = {
        f"cell{i}": generate_cell_points(_N_POINTS // 4, seed=i) for i in range(4)
    }
    models = benchmark.pedantic(
        lambda: method_a_cells_in_parallel(
            cells, k=_K, restarts=2, max_workers=4, seed=0, max_iter=60
        ),
        rounds=1,
        iterations=1,
    )
    assert set(models) == set(cells)


def test_bench_method_b(benchmark):
    points = generate_cell_points(_N_POINTS, seed=1)
    model = benchmark.pedantic(
        lambda: method_b_restarts_in_parallel(
            points, k=_K, restarts=4, max_workers=4, seed=0, max_iter=60
        ),
        rounds=1,
        iterations=1,
    )
    assert model.mse == min(model.extra["restart_mses"])


def test_bench_method_c_vs_partial_merge(benchmark):
    """Method C's per-iteration messaging vs partial/merge's single pass."""
    points = generate_cell_points(_N_POINTS, seed=1)

    model_c, stats = benchmark.pedantic(
        lambda: method_c_distance_partitioned(
            points, k=_K, n_slaves=_SLAVES, seed=0, max_iter=60
        ),
        rounds=1,
        iterations=1,
    )

    report = PartialMergeKMeans(
        k=_K, restarts=2, n_chunks=_SLAVES, max_iter=60, seed=0
    ).fit(points)

    # Partial/merge communication: each point shipped once to a partition,
    # each partition returns k weighted centroids once.
    pm_messages = _N_POINTS + _SLAVES * _K
    c_messages = stats.migrated_points + stats.broadcasts * _K

    print()
    print(
        f"Method C       : {stats.iterations} iterations, "
        f"{stats.migrated_points} migrated points, "
        f"{stats.broadcasts} broadcasts (~{c_messages} unit messages)"
    )
    print(
        f"partial/merge  : single pass, ~{pm_messages} unit messages, "
        f"mse={report.model.mse:.2f} vs method-C mse={model_c.mse:.2f}"
    )

    # Shape: Method C keeps exchanging messages every iteration; its
    # total broadcast count alone must exceed the merge step's entire
    # centroid traffic.
    assert stats.broadcasts * _K > _SLAVES * _K
    assert stats.iterations > 1
