"""Benchmark: the Section 5.1 parallel speed-up configuration.

Paper reference: the second test configuration measures "speed-up of the
processing if the partial k-means operators are parallelized, and run on
different machines".  Clones of the partial operator stand in for the
paper's 4 Dell PCs.

Note (recorded in EXPERIMENTS.md): clones are threads, so wall-clock
speed-up requires spare CPU cores; on a single-core host the experiment
still validates the plan/clone/queue machinery and the per-clone
utilization accounting, but wall time stays flat.
"""

from __future__ import annotations

import os

from repro.experiments.speedup import render_speedup, run_speedup_experiment
from repro.stream.distributed import (
    DistributedSimulation,
    calibrate_ops_per_second,
    paper_testbed,
)


def test_bench_speedup(benchmark):
    """Run the clone sweep; assert ledger consistency, print the table."""
    points = run_speedup_experiment(
        n_points=10_000,
        k=40,
        restarts=2,
        n_chunks=8,
        clone_counts=(1, 2, 4),
        seed=7,
        max_iter=60,
    )

    # Benchmark the single-clone pipeline as the reference measurement.
    benchmark.pedantic(
        lambda: run_speedup_experiment(
            n_points=10_000,
            k=40,
            restarts=2,
            n_chunks=8,
            clone_counts=(1,),
            seed=7,
            max_iter=60,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(render_speedup(points))

    assert points[0].speedup == 1.0
    # Every clone count must produce a complete, positive measurement.
    for point in points:
        assert point.wall_seconds > 0
        assert point.partial_busy_seconds > 0

    if (os.cpu_count() or 1) >= 4:
        # With real cores available, 4 clones must beat 1 clone.
        assert points[-1].speedup > 1.2


def test_bench_speedup_simulated_testbed(benchmark):
    """The paper's 4-PC deployment on the calibrated cluster simulator.

    Reproduces the related work's "near-linear scale-up" expectation for
    cloned partial operators on shared-nothing machines, independent of
    this container's core count.  Machine throughput is calibrated by
    running the real Lloyd kernel on this host.
    """
    ops = benchmark.pedantic(calibrate_ops_per_second, rounds=1, iterations=1)

    makespans = {}
    reports = {}
    for n_machines in (1, 2, 4):
        sim = DistributedSimulation(paper_testbed(n_machines, ops_per_second=ops))
        report = sim.simulate_partial_merge(
            n_points=75_000,
            dim=6,
            k=40,
            n_chunks=12,
            restarts=10,
            partial_iterations=17.0,
        )
        makespans[n_machines] = report.makespan_seconds
        reports[n_machines] = report

    print()
    print(f"host calibration: {ops:.2e} distance-ops/s")
    print(f"{'machines':>9} {'makespan (s)':>13} {'speedup':>8} {'net (MB)':>9}")
    for n_machines, makespan in makespans.items():
        print(
            f"{n_machines:>9} {makespan:>13.2f} "
            f"{makespans[1] / makespan:>8.2f} "
            f"{reports[n_machines].network_bytes / 1e6:>9.1f}"
        )

    # Shape: near-linear at 2 machines, monotone through 4 (12 chunks on
    # 4 machines balance exactly, so near-linear holds there too).
    assert makespans[1] / makespans[2] > 1.8
    assert makespans[2] / makespans[4] > 1.6
    # Network cost stays trivial next to compute at gigabit speeds.
    four = reports[4]
    assert four.network_bytes / 125e6 < 0.1 * four.makespan_seconds
