"""Benchmark: Lloyd kernels (dense vs hamerly vs tiled) across (n, k, d).

One fixed-seed Lloyd run per kernel per configuration, from identical
seeds, on the same synthetic MISR-style mixture the paper's experiments
use.  Three things are checked and recorded into ``BENCH_kernel.json`` at
the repository root:

* **bit identity** — every kernel's centroids/assignments/SSE/iterations
  must match the dense reference exactly (the determinism contract the
  engine's resume and cross-backend guarantees rest on);
* **counter-verified work reduction** — on the flagship n=50k, k=40 row
  the hamerly kernel must *compute strictly fewer distance evaluations*
  than dense (not merely run faster: wall time can lie, counters cannot);
* **wall-clock speed-up** — hamerly >= 1.3x dense on that same row.

The tiled kernel's purpose is memory boundedness (it never materialises
the full ``(n, k)`` distance matrix), not raw speed; its wall time is
recorded but not asserted on.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.kmeans import lloyd
from repro.data.generator import generate_cell_points

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: (n, k, d) grid; the last row is the flagship workload the acceptance
#: thresholds apply to (n >= 50k, k >= 40).
_GRID = [
    (5_000, 8, 4),
    (20_000, 40, 6),
    (50_000, 40, 6),
]
_FLAGSHIP = (50_000, 40, 6)
_MAX_ITER = 120
_KERNELS = ("dense", "hamerly", "tiled")


def _run_one(points, seeds, kernel):
    started = time.perf_counter()
    result = lloyd(points, seeds, max_iter=_MAX_ITER, kernel=kernel)
    wall = time.perf_counter() - started
    return result, wall


def test_bench_kernel(benchmark):
    """Compare kernels across the grid; write BENCH_kernel.json."""
    rows = []
    flagship_row = None
    for n, k, d in _GRID:
        points = generate_cell_points(n, seed=29, dim=d)
        seed_rng = np.random.default_rng(41)
        seeds = points[seed_rng.choice(n, size=k, replace=False)]

        results = {}
        walls = {}
        for kernel in _KERNELS:
            if kernel == "hamerly" and (n, k, d) == _FLAGSHIP:
                # The flagship hamerly run is the benchmarked measurement.
                result, wall = benchmark.pedantic(
                    lambda: _run_one(points, seeds, "hamerly"),
                    rounds=1,
                    iterations=1,
                )
            else:
                result, wall = _run_one(points, seeds, kernel)
            results[kernel] = result
            walls[kernel] = wall

        dense = results["dense"]
        for kernel in _KERNELS[1:]:
            alt = results[kernel]
            assert alt.assignments.tobytes() == dense.assignments.tobytes(), (
                kernel, n, k, d,
            )
            assert alt.centroids.tobytes() == dense.centroids.tobytes(), (
                kernel, n, k, d,
            )
            assert alt.sse == dense.sse, (kernel, n, k, d)
            assert alt.iterations == dense.iterations, (kernel, n, k, d)

        row = {
            "n": n,
            "k": k,
            "d": d,
            "iterations": dense.iterations,
            "converged": dense.converged,
            "bit_identical": True,
            "kernels": {
                kernel: {
                    "wall_seconds": walls[kernel],
                    "speedup_vs_dense": (
                        walls["dense"] / walls[kernel]
                        if walls[kernel] > 0
                        else float("inf")
                    ),
                    "counters": results[kernel].counters.as_dict(),
                }
                for kernel in _KERNELS
            },
        }
        rows.append(row)
        if (n, k, d) == _FLAGSHIP:
            flagship_row = row

        print()
        print(
            f"(n={n}, k={k}, d={d}, iters={dense.iterations}): "
            + "  ".join(
                f"{kernel} {walls[kernel]:.3f}s"
                f" ({walls['dense'] / max(walls[kernel], 1e-12):.2f}x)"
                for kernel in _KERNELS
            )
        )

    assert flagship_row is not None
    hamerly = flagship_row["kernels"]["hamerly"]
    dense = flagship_row["kernels"]["dense"]
    evals_saved = (
        dense["counters"]["distance_evals_computed"]
        - hamerly["counters"]["distance_evals_computed"]
    )
    payload = {
        "max_iter": _MAX_ITER,
        "flagship": {"n": _FLAGSHIP[0], "k": _FLAGSHIP[1], "d": _FLAGSHIP[2]},
        "flagship_hamerly_speedup": hamerly["speedup_vs_dense"],
        "flagship_hamerly_evals_saved": evals_saved,
        "rows": rows,
    }
    (_REPO_ROOT / "BENCH_kernel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Counter-verified, not just wall time: the hamerly kernel must do
    # strictly less distance work than the dense reference.
    assert (
        hamerly["counters"]["distance_evals_computed"]
        < dense["counters"]["distance_evals_computed"]
    )
    assert hamerly["counters"]["distance_evals_skipped"] > 0
    assert evals_saved > 0
    # Exact accounting: a bounds pass costs (n - m) + m*k <= n*k, so
    # computed + skipped must equal the dense reference's work precisely.
    assert (
        hamerly["counters"]["distance_evals_computed"]
        + hamerly["counters"]["distance_evals_skipped"]
        == dense["counters"]["distance_evals_computed"]
    )
    # And the pruning must pay off in wall time on the flagship workload.
    assert hamerly["speedup_vs_dense"] >= 1.3
