"""Benchmark: the two-tier Lloyd kernel layer across (n, k, d).

One fixed-seed Lloyd run per kernel per configuration, from identical
seeds, on the same synthetic MISR-style mixture the paper's experiments
use.  Walls are the min of two runs per kernel (single-CPU containers
jitter ~10%; the min damps it without hiding a real regression).  Four
things are checked and recorded into ``BENCH_kernel.json``:

* **bit identity** — every *exact* kernel's centroids/assignments/SSE/
  iterations must match the dense reference exactly (the determinism
  contract the engine's resume and cross-backend guarantees rest on);
* **tolerance** — the ``blas`` tier (``exact=False``) must land within
  :func:`repro.core.kernels.blas_mse_tolerance` of the dense MSE;
* **counter-verified work reduction** — on the flagship n=50k, k=40 row
  the bounds kernels must *compute strictly fewer distance evaluations*
  than dense with exact ``computed + skipped == dense`` accounting (wall
  time can lie, counters cannot);
* **wall-clock speed-up** — at the flagship config the best exact kernel
  must be >= 3x dense and ``blas`` >= 5x dense.

The ledger also records ``host_cpus``, the NumPy version and the
detected BLAS implementation, plus the honest ``meaningful`` flag the
other BENCH ledgers carry (speed ratios measured on a loaded or
single-CPU host are reported either way, but flagged).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.kernels import blas_mse_tolerance
from repro.core.kmeans import lloyd
from repro.data.generator import generate_cell_points

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: (n, k, d) grid; the last row is the flagship workload the acceptance
#: thresholds apply to (n >= 50k, k >= 40).
_GRID = [
    (5_000, 8, 4),
    (20_000, 40, 6),
    (50_000, 40, 6),
]
_FLAGSHIP = (50_000, 40, 6)
_MAX_ITER = 120
#: kernel name -> exact flag passed to lloyd().
_KERNELS = {
    "dense": None,
    "hamerly": None,
    "elkan": None,
    "blas": False,
}
_EXACT_KERNELS = ("hamerly", "elkan")
#: Wall measurements per kernel; the recorded wall is the min.
_ROUNDS = 2


def _blas_backend() -> str:
    """Best-effort detection of the BLAS implementation NumPy links."""
    try:  # threadpoolctl gives the authoritative answer when present
        from threadpoolctl import threadpool_info

        names = {
            info.get("internal_api", "")
            for info in threadpool_info()
            if info.get("user_api") == "blas"
        }
        if names:
            return ",".join(sorted(names))
    except ImportError:
        pass
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "")
        if name:
            return str(name)
    except (TypeError, AttributeError):  # older numpy: mode kwarg missing
        pass
    return "unknown"


def _run_one(points, seeds, kernel, exact):
    best_wall = float("inf")
    result = None
    for _ in range(_ROUNDS):
        started = time.perf_counter()
        result = lloyd(
            points, seeds, max_iter=_MAX_ITER, kernel=kernel, exact=exact
        )
        best_wall = min(best_wall, time.perf_counter() - started)
    return result, best_wall


def test_bench_kernel(benchmark):
    """Compare kernels across the grid; write BENCH_kernel.json."""
    rows = []
    flagship_row = None
    for n, k, d in _GRID:
        points = generate_cell_points(n, seed=29, dim=d)
        seed_rng = np.random.default_rng(41)
        seeds = points[seed_rng.choice(n, size=k, replace=False)]

        results = {}
        walls = {}
        for kernel, exact in _KERNELS.items():
            if kernel == "elkan" and (n, k, d) == _FLAGSHIP:
                # The flagship exact-tier run is the benchmarked measurement.
                result, wall = benchmark.pedantic(
                    lambda: _run_one(points, seeds, "elkan", None),
                    rounds=1,
                    iterations=1,
                )
            else:
                result, wall = _run_one(points, seeds, kernel, exact)
            results[kernel] = result
            walls[kernel] = wall

        dense = results["dense"]
        for kernel in _EXACT_KERNELS:
            alt = results[kernel]
            assert alt.assignments.tobytes() == dense.assignments.tobytes(), (
                kernel, n, k, d,
            )
            assert alt.centroids.tobytes() == dense.centroids.tobytes(), (
                kernel, n, k, d,
            )
            assert alt.sse == dense.sse, (kernel, n, k, d)
            assert alt.iterations == dense.iterations, (kernel, n, k, d)

        # The blas tier waives bit-identity; its MSE must stay within the
        # documented tolerance of the dense reference.
        blas = results["blas"]
        blas_tol = blas_mse_tolerance(points, dense.mse)
        blas_mse_error = abs(blas.mse - dense.mse)
        assert blas_mse_error <= blas_tol, (n, k, d, blas.mse, dense.mse)

        row = {
            "n": n,
            "k": k,
            "d": d,
            "iterations": dense.iterations,
            "converged": dense.converged,
            "exact_bit_identical": True,
            "blas_mse_error": blas_mse_error,
            "blas_mse_tolerance": blas_tol,
            "kernels": {
                kernel: {
                    "exact": kernel != "blas",
                    "wall_seconds": walls[kernel],
                    "speedup_vs_dense": (
                        walls["dense"] / walls[kernel]
                        if walls[kernel] > 0
                        else float("inf")
                    ),
                    "counters": results[kernel].counters.as_dict(),
                }
                for kernel in _KERNELS
            },
        }
        rows.append(row)
        if (n, k, d) == _FLAGSHIP:
            flagship_row = row

        print()
        print(
            f"(n={n}, k={k}, d={d}, iters={dense.iterations}): "
            + "  ".join(
                f"{kernel} {walls[kernel]:.3f}s"
                f" ({walls['dense'] / max(walls[kernel], 1e-12):.2f}x)"
                for kernel in _KERNELS
            )
        )

    assert flagship_row is not None
    kernels = flagship_row["kernels"]
    dense = kernels["dense"]
    best_exact = max(
        _EXACT_KERNELS, key=lambda name: kernels[name]["speedup_vs_dense"]
    )
    host_cpus = os.cpu_count() or 1
    payload = {
        "max_iter": _MAX_ITER,
        "rounds_per_wall": _ROUNDS,
        "host_cpus": host_cpus,
        "numpy_version": np.__version__,
        "blas_backend": _blas_backend(),
        # Ratio gates survive a slow host (both sides slow down together),
        # but a multi-tenant or hyper-threaded-only host can still skew
        # them; flag single-core hosts honestly like the other ledgers.
        "meaningful": host_cpus >= 2,
        "flagship": {"n": _FLAGSHIP[0], "k": _FLAGSHIP[1], "d": _FLAGSHIP[2]},
        "flagship_best_exact_kernel": best_exact,
        "flagship_best_exact_speedup": kernels[best_exact]["speedup_vs_dense"],
        "flagship_blas_speedup": kernels["blas"]["speedup_vs_dense"],
        "rows": rows,
    }
    (_REPO_ROOT / "BENCH_kernel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Counter-verified, not just wall time: every exact bounds kernel must
    # do strictly less distance work than the dense reference, with exact
    # computed + skipped == dense accounting.
    for name in _EXACT_KERNELS:
        counters = kernels[name]["counters"]
        assert (
            counters["distance_evals_computed"]
            < dense["counters"]["distance_evals_computed"]
        ), name
        assert counters["distance_evals_skipped"] > 0, name
        assert (
            counters["distance_evals_computed"]
            + counters["distance_evals_skipped"]
            == dense["counters"]["distance_evals_computed"]
        ), name
    # The elkan group bounds and the blas GEMM counters must be live.
    assert kernels["elkan"]["counters"]["bound_groups"] > 0
    assert kernels["blas"]["counters"]["gemm_calls"] > 0
    # The acceptance gates: best exact kernel >= 3x, blas tier >= 5x.
    assert kernels[best_exact]["speedup_vs_dense"] >= 3.0
    assert kernels["blas"]["speedup_vs_dense"] >= 5.0
