"""Shared fixtures for the benchmark suite.

The experiment grid is run once per session and shared by the Table 2 and
Figure 6/7/8 benchmarks.  Select the grid size with the
``REPRO_BENCH_CONFIG`` environment variable:

* ``smoke`` — seconds (CI sanity),
* ``quick`` — default; preserves the paper's experiment shape at ~1/50th
  of the cost,
* ``paper`` — the full Section 5.1 grid (N up to 75,000, R=10; hours).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.configs import paper_config, quick_config, smoke_config
from repro.experiments.harness import run_grid

_CONFIGS = {
    "smoke": smoke_config,
    "quick": quick_config,
    "paper": paper_config,
}


def selected_config():
    """The grid selected by ``REPRO_BENCH_CONFIG`` (default: quick)."""
    name = os.environ.get("REPRO_BENCH_CONFIG", "quick")
    if name not in _CONFIGS:
        raise ValueError(
            f"REPRO_BENCH_CONFIG={name!r} not in {sorted(_CONFIGS)}"
        )
    return _CONFIGS[name]()


@pytest.fixture(scope="session")
def grid_results():
    """The full experiment grid, run once and shared across benchmarks."""
    return run_grid(selected_config())
