"""Benchmark: serving latency, throughput and ingest freshness.

The serving layer's reason to exist (ISSUE 8): interactive answers from
warm models instead of per-query pipeline runs.  This benchmark
warm-starts a :class:`~repro.serve.registry.ModelRegistry` from a real
journal, drives a :class:`~repro.serve.server.ClusterServer` with the
built-in deterministic load generator, and writes ``BENCH_serving.json``
at the repository root:

* **latency** — client-side p50/p99 per endpoint under a mixed
  assign/summary/window/ingest load;
* **throughput** — total QPS over the run;
* **freshness** — ingest update lag (enqueue to fold applied), the time
  a new chunk takes to become visible to queries;
* **warm start** — registry recovery time from the journal.

Latency percentiles measured on a shared CI runner describe the host as
much as the server, so the payload carries the same honest
``meaningful`` flag as the other ledgers instead of a tight gate; the
hard assertions are the ones that hold anywhere (non-zero throughput,
zero errors, p99 under half a second).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import write_bucket_dir
from repro.serve import ClusterServer, LoadGenerator, ModelRegistry
from repro.stream.query import Query

_REPO_ROOT = Path(__file__).resolve().parent.parent

_K = 4
_CELLS = 3
_POINTS_PER_CELL = 2_000
_CHUNKS = 4
_DURATION_SECONDS = 3.0
_CONCURRENCY = 4
#: Every endpoint must stay under this p99 even on a starved runner.
_P99_CEILING_MS = 500.0


def _build_journal(tmp_path: Path) -> Path:
    cells = [
        GridCell(
            GridCellId(10 + index, 20),
            generate_cell_points(_POINTS_PER_CELL, seed=40 + index),
        )
        for index in range(_CELLS)
    ]
    write_bucket_dir(tmp_path / "buckets", cells)
    run_dir = tmp_path / "run"
    (
        Query.scan_buckets(str(tmp_path / "buckets"))
        .partition(_CHUNKS)
        .cluster(k=_K, restarts=2)
        .merge()
        .with_seed(11)
        .checkpoint(run_dir, fsync=False)
        .execute()
    )
    return run_dir


def test_bench_serving(tmp_path, benchmark):
    """Load-test a warm server; write BENCH_serving.json."""
    run_dir = _build_journal(tmp_path)

    warm_began = time.perf_counter()
    registry = ModelRegistry(run_dir, k=_K, seed=11, fsync=False)
    warm_seconds = time.perf_counter() - warm_began
    assert registry.cells_adopted == _CELLS

    with ClusterServer(registry, query_workers=2) as server:
        generator = LoadGenerator(server, server.cells(), seed=5)
        report = benchmark.pedantic(
            lambda: generator.run(_DURATION_SECONDS, concurrency=_CONCURRENCY),
            rounds=1,
            iterations=1,
        )
        serving_snapshot = server.metrics.snapshot()
        registry_stats = registry.stats()

    print()
    for line in report.summary_lines():
        print(line)
    print(f"warm start: {warm_seconds * 1e3:.1f} ms")

    # Hard gates that hold on any host.
    assert report.qps > 0, report
    assert report.errors == 0, report
    worst_p99 = max(
        stats["p99_ms"] for stats in report.endpoints.values()
    )
    assert worst_p99 < _P99_CEILING_MS, report.endpoints
    # Ingest traffic ran and its freshness was measured.
    assert report.endpoints["ingest"]["count"] > 0
    assert report.update_lag_ms["p99"] > 0

    host_cpus = os.cpu_count() or 1
    payload = {
        "k": _K,
        "cells": _CELLS,
        "points_per_cell": _POINTS_PER_CELL,
        "duration_seconds": report.duration_seconds,
        "concurrency": _CONCURRENCY,
        "warm_start_seconds": warm_seconds,
        "qps": report.qps,
        "total_requests": report.total_requests,
        "errors": report.errors,
        "p50_ms": {
            op: stats["p50_ms"] for op, stats in report.endpoints.items()
        },
        "p99_ms": {
            op: stats["p99_ms"] for op, stats in report.endpoints.items()
        },
        "update_lag_ms": report.update_lag_ms,
        "serving": serving_snapshot,
        "registry": registry_stats,
        # Latency on a runner with fewer spare cores than client threads
        # + server threads describes the host, not the server; flag it.
        "meaningful": host_cpus >= 4,
    }
    (_REPO_ROOT / "BENCH_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
