"""Benchmark: is the partial/merge advantage robust to the choice of k?

The paper fixes k = 40 and assumes the choice is appropriate.  This
sweep verifies the conclusions do not hinge on that choice: across
k ∈ {10, 20, 40, 80} the partial/merge time advantage persists and its
raw-point quality stays in the serial class.
"""

from __future__ import annotations

from repro.experiments.sensitivity import (
    render_k_sensitivity,
    run_k_sensitivity,
)


def test_bench_k_sensitivity(benchmark):
    points = benchmark.pedantic(
        lambda: run_k_sensitivity(
            ks=(10, 20, 40, 80),
            n_points=10_000,
            restarts=3,
            n_chunks=10,
            seed=0,
            max_iter=100,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(render_k_sensitivity(points))

    for point in points:
        # Quality: within the serial class at every k.
        assert point.quality_ratio < 2.0
        # Monotone structure: more clusters, less error (both algorithms).
    serial_mses = [p.serial_mse for p in points]
    split_mses = [p.split_mse for p in points]
    assert serial_mses == sorted(serial_mses, reverse=True)
    assert split_mses == sorted(split_mses, reverse=True)

    # Time advantage holds for every non-trivial k.
    for point in points:
        if point.k >= 20:
            assert point.time_ratio > 1.0
