"""Benchmark: shard-runtime recovery latency and worker scaling.

Two questions the shard runtime (``repro.stream.shard``) must answer
with numbers, recorded in ``BENCH_shard.json`` at the repository root:

* **How fast is recovery?**  Repeated trials SIGKILL one of three
  workers mid-run (a seeded ``FaultPlan``, different seed per trial so
  the kill lands at different partitions); each trial's
  ``RecoveryEvent.recovery_seconds`` (loss detected -> last affected
  cell finished) is collected and reported as p50/p95 alongside
  reassignment and journal-replay counts.  Every chaos trial is also
  checked bit-identical against the fault-free run — a fast recovery to
  the wrong bits would not be a recovery.
* **Does it scale?**  The same workload on 1/2/4 workers.  The same
  caveat as ``test_bench_backend_speedup`` applies: wall-clock speed-up
  needs spare CPU cores, so the scaling numbers carry a ``meaningful``
  flag instead of a hard assertion on starved hosts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.data.generator import generate_cell_points
from repro.stream.faults import FaultPlan, FaultSpec
from repro.stream.shard import ShardConfig, run_sharded

_REPO_ROOT = Path(__file__).resolve().parent.parent

_N_CELLS = 6
_POINTS_PER_CELL = 2_000
_K = 8
_N_CHUNKS = 5
_SEED = 42
_KILL_TRIALS = 5


def _cells():
    return {
        f"lat{i}lon0": generate_cell_points(_POINTS_PER_CELL, seed=100 + i)
        for i in range(_N_CELLS)
    }


def _config(n_workers: int) -> ShardConfig:
    return ShardConfig(
        n_workers=n_workers,
        heartbeat_interval=0.05,
        heartbeat_timeout=0.5,
    )


def _run(cells, n_workers: int, fault_plan=None):
    return run_sharded(
        cells,
        k=_K,
        restarts=1,
        n_chunks=_N_CHUNKS,
        seed=_SEED,
        max_iter=60,
        config=_config(n_workers),
        fault_plan=fault_plan,
    )


def _percentile(values, q):
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def test_bench_shard_recovery_and_scaling(benchmark):
    host_cpus = os.cpu_count() or 1
    cells = _cells()

    baseline_models, baseline_metrics = _run(cells, n_workers=3)

    # -- recovery latency under repeated mid-run SIGKILLs ------------------
    latencies, reassigned, replayed = [], [], []
    for trial in range(_KILL_TRIALS):
        plan = FaultPlan(
            seed=100 + trial,
            specs=[
                FaultSpec(
                    target="worker#1", kind="kill", at_index=1 + trial * 2
                )
            ],
        )
        chaos_models, chaos_metrics = _run(cells, n_workers=3, fault_plan=plan)
        for cell_id, model in baseline_models.items():
            assert (
                model.centroids.tobytes()
                == chaos_models[cell_id].centroids.tobytes()
            ), f"trial {trial}: {cell_id} diverged"
            assert not chaos_models[cell_id].extra.get("incomplete")
        assert chaos_metrics.recoveries, f"trial {trial}: kill never landed"
        for event in chaos_metrics.recoveries:
            latencies.append(event.recovery_seconds)
            reassigned.append(event.cells_reassigned)
            replayed.append(event.replayed_records)

    # -- worker scaling ----------------------------------------------------
    scaling = []
    for n_workers in (1, 2, 4):
        if n_workers == 4:
            # The benchmark fixture may wrap only one call; give it the
            # widest configuration and time the rest via wall_seconds.
            _, metrics = benchmark.pedantic(
                lambda: _run(cells, n_workers=4), rounds=1, iterations=1
            )
        else:
            _, metrics = _run(cells, n_workers=n_workers)
        scaling.append(
            {"workers": n_workers, "wall_seconds": metrics.wall_seconds}
        )
    base_wall = scaling[0]["wall_seconds"]
    for entry in scaling:
        entry["speedup"] = (
            base_wall / entry["wall_seconds"]
            if entry["wall_seconds"] > 0
            else float("inf")
        )

    payload = {
        "host_cpus": host_cpus,
        "n_cells": _N_CELLS,
        "points_per_cell": _POINTS_PER_CELL,
        "k": _K,
        "n_chunks": _N_CHUNKS,
        "kill_trials": _KILL_TRIALS,
        "fault_free_wall_seconds": baseline_metrics.wall_seconds,
        "recovery": {
            "latency_p50_seconds": _percentile(latencies, 50),
            "latency_p95_seconds": _percentile(latencies, 95),
            "latency_max_seconds": max(latencies),
            "cells_reassigned_total": int(sum(reassigned)),
            "cells_reassigned_per_loss_p50": _percentile(reassigned, 50),
            "journal_records_replayed_total": int(sum(replayed)),
            "bit_identical": True,
        },
        "scaling": scaling,
        # Scaling numbers from a host with fewer spare cores than
        # workers describe the host, not the runtime; flag them.
        "meaningful": host_cpus >= 4,
    }
    (_REPO_ROOT / "BENCH_shard.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    print()
    print(
        f"shard recovery over {len(latencies)} losses: "
        f"p50 {payload['recovery']['latency_p50_seconds'] * 1e3:.1f}ms "
        f"p95 {payload['recovery']['latency_p95_seconds'] * 1e3:.1f}ms, "
        f"{sum(reassigned)} cells reassigned, "
        f"{sum(replayed)} journal records replayed"
    )
    for entry in scaling:
        print(
            f"  {entry['workers']} worker(s): {entry['wall_seconds']:.3f}s "
            f"({entry['speedup']:.2f}x)"
        )

    assert latencies, "no recovery events recorded"
    assert all(lat >= 0.0 for lat in latencies)
    assert sum(reassigned) >= _KILL_TRIALS
