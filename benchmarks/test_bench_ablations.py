"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. merge seeding: largest-weight (paper) vs random — the paper argues the
   weight-based initialization "forces the algorithm to take into account
   which data points are likely to represent significant cluster
   centroids already".
2. merge discipline: collective (paper) vs incremental (rejected) — the
   paper's statistical-fairness argument.
3. slicing strategy: random (experiments) vs spatial vs salami — the
   paper's Section 6 future work; it predicts locality loss hurts when a
   limited-size cell is sliced.
4. split-count sensitivity: MSE and time as p grows.
"""

from __future__ import annotations

import numpy as np

from repro.core.kmeans import lloyd
from repro.core.merge import incremental_merge_kmeans, merge_kmeans
from repro.core.model import WeightedCentroidSet
from repro.core.partial import partial_kmeans
from repro.core.pipeline import PartialMergeKMeans
from repro.core.quality import mse as evaluate_mse
from repro.core.seeding import random_seeds
from repro.data.generator import generate_cell_points
from repro.data.partitioning import make_partitioner

_N_POINTS = 8_000
_K = 40
_CHUNKS = 8


def _partials(points: np.ndarray, seed: int) -> list[WeightedCentroidSet]:
    rng = np.random.default_rng(seed)
    chunks = make_partitioner("random", seed=seed).split(points, _CHUNKS)
    return [
        partial_kmeans(c, _K, restarts=3, rng=rng, max_iter=60).summary
        for c in chunks
    ]


def test_bench_merge_seeding(benchmark):
    """Largest-weight vs random seeding of the merge k-means."""
    points = generate_cell_points(_N_POINTS, seed=11)
    partials = _partials(points, seed=0)
    pooled = WeightedCentroidSet.concatenate(partials)

    paper_result = benchmark.pedantic(
        lambda: merge_kmeans(partials, _K, max_iter=60),
        rounds=1,
        iterations=1,
    )
    paper_mse = evaluate_mse(points, paper_result.model.centroids)

    random_mses = []
    for trial in range(5):
        seeds = random_seeds(
            pooled.centroids, _K, np.random.default_rng(trial)
        )
        random_run = lloyd(
            pooled.centroids, seeds, weights=pooled.weights, max_iter=60
        )
        random_mses.append(
            evaluate_mse(points, random_run.to_weighted_set().centroids)
        )

    print()
    print(f"merge seeding — largest-weight: mse={paper_mse:.3f}")
    print(
        f"merge seeding — random x5     : mse mean={np.mean(random_mses):.3f} "
        f"best={min(random_mses):.3f} worst={max(random_mses):.3f}"
    )

    # The deterministic paper seeding must be competitive with the
    # *average* random seeding (it avoids the bad tail without restarts).
    assert paper_mse <= np.mean(random_mses) * 1.25


def test_bench_merge_discipline(benchmark):
    """Collective (paper) vs incremental merging of the same partials."""
    points = generate_cell_points(_N_POINTS, seed=12)
    partials = _partials(points, seed=1)

    collective = benchmark.pedantic(
        lambda: merge_kmeans(partials, _K, max_iter=60),
        rounds=1,
        iterations=1,
    )
    incremental = incremental_merge_kmeans(partials, _K, max_iter=60)

    collective_mse = evaluate_mse(points, collective.model.centroids)
    incremental_mse = evaluate_mse(points, incremental.model.centroids)
    print()
    print(f"collective merge : mse={collective_mse:.3f}")
    print(f"incremental merge: mse={incremental_mse:.3f}")

    # The paper's choice must not lose to the rejected alternative by a
    # meaningful margin (it usually wins outright).
    assert collective_mse <= incremental_mse * 1.15


def test_bench_slicing_strategies(benchmark):
    """Random vs spatial vs salami slicing feeding the same pipeline.

    Merge quality is dominated by which local optimum the weighted merge
    finds, so each strategy is averaged over three datasets.  A finding
    this ablation surfaces (recorded in EXPERIMENTS.md): salami slicing
    makes chunks nearly identical, so the largest-weight merge seeding
    tends to pick near-duplicate heavy centroids and can land in worse
    optima than the paper's random split — overlap alone is not enough.
    """
    datasets = [generate_cell_points(_N_POINTS, seed=s) for s in (13, 14, 15)]

    def run(strategy: str) -> float:
        mses = []
        for points in datasets:
            chunks = make_partitioner(strategy, seed=2).split(points, _CHUNKS)
            report = PartialMergeKMeans(k=_K, restarts=3, max_iter=60, seed=2)
            mses.append(
                report.fit_chunks(chunks, evaluate_on=points).model.mse
            )
        return float(np.mean(mses))

    outcomes: dict[str, float] = {}
    outcomes["random"] = benchmark.pedantic(
        lambda: run("random"), rounds=1, iterations=1
    )
    for strategy in ("spatial", "salami"):
        outcomes[strategy] = run(strategy)

    print()
    for strategy, strategy_mse in outcomes.items():
        print(f"slicing {strategy:>8}: mean mse={strategy_mse:.3f}")

    # The paper's random split must be the most reliable strategy (it is
    # never dominated), and all strategies stay within one order of
    # magnitude — slicing changes optima, not correctness.
    assert outcomes["random"] <= min(outcomes.values()) * 1.5
    assert max(outcomes.values()) <= min(outcomes.values()) * 10.0


def test_bench_split_count_sensitivity(benchmark):
    """MSE and wall time as the number of chunks grows."""
    points = generate_cell_points(_N_POINTS, seed=14)
    split_counts = (2, 5, 10, 20)

    def run(n_chunks: int):
        return PartialMergeKMeans(
            k=_K, restarts=3, n_chunks=n_chunks, max_iter=60, seed=3
        ).fit(points)

    reports = {}
    reports[split_counts[0]] = benchmark.pedantic(
        lambda: run(split_counts[0]), rounds=1, iterations=1
    )
    for n_chunks in split_counts[1:]:
        reports[n_chunks] = run(n_chunks)

    print()
    for n_chunks, report in reports.items():
        model = report.model
        print(
            f"p={n_chunks:>3}: raw mse={model.mse:.3f} "
            f"E_pm={report.merge.mse:.3f} t={model.total_seconds:.3f}s"
        )

    # Time shape: more splits never slower by much (smaller chunks
    # converge faster); 20-split must beat 2-split on wall time.
    assert (
        reports[split_counts[-1]].model.total_seconds
        < reports[split_counts[0]].model.total_seconds
    )
    # Quality stays in the same class across split counts (raw metric).
    mses = [r.model.mse for r in reports.values()]
    assert max(mses) < min(mses) * 2.5


def test_bench_ecvq_adaptive_k(benchmark):
    """The paper's Section 3.3 ECVQ remark: adaptive per-partition k.

    ECVQ partial steps start from max_k seeds and let rare centroids
    starve, so each partition settles on its own effective k; the merge
    consumes whatever survives.  Compared against the fixed-k pipeline
    on identical chunks.
    """
    from repro.core.adaptive_k import EcvqPartialMergeKMeans

    points = generate_cell_points(_N_POINTS, seed=15)

    adaptive = benchmark.pedantic(
        lambda: EcvqPartialMergeKMeans(
            k=_K, max_k=2 * _K, lam=0.5, n_chunks=_CHUNKS, max_iter=60, seed=4
        ).fit(points),
        rounds=1,
        iterations=1,
    )
    fixed = PartialMergeKMeans(
        k=_K, restarts=3, n_chunks=_CHUNKS, max_iter=60, seed=4
    ).fit(points)

    print()
    print(
        f"fixed k={_K}     : raw mse={fixed.model.mse:.3f} "
        f"(every partition emits {_K} centroids)"
    )
    print(
        f"ECVQ max_k={2*_K}: raw mse={adaptive.model.mse:.3f} "
        f"effective ks={adaptive.effective_ks}"
    )

    # Shape: ECVQ finds a per-partition k below its ceiling (starvation
    # works) and stays in the same quality class as fixed k.
    assert all(ek <= 2 * _K for ek in adaptive.effective_ks)
    assert any(ek < 2 * _K for ek in adaptive.effective_ks)
    assert adaptive.model.mse < fixed.model.mse * 5 + 1.0


def test_bench_merge_restarts_extension(benchmark):
    """The merge-collapse repair (see EXPERIMENTS.md).

    Salami-sliced chunks are nearly identical, so largest-weight merge
    seeding picks near-duplicate heavy centroids; extra random merge
    restarts must repair the collapsed optima at small extra cost.
    """
    datasets = [generate_cell_points(_N_POINTS, seed=s) for s in (13, 15, 16)]

    def run(merge_restarts: int) -> float:
        mses = []
        for points in datasets:
            chunks = make_partitioner("salami").split(points, _CHUNKS)
            report = PartialMergeKMeans(
                k=_K,
                restarts=3,
                max_iter=60,
                seed=2,
                merge_restarts=merge_restarts,
            ).fit_chunks(chunks, evaluate_on=points)
            mses.append(report.model.mse)
        return float(np.mean(mses))

    plain = benchmark.pedantic(lambda: run(0), rounds=1, iterations=1)
    repaired = run(3)

    print()
    print(f"merge_restarts=0 (paper): mean raw mse={plain:.3f}")
    print(f"merge_restarts=3 (ext)  : mean raw mse={repaired:.3f}")

    assert repaired <= plain + 1e-9
