"""Convergence study: the paper's Section 3.2 complexity argument.

The partial/merge speedup rests on two claims about Lloyd iteration
counts:

* serial: "The algorithm uses I iterations to converge ... If N is
  large, then I increases [sharply]" — iterations grow with cell size;
* partial: "Since N' << N, consequently I' << I for each data
  partition" — chunks converge in fewer iterations, so the summed
  partial cost O(N·K·I') beats the serial O(N·K·I).

:func:`run_convergence_study` measures both I and I' across cell sizes;
the cost-model helpers turn the measured iteration counts into predicted
distance-computation counts so the analytical model can be compared with
measured wall time (``benchmarks/test_bench_convergence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import PartialMergeKMeans
from repro.baselines.serial import SerialKMeans
from repro.data.generator import generate_cell_points

__all__ = [
    "ConvergencePoint",
    "run_convergence_study",
    "serial_distance_ops",
    "partial_merge_distance_ops",
    "render_convergence_study",
]


@dataclass(frozen=True)
class ConvergencePoint:
    """Measured iteration behaviour for one cell size.

    Attributes:
        n_points: cell size.
        serial_iterations: mean Lloyd iterations per serial restart.
        partial_iterations: mean Lloyd iterations per partial restart
            (averaged over chunks).
        serial_seconds: serial wall time.
        partial_merge_seconds: partial/merge wall time.
        n_chunks: chunks used for the partial case.
    """

    n_points: int
    serial_iterations: float
    partial_iterations: float
    serial_seconds: float
    partial_merge_seconds: float
    n_chunks: int


def serial_distance_ops(
    n_points: int, k: int, iterations: float, restarts: int
) -> float:
    """The paper's serial cost model O(R·I·K·N) in distance computations."""
    return restarts * iterations * k * n_points


def partial_merge_distance_ops(
    n_points: int,
    k: int,
    partial_iterations: float,
    restarts: int,
    n_chunks: int,
    merge_iterations: float = 0.0,
) -> float:
    """The paper's partial/merge cost model.

    Partial: O(R·I'·K·N) summed over chunks (each point processed in one
    chunk); merge: O(I2·K·(K·p)) over the pooled centroids.
    """
    partial = restarts * partial_iterations * k * n_points
    merge = merge_iterations * k * (k * n_chunks)
    return partial + merge


def run_convergence_study(
    sizes: tuple[int, ...] = (500, 2_000, 8_000, 20_000),
    k: int = 40,
    restarts: int = 3,
    n_chunks: int = 10,
    seed: int = 0,
    max_iter: int = 300,
) -> list[ConvergencePoint]:
    """Measure serial and partial iteration counts across cell sizes."""
    if any(size < k for size in sizes):
        raise ValueError("every size must be >= k")
    points_list: list[ConvergencePoint] = []
    for index, n_points in enumerate(sizes):
        data = generate_cell_points(n_points, seed=seed + index)

        serial_model = SerialKMeans(
            k, restarts=restarts, max_iter=max_iter, seed=seed
        ).fit(data)
        serial_iters = float(np.mean(serial_model.extra["iterations"]))

        chunks = min(n_chunks, n_points)
        report = PartialMergeKMeans(
            k=k,
            restarts=restarts,
            n_chunks=chunks,
            max_iter=max_iter,
            seed=seed,
        ).fit(data)
        # partial_iterations in extra counts total over restarts per chunk.
        per_chunk_totals = report.model.extra["partial_iterations"]
        partial_iters = float(np.mean(per_chunk_totals)) / restarts

        points_list.append(
            ConvergencePoint(
                n_points=n_points,
                serial_iterations=serial_iters,
                partial_iterations=partial_iters,
                serial_seconds=serial_model.total_seconds,
                partial_merge_seconds=report.model.total_seconds,
                n_chunks=chunks,
            )
        )
    return points_list


def render_convergence_study(
    study: list[ConvergencePoint], k: int = 40, restarts: int = 3
) -> str:
    """Fixed-width table: measured iterations and modelled cost ratios."""
    header = (
        f"{'N':>8} {'I (serial)':>11} {'I` (partial)':>13} "
        f"{'model speedup':>14} {'measured speedup':>17}"
    )
    lines = [
        "Convergence study — iterations to converge and the paper's cost model",
        header,
        "-" * len(header),
    ]
    for point in study:
        model_ratio = serial_distance_ops(
            point.n_points, k, point.serial_iterations, restarts
        ) / partial_merge_distance_ops(
            point.n_points,
            k,
            point.partial_iterations,
            restarts,
            point.n_chunks,
        )
        measured_ratio = point.serial_seconds / max(
            point.partial_merge_seconds, 1e-9
        )
        lines.append(
            f"{point.n_points:>8,} {point.serial_iterations:>11.1f} "
            f"{point.partial_iterations:>13.1f} {model_ratio:>14.2f} "
            f"{measured_ratio:>17.2f}"
        )
    return "\n".join(lines)
