"""One-command reproduction report.

``generate_report`` runs the full evaluation — the Table 2 grid, Figures
6/7/8, the speed-up test (measured and simulated), and the convergence
study — and writes a self-contained markdown report.  This is the
artifact a reviewer asks for: everything regenerated from source in one
call, with the configuration stamped at the top.

CLI: ``repro-kmeans report --config quick --out REPORT.md``.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.configs import ExperimentConfig
from repro.experiments.convergence_study import (
    render_convergence_study,
    run_convergence_study,
)
from repro.experiments.figures import (
    figure6,
    figure7,
    figure7_fair,
    figure8,
    render_figure,
)
from repro.experiments.harness import ResultSet, run_grid
from repro.experiments.speedup import render_speedup, run_speedup_experiment
from repro.experiments.tables import render_table2
from repro.stream.distributed import (
    DistributedSimulation,
    calibrate_ops_per_second,
    paper_testbed,
)

__all__ = ["generate_report"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def _simulated_speedup_section() -> str:
    ops = calibrate_ops_per_second(n_points=10_000)
    lines = [
        f"host calibration: {ops:.3e} distance-ops/s",
        f"{'machines':>9} {'makespan (s)':>13} {'speedup':>8}",
    ]
    base = None
    for n_machines in (1, 2, 4):
        sim = DistributedSimulation(paper_testbed(n_machines, ops_per_second=ops))
        report = sim.simulate_partial_merge(
            n_points=75_000,
            dim=6,
            k=40,
            n_chunks=12,
            restarts=10,
            partial_iterations=17.0,
        )
        base = base or report.makespan_seconds
        lines.append(
            f"{n_machines:>9} {report.makespan_seconds:>13.2f} "
            f"{base / report.makespan_seconds:>8.2f}"
        )
    return "\n".join(lines)


def generate_report(
    config: ExperimentConfig,
    out_path: str | Path,
    results: ResultSet | None = None,
    include_speedup: bool = True,
    include_convergence: bool = True,
    progress=None,
) -> Path:
    """Run the evaluation and write a markdown report.

    Args:
        config: the experiment grid to run.
        out_path: where to write the markdown.
        results: pre-computed grid results to reuse (skips the grid run).
        include_speedup: include the measured and simulated speed-up.
        include_convergence: include the iteration study.
        progress: optional status callback.

    Returns:
        The written path.
    """
    def report_progress(message: str) -> None:
        if progress is not None:
            progress(message)

    if results is None:
        report_progress(f"running {config.label} grid ...")
        results = run_grid(config, progress=progress)

    sections = [
        "# Reproduction report — partial/merge k-means (ICDE 2004)",
        "",
        f"Configuration: **{config.label}** — sizes {list(config.sizes)}, "
        f"k={config.k}, restarts={config.restarts}, "
        f"splits={list(config.splits)}, versions={config.versions}.",
        "",
        _section("Table 2", render_table2(results)),
        _section("Figure 6 — overall time", render_figure(figure6(results))),
        _section("Figure 7 — MSE (paper metric)", render_figure(figure7(results))),
        _section(
            "Figure 7b — MSE (raw points, like-for-like)",
            render_figure(figure7_fair(results)),
        ),
        _section("Figure 8 — partial time", render_figure(figure8(results))),
    ]

    if include_speedup:
        report_progress("running speed-up experiment ...")
        measured = run_speedup_experiment(
            n_points=min(20_000, max(config.sizes)),
            k=config.k,
            restarts=min(3, config.restarts),
            n_chunks=max(config.splits),
            clone_counts=(1, 2, 4),
            max_iter=config.max_iter,
        )
        sections.append(
            _section("Speed-up — measured (thread clones)", render_speedup(measured))
        )
        report_progress("simulating the 4-PC testbed ...")
        sections.append(
            _section(
                "Speed-up — simulated shared-nothing testbed",
                _simulated_speedup_section(),
            )
        )

    if include_convergence:
        report_progress("running convergence study ...")
        study = run_convergence_study(
            sizes=tuple(
                size for size in (500, 2_000, 8_000, 20_000)
                if size <= max(config.sizes)
            )
            or (max(config.sizes),),
            k=config.k,
            restarts=min(3, config.restarts),
            max_iter=config.max_iter,
        )
        sections.append(
            _section(
                "Convergence study — iterations vs N",
                render_convergence_study(
                    study, k=config.k, restarts=min(3, config.restarts)
                ),
            )
        )

    target = Path(out_path)
    target.write_text("\n".join(sections))
    report_progress(f"report written to {target}")
    return target
