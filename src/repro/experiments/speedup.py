"""Parallel speed-up experiment.

The paper's second test configuration: "speed-up of the processing if the
partial k-means operators are parallelized, and run on different
machines".  We run the streamed partial/merge pipeline with an increasing
number of partial-operator clones (our stand-in for machines) and report
wall-clock speed-up relative to one clone, plus per-clone utilization from
the engine's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.generator import generate_cell_points
from repro.stream.kmeans_ops import run_partial_merge_stream
from repro.stream.scheduler import ResourceManager

__all__ = ["SpeedupPoint", "run_speedup_experiment", "render_speedup"]


@dataclass(frozen=True)
class SpeedupPoint:
    """One clone-count measurement.

    Attributes:
        clones: partial-operator instances.
        wall_seconds: end-to-end pipeline time.
        speedup: t(1 clone) / t(this clone count).
        efficiency: speedup / clones.
        partial_busy_seconds: summed busy time across partial clones.
    """

    clones: int
    wall_seconds: float
    speedup: float
    efficiency: float
    partial_busy_seconds: float


def run_speedup_experiment(
    n_points: int = 20_000,
    k: int = 40,
    restarts: int = 3,
    n_chunks: int = 10,
    clone_counts: tuple[int, ...] = (1, 2, 4),
    seed: int = 7,
    max_iter: int = 100,
    backend: str | None = None,
) -> list[SpeedupPoint]:
    """Measure pipeline wall time versus partial clone count.

    Note:
        By default clones are threads; numpy's C kernels release the GIL
        during the distance computations that dominate, so thread clones
        approximate the paper's separate machines for the dominant cost.
        Pass ``backend="processes"`` to run each clone in its own worker
        process instead (sidesteps the GIL entirely).

    Returns:
        One :class:`SpeedupPoint` per clone count, in the given order.
    """
    if any(c < 1 for c in clone_counts):
        raise ValueError("clone counts must be >= 1")
    points = generate_cell_points(n_points, seed=seed)
    cells = {"cell": points}
    resources = ResourceManager(worker_slots=max(clone_counts) + 2)

    timings: list[tuple[int, float, float]] = []
    for clones in clone_counts:
        __, outcome = run_partial_merge_stream(
            cells,
            k=k,
            restarts=restarts,
            n_chunks=n_chunks,
            resources=resources,
            partial_clones=clones,
            seed=seed,
            max_iter=max_iter,
            backend=backend,
        )
        busy = outcome.metrics.busy_seconds_for("partial")
        timings.append((clones, outcome.metrics.wall_seconds, busy))

    base_wall = timings[0][1]
    return [
        SpeedupPoint(
            clones=clones,
            wall_seconds=wall,
            speedup=base_wall / wall if wall > 0 else float("inf"),
            efficiency=(base_wall / wall / clones) if wall > 0 else float("inf"),
            partial_busy_seconds=busy,
        )
        for clones, wall, busy in timings
    ]


def render_speedup(points: list[SpeedupPoint]) -> str:
    """Fixed-width text table of the speed-up experiment."""
    header = (
        f"{'clones':>7} {'wall (s)':>10} {'speedup':>9} "
        f"{'efficiency':>11} {'partial busy (s)':>17}"
    )
    lines = ["Speed-up — partial k-means clones (stand-in for machines)", header,
             "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.clones:>7} {point.wall_seconds:>10.3f} "
            f"{point.speedup:>9.2f} {point.efficiency:>11.2f} "
            f"{point.partial_busy_seconds:>17.3f}"
        )
    return "\n".join(lines)
