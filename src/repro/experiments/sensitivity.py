"""Sensitivity of partial/merge to the choice of k.

The paper fixes k = 40 and "assume[s] that we are able to make an
appropriate choice of k"; its Section 3.3 remarks that the right
per-partition k is an open question.  This study quantifies both:

* how serial and partial/merge quality and time respond to k,
* whether the partial/merge *advantage* (time ratio, quality ratio) is
  robust across k — i.e. whether the paper's conclusions depend on its
  particular choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.serial import SerialKMeans
from repro.core.pipeline import PartialMergeKMeans
from repro.core.quality import mse as evaluate_mse
from repro.data.generator import generate_cell_points

__all__ = ["KSensitivityPoint", "run_k_sensitivity", "render_k_sensitivity"]


@dataclass(frozen=True)
class KSensitivityPoint:
    """Measurements for one k.

    Attributes:
        k: cluster count.
        serial_mse: serial raw-point MSE.
        serial_seconds: serial wall time.
        split_mse: partial/merge raw-point MSE.
        split_seconds: partial/merge wall time.
    """

    k: int
    serial_mse: float
    serial_seconds: float
    split_mse: float
    split_seconds: float

    @property
    def time_ratio(self) -> float:
        """Serial time over partial/merge time (the speed advantage)."""
        return self.serial_seconds / max(self.split_seconds, 1e-9)

    @property
    def quality_ratio(self) -> float:
        """Partial/merge MSE over serial MSE (1.0 = equal quality)."""
        return self.split_mse / max(self.serial_mse, 1e-12)


def run_k_sensitivity(
    ks: tuple[int, ...] = (10, 20, 40, 80),
    n_points: int = 10_000,
    restarts: int = 3,
    n_chunks: int = 10,
    seed: int = 0,
    max_iter: int = 100,
    merge_restarts: int = 2,
) -> list[KSensitivityPoint]:
    """Measure both algorithms across cluster counts on one cell.

    ``merge_restarts`` defaults to 2 (the library's merge-collapse repair,
    see EXPERIMENTS.md): a single-seed sweep would otherwise conflate k
    sensitivity with the occasional collapsed merge optimum.
    """
    if any(k < 1 for k in ks):
        raise ValueError("all k values must be >= 1")
    if any(k > n_points for k in ks):
        raise ValueError("k cannot exceed n_points")
    points = generate_cell_points(n_points, seed=seed)
    measurements: list[KSensitivityPoint] = []
    for k in ks:
        serial = SerialKMeans(
            k, restarts=restarts, max_iter=max_iter, seed=seed
        ).fit(points)
        split = PartialMergeKMeans(
            k=k,
            restarts=restarts,
            n_chunks=min(n_chunks, n_points // max(k, 1)) or 1,
            max_iter=max_iter,
            seed=seed,
            merge_restarts=merge_restarts,
        ).fit(points)
        measurements.append(
            KSensitivityPoint(
                k=k,
                serial_mse=evaluate_mse(points, serial.centroids),
                serial_seconds=serial.total_seconds,
                split_mse=split.model.mse,
                split_seconds=split.model.total_seconds,
            )
        )
    return measurements


def render_k_sensitivity(points: list[KSensitivityPoint]) -> str:
    """Fixed-width table of the k sweep."""
    header = (
        f"{'k':>5} {'serial mse':>11} {'split mse':>10} "
        f"{'quality ratio':>14} {'serial t':>9} {'split t':>8} "
        f"{'time ratio':>11}"
    )
    lines = ["k-sensitivity — serial vs partial/merge across cluster counts",
             header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.k:>5} {point.serial_mse:>11.3f} {point.split_mse:>10.3f} "
            f"{point.quality_ratio:>14.2f} {point.serial_seconds:>9.3f} "
            f"{point.split_seconds:>8.3f} {point.time_ratio:>11.2f}"
        )
    return "\n".join(lines)
