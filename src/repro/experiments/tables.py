"""Table renderers: regenerate the paper's Table 2 from a result set."""

from __future__ import annotations

from repro.experiments.harness import ResultSet

__all__ = ["render_table2", "table2_rows"]


def table2_rows(results: ResultSet) -> list[dict]:
    """Table 2's rows as dictionaries, largest cells first (paper order).

    Columns mirror the paper: partial time (``t C0-Ci``), merge time
    (``t merge``), minimum MSE, and overall time, per case.
    """
    rows = []
    for n_points in sorted(results.config.sizes, reverse=True):
        for case in reversed(results.config.cases):
            aggregated = results.mean_over_versions(n_points, case)
            rows.append(
                {
                    "data_pts": n_points,
                    "case": case,
                    "t_partial_s": aggregated.partial_seconds,
                    "t_merge_s": aggregated.merge_seconds,
                    "min_mse": aggregated.paper_mse,
                    "raw_mse": aggregated.mse,
                    "overall_s": aggregated.overall_seconds,
                }
            )
    return rows


def render_table2(results: ResultSet) -> str:
    """Fixed-width text rendering of Table 2.

    Times are reported in seconds (the paper prints milliseconds on its
    Java/2004 hardware; shape, not absolute scale, is the reproduction
    target).  "Min MSE" follows the paper's protocol (weighted centroid
    error for the split cases); "raw MSE" is the same model scored on the
    raw points, the fair comparison the paper does not print.
    """
    header = (
        f"{'data pts':>9} {'case':>8} {'t C0-Ci (s)':>12} "
        f"{'t merge (s)':>12} {'Min MSE':>12} {'raw MSE':>10} "
        f"{'overall t (s)':>14}"
    )
    lines = [
        f"Table 2 — serial vs 5-split vs 10-split ({results.config.label} config)",
        header,
        "-" * len(header),
    ]
    previous_size = None
    for row in table2_rows(results):
        size_text = f"{row['data_pts']:,}" if row["data_pts"] != previous_size else ""
        previous_size = row["data_pts"]
        is_serial = row["case"] == "serial"
        partial_text = "-" if is_serial else f"{row['t_partial_s']:.3f}"
        merge_text = "-" if is_serial else f"{row['t_merge_s']:.3f}"
        lines.append(
            f"{size_text:>9} {row['case']:>8} {partial_text:>12} "
            f"{merge_text:>12} {row['min_mse']:>12.2f} {row['raw_mse']:>10.2f} "
            f"{row['overall_s']:>14.3f}"
        )
    return "\n".join(lines)
