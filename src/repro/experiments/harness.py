"""Experiment harness: run the paper's cases over the workload grid.

One :class:`CaseRow` per (cell size, dataset version, case), where a case
is ``"serial"`` or ``"<p>split"``.  The harness evaluates every model's
MSE against the raw cell points so serial and partial/merge numbers are
directly comparable (the paper's Table 2 / Figures 6-8 protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.serial import SerialKMeans
from repro.core.pipeline import PartialMergeKMeans
from repro.core.quality import mse as evaluate_mse
from repro.data.generator import generate_cell_points
from repro.experiments.configs import ExperimentConfig

__all__ = ["CaseRow", "ResultSet", "run_case", "run_grid"]


@dataclass(frozen=True)
class CaseRow:
    """One measured experiment cell.

    Two quality metrics are recorded because the paper's Section 5.2
    protocol scores the two algorithms on different data: the serial MSE
    is computed over the raw points, while the partial/merge MSE is the
    weighted error ``E_pm`` over the partials' *centroids* ("the weighted
    distance between the final centroids and the weighted data points in
    their cluster").  ``paper_mse`` replicates that protocol (and hence
    Table 2 / Figure 7); ``mse`` scores every model against the raw cell
    points, which is the fair like-for-like comparison.

    Attributes:
        n_points: cell size.
        version: dataset version index.
        case: ``"serial"`` or ``"<p>split"``.
        mse: model MSE against the raw cell points (fair metric).
        paper_mse: the paper's metric (equals ``mse`` for serial).
        partial_seconds: time in partial k-means (0 for serial).
        merge_seconds: time in merge k-means (0 for serial).
        overall_seconds: end-to-end time for the case.
    """

    n_points: int
    version: int
    case: str
    mse: float
    paper_mse: float
    partial_seconds: float
    merge_seconds: float
    overall_seconds: float


@dataclass
class ResultSet:
    """All rows of one experiment run, with aggregation helpers."""

    config: ExperimentConfig
    rows: list[CaseRow] = field(default_factory=list)

    def mean_over_versions(self, n_points: int, case: str) -> CaseRow:
        """Aggregate metric columns across dataset versions.

        Times are averaged.  Quality columns use the *median*: the merge
        step occasionally lands in a collapsed local optimum on one of
        the versions (see EXPERIMENTS.md), and a mean would let that
        single outlier misrepresent the typical behaviour the paper's
        min-selected "Min MSE" column reports.
        """
        matching = [
            r for r in self.rows if r.n_points == n_points and r.case == case
        ]
        if not matching:
            raise KeyError(f"no rows for n_points={n_points}, case={case!r}")
        return CaseRow(
            n_points=n_points,
            version=-1,
            case=case,
            mse=float(np.median([r.mse for r in matching])),
            paper_mse=float(np.median([r.paper_mse for r in matching])),
            partial_seconds=float(np.mean([r.partial_seconds for r in matching])),
            merge_seconds=float(np.mean([r.merge_seconds for r in matching])),
            overall_seconds=float(np.mean([r.overall_seconds for r in matching])),
        )

    def series(self, case: str, column: str) -> tuple[list[int], list[float]]:
        """A figure series: x = sizes, y = mean ``column`` for ``case``."""
        xs: list[int] = []
        ys: list[float] = []
        for n_points in self.config.sizes:
            aggregated = self.mean_over_versions(n_points, case)
            xs.append(n_points)
            ys.append(getattr(aggregated, column))
        return xs, ys


def run_case(
    points: np.ndarray,
    case: str,
    config: ExperimentConfig,
    seed: int,
    max_workers: int = 1,
) -> tuple[float, float, float, float]:
    """Run one case on one cell.

    Args:
        points: the cell's raw points.
        case: ``"serial"`` or ``"<p>split"``.
        config: experiment parameters.
        seed: RNG seed for this run.
        max_workers: partial-operator clones (1 = the paper's single-host
            serial execution of the partial steps).

    Returns:
        ``(mse, paper_mse, partial_seconds, merge_seconds, overall_seconds)``
        where ``mse`` is measured on the raw points and ``paper_mse``
        follows the paper's Section 5.2 protocol (``E_pm`` over weighted
        centroids for the split cases).
    """
    if case == "serial":
        model = SerialKMeans(
            config.k,
            restarts=config.restarts,
            max_iter=config.max_iter,
            seed=seed,
        ).fit(points)
        model_mse = evaluate_mse(points, model.centroids)
        return model_mse, model_mse, 0.0, 0.0, model.total_seconds

    if not case.endswith("split"):
        raise ValueError(f"unknown case {case!r}")
    n_chunks = int(case[: -len("split")])
    report = PartialMergeKMeans(
        k=config.k,
        restarts=config.restarts,
        n_chunks=n_chunks,
        max_workers=max_workers,
        max_iter=config.max_iter,
        seed=seed,
    ).fit(points)
    model = report.model
    return (
        model.mse,
        report.merge.mse,
        model.partial_seconds,
        model.merge_seconds,
        model.total_seconds,
    )


def run_grid(
    config: ExperimentConfig,
    max_workers: int = 1,
    progress=None,
) -> ResultSet:
    """Run every (size, version, case) combination of ``config``.

    Args:
        config: the experiment grid.
        max_workers: partial clones for the split cases.
        progress: optional callable invoked with a status string after
            each case (for CLI feedback).

    Returns:
        The populated :class:`ResultSet`.
    """
    results = ResultSet(config=config)
    for size_index, n_points in enumerate(config.sizes):
        for version in range(config.versions):
            cell_seed = config.seed + 1_000 * size_index + version
            points = generate_cell_points(n_points, seed=cell_seed)
            for case_index, case in enumerate(config.cases):
                case_seed = cell_seed * 31 + case_index
                case_mse, paper_mse, t_partial, t_merge, t_overall = run_case(
                    points, case, config, seed=case_seed, max_workers=max_workers
                )
                results.rows.append(
                    CaseRow(
                        n_points=n_points,
                        version=version,
                        case=case,
                        mse=case_mse,
                        paper_mse=paper_mse,
                        partial_seconds=t_partial,
                        merge_seconds=t_merge,
                        overall_seconds=t_overall,
                    )
                )
                if progress is not None:
                    progress(
                        f"N={n_points} v{version} {case}: "
                        f"mse={case_mse:.1f} t={t_overall:.2f}s"
                    )
    return results
