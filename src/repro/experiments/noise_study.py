"""Noise robustness: how contamination affects the compression quality.

Real grid cells carry a tail of anomalous measurements (cloud-edge
pixels, sensor spikes).  This study contaminates a cell with a uniform
background at fractions ε ∈ {0, 1%, 5%}, then measures three summaries
at equal budget k:

* serial k-means,
* partial/merge k-means,
* partial/merge with the outlier-split compression (tail stored
  exactly, body summarised).

Metric: raw-point MSE of the summary *on the clean body* — what
matters scientifically is how well the real signal survives, not how
well the junk is quantized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.serial import SerialKMeans
from repro.compression.outliers import split_outliers
from repro.core.pipeline import PartialMergeKMeans
from repro.core.quality import mse as evaluate_mse
from repro.data.generator import generate_cell_points

__all__ = ["NoisePoint", "run_noise_study", "render_noise_study"]


@dataclass(frozen=True)
class NoisePoint:
    """Measurements at one contamination level.

    Attributes:
        epsilon: contamination fraction.
        serial_mse: serial model scored on the clean body.
        split_mse: partial/merge model scored on the clean body.
        robust_mse: partial/merge + outlier split, scored on the body.
        tail_captured: fraction of injected noise caught by the split.
    """

    epsilon: float
    serial_mse: float
    split_mse: float
    robust_mse: float
    tail_captured: float


def _contaminate(
    clean: np.ndarray, epsilon: float, rng: np.random.Generator
) -> np.ndarray:
    if epsilon <= 0.0:
        return clean
    n_noise = max(1, int(round(clean.shape[0] * epsilon)))
    span = clean.max(axis=0) - clean.min(axis=0)
    noise = rng.uniform(
        clean.min(axis=0) - 2 * span,
        clean.max(axis=0) + 2 * span,
        size=(n_noise, clean.shape[1]),
    )
    return np.vstack([clean, noise])


def run_noise_study(
    epsilons: tuple[float, ...] = (0.0, 0.01, 0.05),
    n_points: int = 8_000,
    k: int = 40,
    restarts: int = 3,
    n_chunks: int = 8,
    seed: int = 0,
    max_iter: int = 100,
    outlier_quantile: float = 0.97,
) -> list[NoisePoint]:
    """Measure the three summaries across contamination levels."""
    if any(not 0.0 <= eps < 1.0 for eps in epsilons):
        raise ValueError("epsilons must be in [0, 1)")
    clean = generate_cell_points(n_points, seed=seed)
    rng = np.random.default_rng(seed + 1)
    results: list[NoisePoint] = []

    for epsilon in epsilons:
        contaminated = _contaminate(clean, epsilon, rng)
        n_noise = contaminated.shape[0] - clean.shape[0]

        serial = SerialKMeans(
            k, restarts=restarts, max_iter=max_iter, seed=seed
        ).fit(contaminated)
        serial_mse = evaluate_mse(clean, serial.centroids)

        split = PartialMergeKMeans(
            k=k,
            restarts=restarts,
            n_chunks=n_chunks,
            max_iter=max_iter,
            seed=seed,
            merge_restarts=2,
        ).fit(contaminated)
        split_mse = evaluate_mse(clean, split.model.centroids)

        # Robust variant: split the tail, re-cluster the body only.
        tail = split_outliers(
            contaminated, split.model.centroids, quantile=outlier_quantile
        )
        robust = PartialMergeKMeans(
            k=k,
            restarts=restarts,
            n_chunks=n_chunks,
            max_iter=max_iter,
            seed=seed,
            merge_restarts=2,
        ).fit(tail.body)
        robust_mse = evaluate_mse(clean, robust.model.centroids)

        if n_noise > 0 and tail.outliers.size:
            # Injected noise sits outside the clean bounding box.
            lo, hi = clean.min(axis=0), clean.max(axis=0)
            is_noise = ~np.logical_and(
                tail.outliers >= lo, tail.outliers <= hi
            ).all(axis=1)
            tail_captured = float(is_noise.sum()) / n_noise
        else:
            tail_captured = 1.0 if n_noise == 0 else 0.0

        results.append(
            NoisePoint(
                epsilon=epsilon,
                serial_mse=serial_mse,
                split_mse=split_mse,
                robust_mse=robust_mse,
                tail_captured=min(tail_captured, 1.0),
            )
        )
    return results


def render_noise_study(points: list[NoisePoint]) -> str:
    """Fixed-width table of the contamination sweep."""
    header = (
        f"{'eps':>6} {'serial mse':>11} {'split mse':>10} "
        f"{'robust mse':>11} {'tail captured':>14}"
    )
    lines = [
        "Noise study — clean-body MSE under contamination",
        header,
        "-" * len(header),
    ]
    for point in points:
        lines.append(
            f"{point.epsilon:>6.2%} {point.serial_mse:>11.3f} "
            f"{point.split_mse:>10.3f} {point.robust_mse:>11.3f} "
            f"{point.tail_captured:>14.2%}"
        )
    return "\n".join(lines)
