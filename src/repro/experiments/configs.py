"""Experiment configurations.

``paper_config`` is the full Section 5.1 grid (k=40, R=10, N up to 75,000,
5 versions); ``quick_config`` is a laptop/CI-scale version that preserves
every structural property of the experiment (same split ratios, same
relative N progression) at a fraction of the cost.  All benchmark targets
accept a config so the full grid can be regenerated verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import (
    PAPER_CELL_SIZES,
    PAPER_K,
    PAPER_RESTARTS,
    PAPER_SPLITS,
    PAPER_VERSIONS,
)

__all__ = ["ExperimentConfig", "paper_config", "quick_config", "smoke_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to regenerate the paper's evaluation.

    Attributes:
        sizes: grid-cell point counts (the x-axis of every figure).
        k: centroids per cell.
        restarts: seed restarts per k-means (the paper's ``R``).
        splits: chunk counts for the partial/merge cases.
        versions: datasets generated per size.
        seed: determinism anchor.
        max_iter: Lloyd iteration cap.
        label: configuration name used in output headers.
    """

    sizes: tuple[int, ...] = PAPER_CELL_SIZES
    k: int = PAPER_K
    restarts: int = PAPER_RESTARTS
    splits: tuple[int, ...] = PAPER_SPLITS
    versions: int = PAPER_VERSIONS
    seed: int = 20040301
    max_iter: int = 300
    label: str = "paper"

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("sizes must be non-empty")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {self.restarts}")
        if any(s < 2 for s in self.splits):
            raise ValueError("split counts must be >= 2")
        if self.versions < 1:
            raise ValueError(f"versions must be >= 1, got {self.versions}")
        if any(size < self.k for size in self.sizes):
            raise ValueError("every size must be >= k so seeding is feasible")

    @property
    def cases(self) -> tuple[str, ...]:
        """Case labels in reporting order: serial first, then splits."""
        return ("serial",) + tuple(f"{p}split" for p in self.splits)


def paper_config() -> ExperimentConfig:
    """The full Section 5.1 configuration (hours of CPU)."""
    return ExperimentConfig()


def quick_config() -> ExperimentConfig:
    """A ~50x cheaper configuration preserving the experiment's shape.

    Sizes keep the paper's relative progression (1 : 10 : 50 : 100 : 200 :
    300 scaled down); k scales with the smallest cell so the k/N ratio at
    the low end matches the paper's 40/250.
    """
    return ExperimentConfig(
        sizes=(250, 1_000, 2_500, 5_000, 10_000, 15_000),
        k=40,
        restarts=3,
        splits=PAPER_SPLITS,
        versions=2,
        max_iter=100,
        label="quick",
    )


def smoke_config() -> ExperimentConfig:
    """Seconds-scale configuration for tests."""
    return ExperimentConfig(
        sizes=(120, 600),
        k=8,
        restarts=2,
        splits=(3, 5),
        versions=1,
        max_iter=50,
        label="smoke",
    )
