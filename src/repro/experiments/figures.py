"""Figure series: regenerate the paper's Figures 6, 7 and 8.

Each ``figure*`` function extracts the relevant series from a
:class:`~repro.experiments.harness.ResultSet`; ``render_figure`` prints an
ASCII chart so benchmark output is self-contained in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import ResultSet

__all__ = ["FigureSeries", "figure6", "figure7", "figure8", "render_figure"]


@dataclass(frozen=True)
class FigureSeries:
    """One figure's data.

    Attributes:
        title: figure caption.
        x_label: x-axis label.
        y_label: y-axis label.
        x: shared x values (cell sizes).
        series: mapping from case label to y values.
    """

    title: str
    x_label: str
    y_label: str
    x: list[int]
    series: dict[str, list[float]]


def _collect(results: ResultSet, column: str, cases: tuple[str, ...]) -> tuple:
    x = list(results.config.sizes)
    series = {case: results.series(case, column)[1] for case in cases}
    return x, series


def figure6(results: ResultSet) -> FigureSeries:
    """Figure 6: overall execution time, serial vs partial/merge."""
    x, series = _collect(results, "overall_seconds", results.config.cases)
    return FigureSeries(
        title="Figure 6 — Overall Processing Time: Serial vs Partial/Merge K-Means",
        x_label="Number of data points per grid cell",
        y_label="Processing time (s)",
        x=x,
        series=series,
    )


def figure7(results: ResultSet) -> FigureSeries:
    """Figure 7: minimum MSE, serial vs partial/merge.

    Uses the paper's Section 5.2 metric: raw-point MSE for serial,
    weighted-centroid error ``E_pm`` for the split cases.  See
    :func:`figure7_fair` for the like-for-like variant.
    """
    x, series = _collect(results, "paper_mse", results.config.cases)
    return FigureSeries(
        title="Figure 7 — Minimum MSE: Serial vs Partial/Merge K-Means",
        x_label="Number of data points per grid cell",
        y_label=f"MSE (K={results.config.k}, paper's metric)",
        x=x,
        series=series,
    )


def figure7_fair(results: ResultSet) -> FigureSeries:
    """Figure 7 variant scoring every model on the raw points.

    Not in the paper; included because the paper's protocol scores
    serial and partial/merge on different data (see DESIGN.md).
    """
    x, series = _collect(results, "mse", results.config.cases)
    return FigureSeries(
        title="Figure 7b — Raw-point MSE (like-for-like): Serial vs Partial/Merge",
        x_label="Number of data points per grid cell",
        y_label=f"MSE (K={results.config.k}, raw points)",
        x=x,
        series=series,
    )


def figure8(results: ResultSet) -> FigureSeries:
    """Figure 8: partial k-means processing time, 5-split vs 10-split."""
    split_cases = tuple(c for c in results.config.cases if c != "serial")
    x, series = _collect(results, "partial_seconds", split_cases)
    return FigureSeries(
        title="Figure 8 — Partial K-Means Processing Time: 5-split vs 10-split",
        x_label="Number of data points per grid cell",
        y_label="Partial k-means time (s)",
        x=x,
        series=series,
    )


_MARKS = "*+xo#@"


def render_figure(figure: FigureSeries, width: int = 72, height: int = 18) -> str:
    """ASCII line chart of a :class:`FigureSeries`."""
    all_y = [y for ys in figure.series.values() for y in ys]
    y_max = max(all_y) if all_y else 1.0
    y_max = y_max if y_max > 0 else 1.0
    x_min, x_max = min(figure.x), max(figure.x)
    x_span = max(x_max - x_min, 1)

    canvas = [[" "] * width for __ in range(height)]
    for series_index, (case, ys) in enumerate(figure.series.items()):
        mark = _MARKS[series_index % len(_MARKS)]
        for x_value, y_value in zip(figure.x, ys):
            col = int((x_value - x_min) / x_span * (width - 1))
            row = height - 1 - int(y_value / y_max * (height - 1))
            canvas[row][col] = mark

    lines = [figure.title, ""]
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = f"{y_max:10.1f} |"
        elif row_index == height - 1:
            label = f"{0.0:10.1f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * (width - 1))
    lines.append(
        " " * 11 + f"{x_min:<12,}{figure.x_label:^{max(0, width - 26)}}{x_max:>12,}"
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {case}"
        for i, case in enumerate(figure.series)
    )
    lines.append(" " * 11 + legend)
    lines.append(" " * 11 + f"y: {figure.y_label}")
    return "\n".join(lines)
