"""Experiment harness regenerating the paper's tables and figures.

* :mod:`~repro.experiments.configs` — paper / quick / smoke grids.
* :mod:`~repro.experiments.harness` — case runner and result aggregation.
* :mod:`~repro.experiments.tables` — Table 2.
* :mod:`~repro.experiments.figures` — Figures 6, 7 and 8.
* :mod:`~repro.experiments.speedup` — the parallel speed-up test.
"""

from repro.experiments.convergence_study import (
    ConvergencePoint,
    partial_merge_distance_ops,
    render_convergence_study,
    run_convergence_study,
    serial_distance_ops,
)
from repro.experiments.configs import (
    ExperimentConfig,
    paper_config,
    quick_config,
    smoke_config,
)
from repro.experiments.figures import (
    FigureSeries,
    figure6,
    figure7,
    figure7_fair,
    figure8,
    render_figure,
)
from repro.experiments.harness import CaseRow, ResultSet, run_case, run_grid
from repro.experiments.noise_study import (
    NoisePoint,
    render_noise_study,
    run_noise_study,
)
from repro.experiments.report import generate_report
from repro.experiments.sensitivity import (
    KSensitivityPoint,
    render_k_sensitivity,
    run_k_sensitivity,
)
from repro.experiments.speedup import (
    SpeedupPoint,
    render_speedup,
    run_speedup_experiment,
)
from repro.experiments.tables import render_table2, table2_rows

__all__ = [
    "ConvergencePoint",
    "partial_merge_distance_ops",
    "render_convergence_study",
    "run_convergence_study",
    "serial_distance_ops",
    "ExperimentConfig",
    "paper_config",
    "quick_config",
    "smoke_config",
    "FigureSeries",
    "figure6",
    "figure7",
    "figure7_fair",
    "figure8",
    "render_figure",
    "CaseRow",
    "ResultSet",
    "run_case",
    "run_grid",
    "generate_report",
    "NoisePoint",
    "render_noise_study",
    "run_noise_study",
    "KSensitivityPoint",
    "render_k_sensitivity",
    "run_k_sensitivity",
    "SpeedupPoint",
    "render_speedup",
    "run_speedup_experiment",
    "render_table2",
    "table2_rows",
]
