"""repro — partial/merge k-means over a data-stream engine.

A complete reproduction of Nittel, Leung & Braverman, *Scaling Clustering
Algorithms for Massive Data Sets using Data Streams* (ICDE 2004):

* :mod:`repro.core` — the partial/merge k-means contribution.
* :mod:`repro.stream` — a Conquest-style pipelined stream engine.
* :mod:`repro.data` — MISR-like synthetic grid cells, swath simulation,
  grid-bucket IO, and partitioning strategies.
* :mod:`repro.baselines` — serial k-means, Figure-2 parallel methods,
  LOCALSEARCH streaming k-means, BIRCH, and mini-batch k-means.
* :mod:`repro.compression` — the motivating multivariate-histogram
  compression application.
* :mod:`repro.experiments` — harness regenerating every table and figure.
"""

from repro.core import PartialMergeKMeans, lloyd, merge_kmeans, partial_kmeans

__version__ = "1.0.0"

__all__ = [
    "PartialMergeKMeans",
    "lloyd",
    "merge_kmeans",
    "partial_kmeans",
    "__version__",
]
