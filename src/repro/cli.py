"""Command-line interface: regenerate experiments from a terminal.

Subcommands:

* ``table2``  — run the grid and print the paper's Table 2.
* ``figures`` — run the grid and print Figures 6, 7 and 8 as ASCII charts.
* ``speedup`` — run the partial-clone speed-up experiment.
* ``convergence`` — measure iterations-to-converge vs N (Section 3.2).
* ``generate`` — write synthetic grid-bucket files to a directory.
* ``swath`` — simulate a satellite, write granules, bin into buckets.
* ``cluster`` — cluster one grid-bucket file with serial and
  partial/merge k-means and compare.
* ``compress`` — cluster + compress every bucket in a directory into
  ``.mvh`` histograms and report fidelity.
* ``serve`` — keep a run's models hot in memory and answer
  assign/summary/prefix/window queries over a newline-JSON protocol on
  stdin/stdout, or drive the built-in load generator.

Example::

    repro-kmeans table2 --config quick
    repro-kmeans generate --out /tmp/buckets --cells 4 --points 5000
    repro-kmeans cluster /tmp/buckets/lat10lon20.gbk --k 20 --chunks 5
    repro-kmeans compress /tmp/buckets --out /tmp/mvh --k 20
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.baselines.serial import SerialKMeans
from repro.core.pipeline import PartialMergeKMeans
from repro.core.quality import mse as evaluate_mse
from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import read_bucket_file, write_bucket_dir
from repro.experiments.configs import paper_config, quick_config, smoke_config
from repro.experiments.figures import figure6, figure7, figure8, render_figure
from repro.experiments.harness import run_grid
from repro.experiments.speedup import render_speedup, run_speedup_experiment
from repro.experiments.tables import render_table2

__all__ = ["main"]

_CONFIGS = {
    "paper": paper_config,
    "quick": quick_config,
    "smoke": smoke_config,
}


def _add_config_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        choices=sorted(_CONFIGS),
        default="quick",
        help="experiment grid to run (default: quick)",
    )


def _cmd_table2(args: argparse.Namespace) -> int:
    results = run_grid(
        _CONFIGS[args.config](),
        max_workers=args.workers,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    print(render_table2(results))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    results = run_grid(
        _CONFIGS[args.config](),
        max_workers=args.workers,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    for figure in (figure6(results), figure7(results), figure8(results)):
        print(render_figure(figure))
        print()
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    points = run_speedup_experiment(
        n_points=args.points,
        k=args.k,
        n_chunks=args.chunks,
        clone_counts=tuple(args.clones),
        backend=args.backend,
    )
    print(render_speedup(points))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    cells = []
    for index in range(args.cells):
        cell_id = GridCellId(
            lat=int(rng.integers(-60, 60)), lon=int(rng.integers(-180, 180))
        )
        points = generate_cell_points(args.points, seed=args.seed + index)
        cells.append(GridCell(cell_id=cell_id, points=points))
    paths = write_bucket_dir(args.out, cells)
    for path in paths:
        print(path)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.checkpoint_dir:
        # Checkpointed clustering routes through the stream engine, which
        # owns the run journal; the plain path below stays in-core.
        from repro.stream.query import Query

        result = (
            Query.scan_buckets(args.bucket)
            .partition(args.chunks)
            .cluster(k=args.k, restarts=args.restarts)
            .merge()
            .with_kernel(args.kernel, exact=False if args.no_exact else None)
            .with_seed(args.seed)
            .checkpoint(args.checkpoint_dir, resume=args.resume)
            .execute()
        )
        for cell_key, model in sorted(result.models.items()):
            print(
                f"{cell_key}: partial/merge mse={model.mse:12.2f} "
                f"t={model.total_seconds:.3f}s"
            )
        checkpoint = result.execution.metrics.checkpoint
        if checkpoint is not None:
            print(
                f"journal: {checkpoint.journal_path} "
                f"(replayed={checkpoint.partitions_replayed} "
                f"recomputed={checkpoint.partitions_recomputed})"
            )
        return 0

    cell = read_bucket_file(args.bucket)
    print(f"cell {cell.cell_id.key}: {cell.n_points} points, dim {cell.dim}")

    serial = SerialKMeans(
        args.k,
        restarts=args.restarts,
        kernel=args.kernel,
        exact=False if args.no_exact else None,
        seed=args.seed,
    ).fit(cell.points)
    serial_mse = evaluate_mse(cell.points, serial.centroids)
    print(f"serial        mse={serial_mse:12.2f}  t={serial.total_seconds:.3f}s")

    report = PartialMergeKMeans(
        k=args.k,
        restarts=args.restarts,
        n_chunks=args.chunks,
        kernel=args.kernel,
        exact=False if args.no_exact else None,
        seed=args.seed,
    ).fit(cell.points)
    model = report.model
    print(
        f"partial/merge mse={model.mse:12.2f}  t={model.total_seconds:.3f}s "
        f"(partial {model.partial_seconds:.3f}s + merge {model.merge_seconds:.3f}s)"
    )
    return 0


def _cmd_ksens(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import (
        render_k_sensitivity,
        run_k_sensitivity,
    )

    points = run_k_sensitivity(
        ks=tuple(args.ks),
        n_points=args.points,
        restarts=args.restarts,
        n_chunks=args.chunks,
    )
    print(render_k_sensitivity(points))
    return 0


def _cmd_noise(args: argparse.Namespace) -> int:
    from repro.experiments.noise_study import (
        render_noise_study,
        run_noise_study,
    )

    points = run_noise_study(
        epsilons=tuple(args.epsilons),
        n_points=args.points,
        k=args.k,
        restarts=args.restarts,
    )
    print(render_noise_study(points))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    generate_report(
        _CONFIGS[args.config](),
        args.out,
        include_speedup=not args.no_speedup,
        include_convergence=not args.no_convergence,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    print(args.out)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.stream.query import Query
    from repro.stream.scheduler import ResourceManager

    query = Query.scan_buckets(args.buckets)
    if args.memory_budget:
        query = query.partition_by_memory().with_resources(
            ResourceManager(memory_budget_bytes=args.memory_budget)
        )
    else:
        query = query.partition(args.chunks)
    query = query.cluster(k=args.k, restarts=args.restarts).merge()
    if args.kernel != "dense" or args.no_exact:
        query = query.with_kernel(
            args.kernel, exact=False if args.no_exact else None
        )
    if args.clones:
        query = query.with_partial_clones(args.clones)
    if args.shards:
        query = query.with_shards(args.shards)
    elif args.backend != "threads" or args.workers:
        query = query.with_backend(
            args.backend, workers=args.workers or None
        )
    if args.seed is not None:
        query = query.with_seed(args.seed)
    if args.on_corrupt != "fail":
        query = query.on_corrupt(args.on_corrupt)
    if args.stall_timeout:
        query = query.with_watchdog(args.stall_timeout)
    if args.checkpoint_dir:
        query = query.checkpoint(args.checkpoint_dir, resume=args.resume)
    if args.prefix_query_every:
        query = query.with_prefix_queries(
            every=args.prefix_query_every, window=args.window or None
        )

    query.explain()
    if args.explain_only:
        return 0
    result = query.execute()
    print()
    for cell_key, model in sorted(result.models.items()):
        print(
            f"{cell_key}: k={model.k} partitions={model.partitions} "
            f"mass={model.weights.sum():.0f} t={model.total_seconds:.3f}s"
        )
    if result.prefix_queries:
        print()
        for pq in result.prefix_queries:
            span = (
                f"last {pq.partitions}"
                if pq.start
                else f"first {pq.partitions}"
            )
            print(
                f"prefix[{pq.cell_id}@{pq.upto}]: {span} chunk(s) "
                f"k={pq.model.k} mass={pq.model.total_weight:.0f} "
                f"nodes={pq.nodes_reused} "
                f"t={pq.seconds * 1e3:.2f}ms"
                + (" (cached)" if pq.cached else "")
            )
    print()
    print("\n".join(result.execution.metrics.summary_lines()))
    if args.trace_json:
        from repro.stream.tracing import dump_metrics_json

        print(f"trace: {dump_metrics_json(result.execution.metrics, args.trace_json)}")
    return 0


def _cmd_convergence(args: argparse.Namespace) -> int:
    from repro.experiments.convergence_study import (
        render_convergence_study,
        run_convergence_study,
    )

    study = run_convergence_study(
        sizes=tuple(args.sizes),
        k=args.k,
        restarts=args.restarts,
        n_chunks=args.chunks,
    )
    print(render_convergence_study(study, k=args.k, restarts=args.restarts))
    return 0


def _cmd_swath(args: argparse.Namespace) -> int:
    from repro.data.gridio import write_bucket_dir
    from repro.data.swath import SwathSimulator
    from repro.data.swathio import bin_granules_into_buckets, write_granules

    simulator = SwathSimulator(
        footprints_per_orbit=args.footprints,
        samples_per_footprint=args.samples,
        seed=args.seed,
    )
    granules = write_granules(
        args.granules, simulator.fly(args.orbits), stripes_per_granule=2
    )
    print(f"wrote {len(granules)} granules under {args.granules}")

    buckets = bin_granules_into_buckets(args.granules)
    rng = np.random.default_rng(args.seed)
    populated = [
        bucket.freeze(rng)
        for bucket in buckets.values()
        if bucket.n_points >= args.min_points
    ]
    paths = write_bucket_dir(args.buckets, populated)
    print(
        f"binned {len(buckets)} cells; wrote {len(paths)} buckets with "
        f">= {args.min_points} points under {args.buckets}"
    )
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.compression.global_summary import GlobalSummary
    from repro.compression.histogram import MultivariateHistogram
    from repro.compression.serialization import write_summary_dir
    from repro.data.gridio import scan_bucket_dir

    summary: GlobalSummary | None = None
    for cell in scan_bucket_dir(args.buckets):
        if summary is None:
            summary = GlobalSummary(dim=cell.dim)
        report = PartialMergeKMeans(
            k=args.k,
            restarts=args.restarts,
            n_chunks=args.chunks,
            seed=args.seed,
        ).fit(cell.points)
        histogram = MultivariateHistogram.from_model(
            cell.points, report.model
        )
        summary.add_cell(cell.cell_id, histogram)
        print(
            f"{cell.cell_id.key}: {cell.n_points} pts -> "
            f"{len(histogram.buckets)} buckets, mse={report.model.mse:.2f}"
        )
    if summary is None:
        print(f"no buckets found under {args.buckets}", file=sys.stderr)
        return 1
    write_summary_dir(args.out, summary)
    print(
        f"\nsummary: {len(summary)} cells, "
        f"{summary.total_count():.0f} points, "
        f"compression ratio {summary.compression_ratio():.1f}x -> {args.out}"
    )
    return 0


def _serve_payload(result) -> object:
    """JSON-safe payload for one protocol response."""
    if hasattr(result, "to_payload"):
        return result.to_payload()
    # PrefixQuery (prefix/window answers) has no to_payload; flatten the
    # deterministic clustering plus the cache diagnostics.
    if hasattr(result, "model") and hasattr(result, "nodes_reused"):
        return {
            "cell": result.cell_id,
            "start": result.start,
            "upto": result.upto,
            "k": result.model.k,
            "centroids": result.model.centroids.tolist(),
            "weights": result.model.weights.tolist(),
            "nodes_reused": result.nodes_reused,
            "cached": result.cached,
            "seconds": result.seconds,
        }
    return result


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ClusterServer, LoadGenerator, ModelRegistry

    registry = ModelRegistry(
        args.run_dir,
        k=args.k,
        seed=args.seed,
        restarts=args.restarts,
        kernel=None if args.kernel == "dense" else args.kernel,
        exact=False if args.no_exact else None,
        ttl_seconds=args.ttl or None,
        fsync=not args.no_fsync,
    )
    stats = registry.stats()
    print(
        f"warm start: {stats['resident_cells']} cell(s), "
        f"{stats['partitions']} partition(s) "
        f"(adopted={stats['cells_adopted']} "
        f"replayed={stats['partitions_replayed']} "
        f"nodes={stats['nodes_preloaded']}) "
        f"in {stats['recovery_seconds']:.3f}s",
        file=sys.stderr,
    )
    with ClusterServer(
        registry,
        max_batch=args.max_batch,
        max_delay_seconds=args.batch_delay,
        query_workers=args.query_workers,
    ) as server:
        if args.load_duration:
            cells = server.cells()
            if not cells:
                print("error: journal has no cells to serve", file=sys.stderr)
                return 2
            generator = LoadGenerator(
                server, cells, seed=args.load_seed
            )
            report = generator.run(
                args.load_duration, concurrency=args.load_concurrency
            )
            print("\n".join(report.summary_lines()))
            if args.bench_json:
                payload = server.metrics.snapshot()
                payload["registry"] = registry.stats()
                payload["load"] = report.to_payload()
                from pathlib import Path

                Path(args.bench_json).write_text(
                    json.dumps(payload, indent=2)
                )
                print(f"bench: {args.bench_json}")
            return 0

        # Protocol mode: one JSON request per stdin line, one JSON
        # response per stdout line.  JSON floats round-trip float64
        # exactly, so responses preserve model bits — the warm-restart
        # test compares them byte for byte across a SIGKILL.
        print(json.dumps({"ready": True, "cells": server.cells()}), flush=True)
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            request = json.loads(line)
            if request.get("op") == "shutdown":
                print(json.dumps({"ok": True, "bye": True}), flush=True)
                break
            req_id = request.pop("id", None)
            op = request.pop("op", None)
            cell = request.pop("cell", None)
            try:
                result = server.submit(op, cell, **request).result()
                response = {
                    "id": req_id,
                    "ok": True,
                    "result": _serve_payload(result),
                }
            except Exception as exc:
                response = {"id": req_id, "ok": False, "error": str(exc)}
            print(json.dumps(response), flush=True)
        print(
            "\n".join(server.metrics.summary_lines()), file=sys.stderr
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-kmeans",
        description="Partial/merge k-means reproduction toolkit (ICDE 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table2", help="regenerate the paper's Table 2")
    _add_config_argument(p_table)
    p_table.add_argument("--workers", type=int, default=1)
    p_table.set_defaults(fn=_cmd_table2)

    p_figures = sub.add_parser("figures", help="regenerate Figures 6-8")
    _add_config_argument(p_figures)
    p_figures.add_argument("--workers", type=int, default=1)
    p_figures.set_defaults(fn=_cmd_figures)

    p_speedup = sub.add_parser("speedup", help="partial-clone speed-up test")
    p_speedup.add_argument("--points", type=int, default=20_000)
    p_speedup.add_argument("--k", type=int, default=40)
    p_speedup.add_argument("--chunks", type=int, default=10)
    p_speedup.add_argument("--clones", type=int, nargs="+", default=[1, 2, 4])
    p_speedup.add_argument(
        "--backend",
        choices=["threads", "processes"],
        default=None,
        help="clone execution backend (default: engine default)",
    )
    p_speedup.set_defaults(fn=_cmd_speedup)

    p_generate = sub.add_parser("generate", help="write synthetic bucket files")
    p_generate.add_argument("--out", required=True)
    p_generate.add_argument("--cells", type=int, default=4)
    p_generate.add_argument("--points", type=int, default=5_000)
    p_generate.add_argument("--seed", type=int, default=0)
    p_generate.set_defaults(fn=_cmd_generate)

    p_ksens = sub.add_parser(
        "ksens", help="k-sensitivity sweep (serial vs partial/merge)"
    )
    p_ksens.add_argument("--ks", type=int, nargs="+", default=[10, 20, 40, 80])
    p_ksens.add_argument("--points", type=int, default=10_000)
    p_ksens.add_argument("--restarts", type=int, default=3)
    p_ksens.add_argument("--chunks", type=int, default=10)
    p_ksens.set_defaults(fn=_cmd_ksens)

    p_noise = sub.add_parser(
        "noise", help="contamination robustness study"
    )
    p_noise.add_argument(
        "--epsilons", type=float, nargs="+", default=[0.0, 0.01, 0.05]
    )
    p_noise.add_argument("--points", type=int, default=8_000)
    p_noise.add_argument("--k", type=int, default=40)
    p_noise.add_argument("--restarts", type=int, default=3)
    p_noise.set_defaults(fn=_cmd_noise)

    p_report = sub.add_parser(
        "report", help="regenerate the full evaluation as one markdown file"
    )
    _add_config_argument(p_report)
    p_report.add_argument("--out", default="REPORT.md")
    p_report.add_argument("--no-speedup", action="store_true")
    p_report.add_argument("--no-convergence", action="store_true")
    p_report.set_defaults(fn=_cmd_report)

    p_query = sub.add_parser(
        "query", help="run a clustering query over bucket files"
    )
    p_query.add_argument("buckets")
    p_query.add_argument("--k", type=int, default=40)
    p_query.add_argument("--chunks", type=int, default=5)
    p_query.add_argument(
        "--memory-budget",
        type=int,
        default=0,
        help="derive chunking from this many bytes instead of --chunks",
    )
    p_query.add_argument("--restarts", type=int, default=10)
    p_query.add_argument("--clones", type=int, default=0)
    p_query.add_argument(
        "--backend",
        choices=["threads", "processes"],
        default="threads",
        help="run partial-k-means clones on threads (default) or in "
        "worker processes fed over shared memory",
    )
    p_query.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for --backend processes (0 lets the "
        "planner decide; equivalent to --clones)",
    )
    p_query.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run on the fault-tolerant shard-per-cell runtime with this "
        "many worker processes (overrides --backend/--workers; cells are "
        "partitioned across workers, worker loss is survived with "
        "bit-identical recovery)",
    )
    p_query.add_argument("--seed", type=int, default=None)
    p_query.add_argument(
        "--kernel",
        choices=["dense", "hamerly", "elkan", "blas", "tiled"],
        default="dense",
        help="Lloyd assignment kernel for all k-means stages; exact "
        "kernels (dense/hamerly/elkan) are bit-identical, so they only "
        "change speed (counters in the metrics show what they saved); "
        "'blas' is the float32 GEMM tier and requires --no-exact "
        "('tiled' is a deprecated alias for it)",
    )
    p_query.add_argument(
        "--no-exact",
        action="store_true",
        help="waive the bit-identity contract: admit the 'blas' kernel, "
        "whose results are only MSE-tolerance-close to the reference",
    )
    p_query.add_argument(
        "--trace-json",
        default=None,
        help="write the execution metrics (incl. kernel counters) as "
        "JSON to this path",
    )
    p_query.add_argument("--explain-only", action="store_true")
    p_query.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal the run into this directory (crash-resumable)",
    )
    p_query.add_argument(
        "--resume",
        action="store_true",
        help="resume the journal in --checkpoint-dir instead of refusing it",
    )
    p_query.add_argument(
        "--on-corrupt",
        choices=["fail", "quarantine"],
        default="fail",
        help="corrupted-bucket policy: abort the run or move the file "
        "into quarantine/ and keep scanning",
    )
    p_query.add_argument(
        "--stall-timeout",
        type=float,
        default=0.0,
        help="fail the run if no operator makes progress for this many "
        "seconds (0 disables the watchdog)",
    )
    p_query.add_argument(
        "--prefix-query-every",
        type=int,
        default=0,
        help="maintain a coreset tree per cell and print a mid-stream "
        "clustering every this-many partitions (0 disables; final "
        "models are unchanged)",
    )
    p_query.add_argument(
        "--window",
        type=int,
        default=0,
        help="with --prefix-query-every, cluster only the last this-many "
        "chunks per query instead of the whole prefix (0 = whole prefix)",
    )
    p_query.set_defaults(fn=_cmd_query)

    p_convergence = sub.add_parser(
        "convergence", help="iterations-to-converge study (Section 3.2)"
    )
    p_convergence.add_argument(
        "--sizes", type=int, nargs="+", default=[500, 2_000, 8_000, 20_000]
    )
    p_convergence.add_argument("--k", type=int, default=40)
    p_convergence.add_argument("--restarts", type=int, default=3)
    p_convergence.add_argument("--chunks", type=int, default=10)
    p_convergence.set_defaults(fn=_cmd_convergence)

    p_swath = sub.add_parser(
        "swath", help="simulate a satellite and build bucket files"
    )
    p_swath.add_argument("--granules", required=True)
    p_swath.add_argument("--buckets", required=True)
    p_swath.add_argument("--orbits", type=int, default=2)
    p_swath.add_argument("--footprints", type=int, default=1_000)
    p_swath.add_argument("--samples", type=int, default=40)
    p_swath.add_argument("--min-points", type=int, default=100)
    p_swath.add_argument("--seed", type=int, default=0)
    p_swath.set_defaults(fn=_cmd_swath)

    p_compress = sub.add_parser(
        "compress", help="compress every bucket into .mvh histograms"
    )
    p_compress.add_argument("buckets")
    p_compress.add_argument("--out", required=True)
    p_compress.add_argument("--k", type=int, default=40)
    p_compress.add_argument("--chunks", type=int, default=5)
    p_compress.add_argument("--restarts", type=int, default=5)
    p_compress.add_argument("--seed", type=int, default=0)
    p_compress.set_defaults(fn=_cmd_compress)

    p_serve = sub.add_parser(
        "serve", help="serve a run's models hot from its journal"
    )
    p_serve.add_argument(
        "run_dir",
        help="run directory holding (or about to hold) the .rjl journal",
    )
    p_serve.add_argument(
        "--k",
        type=int,
        default=8,
        help="centroids for cells the journal gives no model for",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--restarts", type=int, default=3)
    p_serve.add_argument(
        "--kernel",
        choices=["dense", "hamerly", "elkan", "blas", "tiled"],
        default="dense",
        help="Lloyd assignment kernel (exact tiers are bit-identical; "
        "'blas' needs --no-exact and speeds up folds and serving assigns)",
    )
    p_serve.add_argument(
        "--no-exact",
        action="store_true",
        help="waive bit-identity: admit the 'blas' float32 GEMM kernel",
    )
    p_serve.add_argument(
        "--ttl",
        type=float,
        default=0.0,
        help="mark responses stale when the model is older than this "
        "many seconds (0 disables)",
    )
    p_serve.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip per-record journal fsync (faster ingest, less durable)",
    )
    p_serve.add_argument("--max-batch", type=int, default=32)
    p_serve.add_argument(
        "--batch-delay",
        type=float,
        default=0.002,
        help="micro-batch collection window in seconds",
    )
    p_serve.add_argument("--query-workers", type=int, default=2)
    p_serve.add_argument(
        "--load-duration",
        type=float,
        default=0.0,
        help="instead of serving stdin, fire the built-in load "
        "generator for this many seconds and print the report",
    )
    p_serve.add_argument("--load-concurrency", type=int, default=4)
    p_serve.add_argument("--load-seed", type=int, default=0)
    p_serve.add_argument(
        "--bench-json",
        default=None,
        help="with --load-duration, write serving metrics + load report "
        "as JSON to this path",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_cluster = sub.add_parser("cluster", help="cluster one bucket file")
    p_cluster.add_argument("bucket")
    p_cluster.add_argument("--k", type=int, default=40)
    p_cluster.add_argument("--chunks", type=int, default=5)
    p_cluster.add_argument("--restarts", type=int, default=10)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument(
        "--kernel",
        choices=["dense", "hamerly", "elkan", "blas", "tiled"],
        default="dense",
        help="Lloyd assignment kernel (exact tiers are bit-identical; "
        "'blas' needs --no-exact)",
    )
    p_cluster.add_argument(
        "--no-exact",
        action="store_true",
        help="waive bit-identity: admit the 'blas' float32 GEMM kernel",
    )
    p_cluster.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal the run into this directory (crash-resumable)",
    )
    p_cluster.add_argument(
        "--resume",
        action="store_true",
        help="resume the journal in --checkpoint-dir instead of refusing it",
    )
    p_cluster.set_defaults(fn=_cmd_cluster)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Operational failures — a corrupt bucket file, a missing path, a
    stream-engine error — print a one-line message to stderr and return
    exit code 2 instead of dumping a traceback; bugs still traceback.
    """
    from repro.data.gridio import GridBucketFormatError
    from repro.stream.errors import StreamError
    from repro.stream.query import QueryError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (GridBucketFormatError, QueryError, StreamError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
