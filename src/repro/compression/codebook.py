"""Vector-quantization codebook built from a cluster model.

The paper's motivating application substitutes a grid cell's points with
its cluster centroids: the centroids are the codebook, each point is
encoded as the index of its nearest centroid, and the decoded data set is
the centroid sequence.  This module provides that encode/decode pair plus
its rate/distortion accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ClusterModel, as_points
from repro.core.quality import assign_to_nearest

__all__ = ["Codebook"]


@dataclass(frozen=True)
class Codebook:
    """A VQ codebook: the centroids of a cluster model.

    Attributes:
        centroids: ``(k, d)`` code vectors.
    """

    centroids: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "centroids", as_points(self.centroids))

    @staticmethod
    def from_model(model: ClusterModel) -> "Codebook":
        """Build a codebook from any :class:`ClusterModel`."""
        return Codebook(centroids=model.centroids)

    @property
    def k(self) -> int:
        """Codebook size."""
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        """Code-vector dimensionality."""
        return self.centroids.shape[1]

    @property
    def bits_per_point(self) -> int:
        """Fixed-rate code length: ``ceil(log2 k)`` bits per point."""
        return max(1, int(np.ceil(np.log2(self.k))))

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Encode points as nearest-centroid indices, shape ``(n,)``."""
        pts = as_points(points)
        if pts.shape[1] != self.dim:
            raise ValueError(
                f"points have dimension {pts.shape[1]}, codebook has {self.dim}"
            )
        indices, __ = assign_to_nearest(pts, self.centroids)
        return indices

    def decode(self, indices: np.ndarray) -> np.ndarray:
        """Decode indices back into code vectors, shape ``(n, d)``."""
        idx = np.asarray(indices)
        if idx.ndim != 1:
            raise ValueError("indices must be 1-dimensional")
        if idx.size and (idx.min() < 0 or idx.max() >= self.k):
            raise ValueError("index out of codebook range")
        return self.centroids[idx]

    def distortion(self, points: np.ndarray) -> float:
        """Mean squared reconstruction error of round-tripping ``points``."""
        pts = as_points(points)
        decoded = self.decode(self.encode(pts))
        return float(((pts - decoded) ** 2).sum(axis=1).mean())

    def compression_ratio(self, n_points: int) -> float:
        """Raw bytes over compressed bytes for ``n_points`` float64 points.

        Compressed size counts the codebook itself (k·d float64) plus the
        index stream at :attr:`bits_per_point`.
        """
        if n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {n_points}")
        raw_bytes = n_points * self.dim * 8
        compressed_bytes = self.k * self.dim * 8 + n_points * self.bits_per_point / 8
        return raw_bytes / compressed_bytes
