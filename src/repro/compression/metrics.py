"""Compression fidelity metrics.

Scores how faithfully a compressed cell (codebook or histogram) stands in
for the raw points — the paper's "highly faithful representation of the
original data" requirement made measurable.
"""

from __future__ import annotations

import numpy as np

from repro.compression.histogram import MultivariateHistogram
from repro.core.model import as_points

__all__ = [
    "moment_preservation_error",
    "range_query_relative_errors",
    "random_query_boxes",
]


def moment_preservation_error(
    points: np.ndarray,
    centroids: np.ndarray,
    counts: np.ndarray,
) -> dict[str, float]:
    """How well the weighted centroids preserve the cell's moments.

    Returns relative errors of the reconstructed mean and per-attribute
    second moment versus the raw data (key metric for climate summaries,
    which aggregate cells by their decoded representation).
    """
    pts = as_points(points)
    cents = as_points(centroids)
    wts = np.asarray(counts, dtype=np.float64)
    if wts.shape != (cents.shape[0],):
        raise ValueError("counts must align with centroids")

    raw_mean = pts.mean(axis=0)
    rec_mean = np.average(cents, axis=0, weights=wts)
    mean_scale = max(float(np.linalg.norm(raw_mean)), 1e-12)
    mean_err = float(np.linalg.norm(rec_mean - raw_mean)) / mean_scale

    raw_m2 = (pts**2).mean(axis=0)
    rec_m2 = np.average(cents**2, axis=0, weights=wts)
    m2_scale = max(float(np.linalg.norm(raw_m2)), 1e-12)
    m2_err = float(np.linalg.norm(rec_m2 - raw_m2)) / m2_scale

    return {"mean_relative_error": mean_err, "second_moment_relative_error": m2_err}


def random_query_boxes(
    points: np.ndarray,
    n_queries: int,
    rng: np.random.Generator,
    relative_extent: float = 0.3,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Draw axis-aligned query boxes covering populated regions.

    Each box is centred on a random data point with per-axis extents a
    fraction of the data's range, so queries hit plausible selectivities.
    """
    pts = as_points(points)
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    spans = pts.max(axis=0) - pts.min(axis=0)
    half = np.maximum(spans * relative_extent / 2.0, 1e-9)
    centers = pts[rng.choice(pts.shape[0], size=n_queries)]
    return [(center - half, center + half) for center in centers]


def range_query_relative_errors(
    points: np.ndarray,
    histogram: MultivariateHistogram,
    queries: list[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Relative count-estimation error of the histogram per query.

    The error denominator is ``max(true_count, 1)`` so empty-result
    queries are scored sanely.
    """
    pts = as_points(points)
    errors = np.empty(len(queries))
    for index, (lo, hi) in enumerate(queries):
        inside = np.logical_and(pts >= lo, pts <= hi).all(axis=1)
        true_count = float(inside.sum())
        estimate = histogram.estimate_count(lo, hi)
        errors[index] = abs(estimate - true_count) / max(true_count, 1.0)
    return errors
