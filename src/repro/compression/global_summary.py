"""Global summaries assembled from per-cell compressed representations.

The point of compressing EOS grid cells (paper Section 1) is that
scientists then *analyse the compressed data*: global and regional
statistics are computed from the per-cell histograms instead of the raw
TB-scale archive.  :class:`GlobalSummary` is that analysis layer — a
collection of per-cell multivariate histograms keyed by grid cell,
supporting:

* global / regional weighted means of every attribute,
* regional point counts and attribute-range selectivity estimates,
* dense lat/lon coverage grids of any per-cell statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.histogram import MultivariateHistogram
from repro.data.gridcell import GridCellId

__all__ = ["Region", "GlobalSummary"]


@dataclass(frozen=True)
class Region:
    """A latitude/longitude rectangle (inclusive of touched cells).

    Attributes:
        lat_min: southern edge in degrees.
        lat_max: northern edge in degrees.
        lon_min: western edge in degrees.
        lon_max: eastern edge in degrees.
    """

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self) -> None:
        if self.lat_min > self.lat_max:
            raise ValueError("lat_min must be <= lat_max")
        if self.lon_min > self.lon_max:
            raise ValueError("lon_min must be <= lon_max")

    def contains_cell(self, cell: GridCellId) -> bool:
        """Whether the 1°×1° cell intersects the region."""
        return (
            self.lat_min - 1 < cell.lat <= self.lat_max
            and self.lon_min - 1 < cell.lon <= self.lon_max
        )

    @staticmethod
    def globe() -> "Region":
        """The whole planet."""
        return Region(-90.0, 90.0, -180.0, 180.0)


@dataclass
class GlobalSummary:
    """Per-cell histograms plus cross-cell analysis.

    Attributes:
        dim: attribute count shared by every cell.
    """

    dim: int
    _cells: dict[GridCellId, MultivariateHistogram] = field(default_factory=dict)

    def add_cell(self, cell_id: GridCellId, histogram: MultivariateHistogram) -> None:
        """Register (or replace) one cell's compressed representation."""
        if histogram.dim != self.dim:
            raise ValueError(
                f"histogram dim {histogram.dim} does not match summary dim {self.dim}"
            )
        self._cells[cell_id] = histogram

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell_id: GridCellId) -> bool:
        return cell_id in self._cells

    def cell(self, cell_id: GridCellId) -> MultivariateHistogram:
        """One cell's histogram (KeyError if absent)."""
        return self._cells[cell_id]

    def cells_in(self, region: Region) -> list[GridCellId]:
        """Cells intersecting ``region``, sorted."""
        return sorted(c for c in self._cells if region.contains_cell(c))

    # -- statistics ----------------------------------------------------------

    def total_count(self, region: Region | None = None) -> float:
        """Points summarised inside ``region`` (whole globe if ``None``)."""
        chosen = self.cells_in(region) if region is not None else list(self._cells)
        return sum(self._cells[c].total_count for c in chosen)

    def mean(self, region: Region | None = None) -> np.ndarray:
        """Count-weighted attribute mean over ``region``.

        Exact for the decoded representation: each bucket contributes its
        centroid weighted by its count, which preserves every cell's true
        mean (cluster centroids are cluster means).
        """
        chosen = self.cells_in(region) if region is not None else list(self._cells)
        if not chosen:
            raise ValueError("no cells in the requested region")
        accumulator = np.zeros(self.dim)
        mass = 0.0
        for cell_id in chosen:
            centroids, counts = self._cells[cell_id].reconstruct()
            accumulator += (centroids * counts[:, None]).sum(axis=0)
            mass += counts.sum()
        return accumulator / mass

    def estimate_count(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        region: Region | None = None,
    ) -> float:
        """Estimated points with attributes in ``[lower, upper]``.

        Sums each selected cell's histogram selectivity estimate; the
        classic "how many cloudy-bright-cold pixels in this region"
        query answered without touching raw data.
        """
        chosen = self.cells_in(region) if region is not None else list(self._cells)
        return sum(
            self._cells[c].estimate_count(lower, upper) for c in chosen
        )

    def coverage_grid(self, statistic: str = "count") -> np.ndarray:
        """Dense 180×360 lat/lon grid of a per-cell statistic.

        Args:
            statistic: ``"count"`` (points per cell) or ``"buckets"``
                (histogram size per cell).  Cells without data are 0.

        Returns:
            ``(180, 360)`` array indexed ``[lat + 90, lon + 180]``.
        """
        if statistic not in ("count", "buckets"):
            raise ValueError(f"unknown statistic {statistic!r}")
        grid = np.zeros((180, 360))
        for cell_id, histogram in self._cells.items():
            value = (
                histogram.total_count
                if statistic == "count"
                else float(len(histogram.buckets))
            )
            grid[cell_id.lat + 90, cell_id.lon + 180] = value
        return grid

    def storage_floats(self) -> int:
        """Total float64 slots across all cell histograms."""
        return sum(h.storage_floats() for h in self._cells.values())

    def compression_ratio(self) -> float:
        """Raw floats over stored floats for the whole summary."""
        raw = self.total_count() * self.dim
        stored = self.storage_floats()
        if stored == 0:
            raise ValueError("summary is empty")
        return raw / stored
