"""Multivariate histograms with non-equi-depth buckets.

The paper compresses each grid cell "using multivariate histograms ...
with non-equi-depth buckets so that the shapes, sizes, and number of
buckets are able to adapt to the shape and complexity of the actual data"
(Section 1).  The buckets come from clustering: each cluster becomes one
bucket, described by its centroid, its point count, and its axis-aligned
bounding box — capturing the joint (fully dependent) distribution rather
than per-attribute marginals.

Besides reconstruction, the histogram answers the classic selectivity
question: estimate how many points fall inside an axis-aligned query box,
assuming uniformity within each bucket.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ClusterModel, as_points
from repro.core.quality import assign_to_nearest

__all__ = ["HistogramBucket", "MultivariateHistogram"]


@dataclass(frozen=True)
class HistogramBucket:
    """One adaptive bucket: a cluster's spatial summary.

    Attributes:
        centroid: ``(d,)`` representative vector.
        count: points summarised by the bucket.
        lower: ``(d,)`` per-attribute minimum of the bucket's points.
        upper: ``(d,)`` per-attribute maximum of the bucket's points.
    """

    centroid: np.ndarray
    count: float
    lower: np.ndarray
    upper: np.ndarray

    @property
    def volume(self) -> float:
        """Bounding-box volume (0 for degenerate boxes)."""
        return float(np.prod(np.maximum(self.upper - self.lower, 0.0)))

    def overlap_fraction(self, lo: np.ndarray, hi: np.ndarray) -> float:
        """Fraction of the bucket's box inside the query box ``[lo, hi]``.

        Degenerate (zero-extent) axes count as fully inside when the
        bucket's value lies within the query range on that axis.
        """
        fraction = 1.0
        for axis in range(self.centroid.size):
            extent = self.upper[axis] - self.lower[axis]
            cut_lo = max(self.lower[axis], lo[axis])
            cut_hi = min(self.upper[axis], hi[axis])
            if extent <= 0.0:
                inside = lo[axis] <= self.lower[axis] <= hi[axis]
                if not inside:
                    return 0.0
                continue
            if cut_hi <= cut_lo:
                return 0.0
            fraction *= (cut_hi - cut_lo) / extent
        return fraction


@dataclass(frozen=True)
class MultivariateHistogram:
    """A cell's compressed representation: adaptive cluster buckets.

    Attributes:
        buckets: the clusters-as-buckets.
        dim: attribute count.
    """

    buckets: tuple[HistogramBucket, ...]
    dim: int

    @staticmethod
    def from_model(points: np.ndarray, model: ClusterModel) -> "MultivariateHistogram":
        """Build the histogram by assigning ``points`` to ``model``.

        Only occupied clusters produce buckets.
        """
        pts = as_points(points)
        assignments, __ = assign_to_nearest(pts, model.centroids)
        buckets: list[HistogramBucket] = []
        for index in range(model.k):
            members = pts[assignments == index]
            if members.shape[0] == 0:
                continue
            buckets.append(
                HistogramBucket(
                    centroid=model.centroids[index].copy(),
                    count=float(members.shape[0]),
                    lower=members.min(axis=0),
                    upper=members.max(axis=0),
                )
            )
        return MultivariateHistogram(buckets=tuple(buckets), dim=pts.shape[1])

    @property
    def total_count(self) -> float:
        """Total points summarised."""
        return sum(b.count for b in self.buckets)

    def estimate_count(self, lower: np.ndarray, upper: np.ndarray) -> float:
        """Estimate points inside the axis-aligned box ``[lower, upper]``."""
        lo = np.asarray(lower, dtype=np.float64)
        hi = np.asarray(upper, dtype=np.float64)
        if lo.shape != (self.dim,) or hi.shape != (self.dim,):
            raise ValueError(f"query box must have shape ({self.dim},)")
        if (hi < lo).any():
            raise ValueError("query box has upper < lower")
        return sum(b.count * b.overlap_fraction(lo, hi) for b in self.buckets)

    def reconstruct(self) -> tuple[np.ndarray, np.ndarray]:
        """The decoded data set: ``(centroids, counts)``.

        This is the representation shipped to scientists in place of the
        raw points.
        """
        centroids = np.array([b.centroid for b in self.buckets])
        counts = np.array([b.count for b in self.buckets])
        return centroids, counts

    def marginal(self, axis: int, n_bins: int = 32) -> tuple[np.ndarray, np.ndarray]:
        """Marginal distribution of one attribute from the buckets.

        Each bucket's count is spread uniformly over its extent on
        ``axis`` (degenerate extents contribute to a single bin).

        Args:
            axis: attribute index.
            n_bins: output resolution.

        Returns:
            ``(edges, counts)`` where ``edges`` has ``n_bins + 1`` values
            and ``counts`` sums to :attr:`total_count`.
        """
        if not 0 <= axis < self.dim:
            raise ValueError(f"axis {axis} out of range for dim {self.dim}")
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if not self.buckets:
            raise ValueError("histogram has no buckets")
        lo = min(b.lower[axis] for b in self.buckets)
        hi = max(b.upper[axis] for b in self.buckets)
        if hi <= lo:
            hi = lo + 1.0
        edges = np.linspace(lo, hi, n_bins + 1)
        counts = np.zeros(n_bins)
        width = edges[1] - edges[0]
        for bucket in self.buckets:
            b_lo, b_hi = bucket.lower[axis], bucket.upper[axis]
            extent = b_hi - b_lo
            if extent <= 0.0:
                index = min(int((b_lo - lo) / width), n_bins - 1)
                counts[index] += bucket.count
                continue
            cut_lo = np.clip((edges[:-1] - b_lo) / extent, 0.0, 1.0)
            cut_hi = np.clip((edges[1:] - b_lo) / extent, 0.0, 1.0)
            counts += bucket.count * (cut_hi - cut_lo)
        return edges, counts

    def quantile(self, axis: int, q: float, n_bins: int = 256) -> float:
        """Approximate quantile of one attribute from the marginal.

        Args:
            axis: attribute index.
            q: quantile in ``[0, 1]``.
            n_bins: marginal resolution used for the inversion.

        Returns:
            The attribute value below which a fraction ``q`` of the
            summarised points fall (piecewise-linear interpolation).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        edges, counts = self.marginal(axis, n_bins=n_bins)
        cumulative = np.concatenate([[0.0], np.cumsum(counts)])
        total = cumulative[-1]
        if total <= 0.0:
            raise ValueError("histogram carries no mass")
        target = q * total
        index = int(np.searchsorted(cumulative, target, side="right")) - 1
        index = min(max(index, 0), len(counts) - 1)
        bin_mass = counts[index]
        if bin_mass <= 0.0:
            return float(edges[index])
        fraction = (target - cumulative[index]) / bin_mass
        return float(edges[index] + fraction * (edges[index + 1] - edges[index]))

    def storage_floats(self) -> int:
        """Float64 slots the histogram occupies (centroid + box + count)."""
        per_bucket = self.dim * 3 + 1
        return per_bucket * len(self.buckets)

    def compression_ratio(self, n_points: int) -> float:
        """Raw float count over histogram float count."""
        if n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {n_points}")
        return (n_points * self.dim) / self.storage_floats()
