"""Outlier separation for compression.

Far-tail points distort cluster-based summaries: one anomalous
measurement stretches its bucket's bounding box across half the space,
ruining the histogram's selectivity estimates.  The standard remedy
(used by CURE and by practical VQ codecs) is to store the tail
literally: split off the points farthest from their centroid and keep
them as an exact side list, compressing only the body.

:func:`split_outliers` performs the split;
:func:`compress_with_outliers` is the convenience wrapper producing a
histogram over the body plus the exact outlier block, with combined
storage accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.histogram import MultivariateHistogram
from repro.core.model import ClusterModel, as_points
from repro.core.quality import assign_to_nearest

__all__ = ["OutlierSplit", "split_outliers", "compress_with_outliers"]


@dataclass(frozen=True)
class OutlierSplit:
    """A body/tail partition of a cell.

    Attributes:
        body: ``(n_body, d)`` points kept for lossy summarisation.
        outliers: ``(n_out, d)`` far-tail points to store exactly.
        threshold: squared-distance cutoff that separated them.
    """

    body: np.ndarray
    outliers: np.ndarray
    threshold: float

    @property
    def outlier_fraction(self) -> float:
        total = self.body.shape[0] + self.outliers.shape[0]
        return self.outliers.shape[0] / total if total else 0.0


def split_outliers(
    points: np.ndarray,
    centroids: np.ndarray,
    quantile: float = 0.99,
) -> OutlierSplit:
    """Split off points beyond the given quantile of quantization error.

    Args:
        points: the cell's data.
        centroids: the summary the error is measured against.
        quantile: points whose squared distance to their nearest centroid
            exceeds this quantile become outliers.

    Returns:
        An :class:`OutlierSplit`; ``body`` is never empty.
    """
    pts = as_points(points)
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    __, sq = assign_to_nearest(pts, as_points(centroids))
    threshold = float(np.quantile(sq, quantile))
    tail = sq > threshold
    if tail.all():
        tail = np.zeros_like(tail)
    return OutlierSplit(
        body=pts[~tail],
        outliers=pts[tail],
        threshold=threshold,
    )


@dataclass(frozen=True)
class _OutlierCompressed:
    """Histogram over the body plus an exact tail."""

    histogram: MultivariateHistogram
    outliers: np.ndarray
    threshold: float

    def storage_floats(self) -> int:
        """Histogram floats plus the literal outlier block."""
        return self.histogram.storage_floats() + self.outliers.size

    def estimate_count(self, lower: np.ndarray, upper: np.ndarray) -> float:
        """Range-count estimate: histogram body + exact tail count."""
        inside = (
            np.logical_and(self.outliers >= lower, self.outliers <= upper)
            .all(axis=1)
            .sum()
            if self.outliers.size
            else 0
        )
        return self.histogram.estimate_count(lower, upper) + float(inside)

    @property
    def total_count(self) -> float:
        return self.histogram.total_count + self.outliers.shape[0]


def compress_with_outliers(
    points: np.ndarray,
    model: ClusterModel,
    quantile: float = 0.99,
) -> _OutlierCompressed:
    """Histogram over the body, exact storage for the far tail.

    Args:
        points: the cell's data.
        model: the cluster model driving bucket shapes.
        quantile: tail cutoff (see :func:`split_outliers`).

    Returns:
        A compressed representation answering the same queries as a
        plain histogram, with the tail answered exactly.
    """
    split = split_outliers(points, model.centroids, quantile=quantile)
    histogram = MultivariateHistogram.from_model(split.body, model)
    return _OutlierCompressed(
        histogram=histogram,
        outliers=split.outliers,
        threshold=split.threshold,
    )
