"""The paper's motivating application: grid-cell compression.

* :class:`~repro.compression.codebook.Codebook` — VQ encode/decode.
* :class:`~repro.compression.histogram.MultivariateHistogram` —
  non-equi-depth adaptive buckets built from a cluster model.
* :mod:`~repro.compression.metrics` — fidelity scoring.
"""

from repro.compression.codebook import Codebook
from repro.compression.global_summary import GlobalSummary, Region
from repro.compression.histogram import HistogramBucket, MultivariateHistogram
from repro.compression.outliers import (
    OutlierSplit,
    compress_with_outliers,
    split_outliers,
)
from repro.compression.sampling import sample_compress
from repro.compression.metrics import (
    moment_preservation_error,
    random_query_boxes,
    range_query_relative_errors,
)
from repro.compression.serialization import (
    HistogramFormatError,
    read_histogram_file,
    read_summary_dir,
    write_histogram_file,
    write_summary_dir,
)

__all__ = [
    "Codebook",
    "sample_compress",
    "OutlierSplit",
    "compress_with_outliers",
    "split_outliers",
    "GlobalSummary",
    "Region",
    "HistogramBucket",
    "MultivariateHistogram",
    "moment_preservation_error",
    "random_query_boxes",
    "range_query_relative_errors",
    "HistogramFormatError",
    "read_histogram_file",
    "read_summary_dir",
    "write_histogram_file",
    "write_summary_dir",
]
