"""On-disk format for compressed cells (.mvh — multivariate histogram).

The compressed products are what actually gets distributed to scientists
(paper Section 1: "we substitute data sets with compressed
counterparts"), so they need a stable, compact container:

Layout (little-endian)::

    magic     4 bytes  b"MVH1"
    lat       int32    cell south edge
    lon       int32    cell west edge
    n_buckets uint32
    dim       uint32
    per bucket: centroid d f64 | count f64 | lower d f64 | upper d f64

A :class:`~repro.compression.global_summary.GlobalSummary` round-trips
through a directory of these files.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.compression.global_summary import GlobalSummary
from repro.compression.histogram import HistogramBucket, MultivariateHistogram
from repro.data.gridcell import GridCellId

__all__ = [
    "HistogramFormatError",
    "write_histogram_file",
    "read_histogram_file",
    "write_summary_dir",
    "read_summary_dir",
]

_MAGIC = b"MVH1"
_HEADER = struct.Struct("<4siiII")


class HistogramFormatError(Exception):
    """A .mvh file is malformed or truncated."""


def write_histogram_file(
    path: str | Path, cell_id: GridCellId, histogram: MultivariateHistogram
) -> Path:
    """Serialize one cell's histogram."""
    target = Path(path)
    dim = histogram.dim
    rows = []
    for bucket in histogram.buckets:
        rows.append(
            np.concatenate(
                [bucket.centroid, [bucket.count], bucket.lower, bucket.upper]
            )
        )
    payload = (
        np.asarray(rows, dtype="<f8").tobytes() if rows else b""
    )
    with open(target, "wb") as handle:
        handle.write(
            _HEADER.pack(
                _MAGIC, cell_id.lat, cell_id.lon, len(histogram.buckets), dim
            )
        )
        handle.write(payload)
    return target


def read_histogram_file(
    path: str | Path,
) -> tuple[GridCellId, MultivariateHistogram]:
    """Deserialize one cell's histogram."""
    with open(path, "rb") as handle:
        raw = handle.read(_HEADER.size)
        if len(raw) != _HEADER.size:
            raise HistogramFormatError(f"{path}: truncated header")
        magic, lat, lon, n_buckets, dim = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise HistogramFormatError(f"{path}: bad magic {magic!r}")
        row_floats = 3 * dim + 1
        payload = handle.read()
    expected = n_buckets * row_floats * 8
    if len(payload) != expected:
        raise HistogramFormatError(
            f"{path}: payload is {len(payload)} bytes, expected {expected}"
        )
    rows = np.frombuffer(payload, dtype="<f8").reshape(n_buckets, row_floats)
    buckets = tuple(
        HistogramBucket(
            centroid=row[:dim].copy(),
            count=float(row[dim]),
            lower=row[dim + 1 : 2 * dim + 1].copy(),
            upper=row[2 * dim + 1 :].copy(),
        )
        for row in rows
    )
    return (
        GridCellId(lat=lat, lon=lon),
        MultivariateHistogram(buckets=buckets, dim=dim),
    )


def write_summary_dir(directory: str | Path, summary: GlobalSummary) -> list[Path]:
    """Write every cell of a global summary as ``<key>.mvh`` files."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths = []
    for cell_id in sorted(summary._cells):
        paths.append(
            write_histogram_file(
                root / f"{cell_id.key}.mvh", cell_id, summary.cell(cell_id)
            )
        )
    return paths


def read_summary_dir(directory: str | Path, dim: int) -> GlobalSummary:
    """Assemble a global summary from a directory of ``.mvh`` files."""
    summary = GlobalSummary(dim=dim)
    for path in sorted(Path(directory).glob("*.mvh")):
        cell_id, histogram = read_histogram_file(path)
        summary.add_cell(cell_id, histogram)
    return summary
