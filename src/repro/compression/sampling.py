"""Random-sampling compression baseline.

The paper's related work cites random sampling for histogram
construction (Chaudhuri, Motwani & Narasayya, SIGMOD'98) as the cheap
alternative to clustering-based summaries.  This module implements that
baseline so the compression benchmarks can quantify what the clustering
buys: a cell is summarised by a uniform random sample of ``k`` points,
each weighted ``n/k``, with the same downstream interfaces (weighted
representation, histogram, fidelity metrics) as the cluster model.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.model import ClusterModel, as_points

__all__ = ["sample_compress"]


def sample_compress(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> ClusterModel:
    """Summarise a cell by a uniform random sample of ``k`` points.

    Args:
        points: ``(n, d)`` cell data.
        k: sample size (plays the role of the codebook size; clamped to
            ``n``).
        rng: randomness.

    Returns:
        A :class:`ClusterModel` whose "centroids" are the sampled points
        and whose weights are uniform ``n / k`` — directly comparable
        with clustering-based models in every metric.
    """
    pts = as_points(points)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    sample_size = min(k, pts.shape[0])
    start = time.perf_counter()
    idx = rng.choice(pts.shape[0], size=sample_size, replace=False)
    sample = pts[idx].copy()
    elapsed = time.perf_counter() - start
    weights = np.full(sample_size, pts.shape[0] / sample_size)

    from repro.core.quality import mse as evaluate_mse

    return ClusterModel(
        centroids=sample,
        weights=weights,
        mse=evaluate_mse(pts, sample),
        method="random-sample",
        total_seconds=elapsed,
        extra={"sample_size": sample_size},
    )
