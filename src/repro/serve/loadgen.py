"""Deterministic load generator for :class:`~repro.serve.server.ClusterServer`.

Drives a running server with a configurable mix of ``assign`` /
``summary`` / ``window`` / ``ingest`` traffic from ``concurrency``
client threads and reports client-side latency percentiles, QPS and
the server's ingest update lag.  Each client thread draws its op
choices and query points from ``default_rng([seed, thread_index])``, so
a load run is reproducible up to thread scheduling — the *workload* is
deterministic even though interleaving is not.

Used by the ``repro serve --load-duration`` CLI mode, the serving
benchmark (``benchmarks/test_bench_serving.py`` → ``BENCH_serving.json``)
and the CI serving smoke job.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.serve.registry import ServeError
from repro.serve.server import ClusterServer

__all__ = ["LoadGenerator", "LoadReport"]

#: Default traffic mix (weights are normalised; ops with weight 0 are
#: never issued).
DEFAULT_MIX = {
    "assign": 0.55,
    "summary": 0.20,
    "window": 0.15,
    "ingest": 0.10,
}


def _percentile_ms(latencies: list[float], q: float) -> float:
    """Ceil-rank percentile of a latency sample, in milliseconds."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank] * 1000.0


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load run.

    Attributes:
        duration_seconds: wall-clock of the run.
        concurrency: client threads used.
        total_requests: requests answered (including errors).
        errors: requests that raised.
        qps: ``total_requests / duration_seconds``.
        endpoints: per-endpoint client-side latency stats
            (``count``, ``mean_ms``, ``p50_ms``, ``p99_ms``).
        update_lag_ms: server-side ingest update lag percentiles
            (``p50`` / ``p99`` / ``max``), 0.0 when no ingest ran.
    """

    duration_seconds: float
    concurrency: int
    total_requests: int
    errors: int
    qps: float
    endpoints: dict
    update_lag_ms: dict

    def to_payload(self) -> dict:
        """JSON-safe representation for the bench ledger."""
        return {
            "duration_seconds": self.duration_seconds,
            "concurrency": self.concurrency,
            "total_requests": self.total_requests,
            "errors": self.errors,
            "qps": self.qps,
            "endpoints": self.endpoints,
            "update_lag_ms": self.update_lag_ms,
        }

    def summary_lines(self) -> list[str]:
        """Human-readable digest for the CLI."""
        lines = [
            f"load: {self.total_requests} requests over "
            f"{self.duration_seconds:.2f}s with {self.concurrency} "
            f"clients -> {self.qps:.0f} QPS ({self.errors} errors)"
        ]
        for name, stats in sorted(self.endpoints.items()):
            lines.append(
                f"  {name:>8}: {stats['count']:>6} reqs  "
                f"p50 {stats['p50_ms']:.2f} ms  "
                f"p99 {stats['p99_ms']:.2f} ms"
            )
        if self.update_lag_ms.get("p99", 0.0) > 0.0:
            lines.append(
                f"  update lag: p50 {self.update_lag_ms['p50']:.2f} ms  "
                f"p99 {self.update_lag_ms['p99']:.2f} ms"
            )
        return lines


class LoadGenerator:
    """Multi-threaded deterministic-workload client for a running server.

    Args:
        server: a started :class:`~repro.serve.server.ClusterServer`.
        cells: cell ids to spread traffic over (must be non-empty).
        seed: base seed; client thread ``i`` uses
            ``default_rng([seed, i])``.
        mix: op → weight; defaults to :data:`DEFAULT_MIX`.  Weights are
            normalised, so ``{"assign": 1}`` is an assign-only load.
        assign_points: query points per assign request.
        ingest_points: points per ingested chunk.
        dim: point dimensionality; inferred from the first populated
            cell's model when omitted (falls back to 2).
    """

    def __init__(
        self,
        server: ClusterServer,
        cells: list[str],
        seed: int = 0,
        mix: dict[str, float] | None = None,
        assign_points: int = 16,
        ingest_points: int = 64,
        dim: int | None = None,
    ) -> None:
        if not cells:
            raise ValueError("cells must be non-empty")
        chosen = dict(DEFAULT_MIX if mix is None else mix)
        unknown = set(chosen) - set(DEFAULT_MIX)
        if unknown:
            raise ValueError(
                f"unknown ops in mix: {sorted(unknown)}; "
                f"valid: {sorted(DEFAULT_MIX)}"
            )
        total = sum(chosen.values())
        if total <= 0:
            raise ValueError("mix weights must sum to > 0")
        self.server = server
        self.cells = list(cells)
        self.seed = seed
        self.assign_points = assign_points
        self.ingest_points = ingest_points
        self._ops = sorted(op for op, w in chosen.items() if w > 0)
        self._weights = np.array(
            [chosen[op] / total for op in self._ops], dtype=np.float64
        )
        self.dim = dim if dim is not None else self._infer_dim()

    def _infer_dim(self) -> int:
        for cell in self.cells:
            try:
                info = self.server.summary(cell)
            except ServeError:
                continue
            if info.model.k > 0:
                return int(info.model.centroids.shape[1])
        return 2

    # -- client loop ---------------------------------------------------------

    def _client(
        self,
        index: int,
        deadline: float,
        latencies: dict[str, list[float]],
        counters: dict[str, int],
    ) -> None:
        rng = np.random.default_rng([self.seed, index])
        while time.perf_counter() < deadline:
            op = self._ops[
                int(rng.choice(len(self._ops), p=self._weights))
            ]
            cell = self.cells[int(rng.integers(len(self.cells)))]
            began = time.perf_counter()
            try:
                if op == "assign":
                    points = rng.normal(
                        size=(self.assign_points, self.dim)
                    )
                    self.server.assign(cell, points)
                elif op == "summary":
                    self.server.summary(cell)
                elif op == "window":
                    self.server.window(cell, last_n=2)
                else:  # ingest
                    points = rng.normal(
                        size=(self.ingest_points, self.dim)
                    )
                    self.server.ingest(cell, points)
            except Exception:
                counters["errors"] += 1
            latencies[op].append(time.perf_counter() - began)

    def run(
        self, duration_seconds: float, concurrency: int = 4
    ) -> LoadReport:
        """Fire load for ``duration_seconds`` and return the report.

        Threads stop at the deadline after finishing their in-flight
        request, so the measured duration can slightly exceed the ask.
        """
        if duration_seconds <= 0:
            raise ValueError(
                f"duration_seconds must be > 0, got {duration_seconds}"
            )
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        per_thread: list[dict[str, list[float]]] = []
        per_counters: list[dict[str, int]] = []
        threads: list[threading.Thread] = []
        began = time.perf_counter()
        deadline = began + duration_seconds
        for index in range(concurrency):
            latencies: dict[str, list[float]] = {op: [] for op in self._ops}
            counters = {"errors": 0}
            per_thread.append(latencies)
            per_counters.append(counters)
            thread = threading.Thread(
                target=self._client,
                args=(index, deadline, latencies, counters),
                name=f"loadgen-{index}",
                daemon=True,
            )
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - began

        merged: dict[str, list[float]] = {op: [] for op in self._ops}
        for latencies in per_thread:
            for op, values in latencies.items():
                merged[op].extend(values)
        endpoints = {
            op: {
                "count": len(values),
                "mean_ms": (
                    sum(values) / len(values) * 1000.0 if values else 0.0
                ),
                "p50_ms": _percentile_ms(values, 0.50),
                "p99_ms": _percentile_ms(values, 0.99),
            }
            for op, values in merged.items()
        }
        total = sum(stats["count"] for stats in endpoints.values())
        lag = self.server.metrics.update_lag
        update_lag_ms = {
            "p50": lag.percentile(50.0) * 1000.0,
            "p99": lag.percentile(99.0) * 1000.0,
            "max": lag.max_seconds * 1000.0,
        }
        return LoadReport(
            duration_seconds=elapsed,
            concurrency=concurrency,
            total_requests=total,
            errors=sum(c["errors"] for c in per_counters),
            qps=total / elapsed if elapsed > 0 else 0.0,
            endpoints=endpoints,
            update_lag_ms=update_lag_ms,
        )
