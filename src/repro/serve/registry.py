"""Warm model registry: per-cell clustering state resident in memory.

One :class:`ModelRegistry` owns a run directory's ``.rjl`` journal and
keeps, per grid cell:

* the **served model** — a :class:`~repro.core.model.ClusterModel`
  maintained by the incremental fold discipline of
  :mod:`repro.core.incremental` (:func:`~repro.core.incremental.fold_summary`),
* the **coreset tree** — the PR 5
  :class:`~repro.stream.coreset.CoresetTree`, answering prefix/window
  queries over the cell's partition history in milliseconds.

Warm-start contract
-------------------

All serving state is a *pure function of the journal's contiguous
record prefix* under a fixed registry configuration ``(k, seed,
restarts, criterion, max_iter, kernel)``:

* journaled ``cell`` records are adopted as each cell's base model
  (bit-identical — the journal codec never round-trips floats through
  JSON text);
* journaled ``partition`` records beyond the base model's
  ``partitions`` count are re-folded in index order with the
  deterministic largest-weight-seeded merge;
* the coreset tree is rebuilt from the same ``partition`` records,
  adopting journaled ``tree_node`` summaries instead of recomputing
  merges.

A restarted registry therefore serves **bit-identical** responses to
one that never died — the property ``tests/test_serve_warm_restart.py``
proves with a SIGKILL.  Ingested chunks append ``partition`` (and
``tree_node``) records to the same journal *before* the fold is
applied, so the durable state always leads the served state.

The partial k-means run on an ingested chunk draws its restart seeds
from a generator keyed on ``(registry seed, cell id, partition index)``
— re-ingesting a chunk after a crash reproduces the exact summary, so
at-least-once delivery by a client converges to the same bits.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.incremental import fold_summary
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.model import ClusterModel, as_points
from repro.core.partial import partial_kmeans
from repro.core.quality import assign_to_nearest
from repro.stream.checkpoint import (
    JOURNAL_FILENAME,
    JournalState,
    JournalWriter,
    read_journal,
)
from repro.stream.coreset import CoresetTree, PrefixQuery
from repro.stream.errors import StreamError
from repro.stream.items import CentroidMessage

__all__ = [
    "ServeError",
    "UnknownCellError",
    "AssignResult",
    "SummaryInfo",
    "IngestReceipt",
    "ModelRegistry",
]


class ServeError(StreamError):
    """A serving request cannot be answered."""


class UnknownCellError(ServeError):
    """The requested cell is in neither the registry nor the journal."""


def _chunk_rng(seed: int, cell_id: str, partition: int) -> np.random.Generator:
    """Deterministic restart RNG for one (cell, partition) ingest.

    Keyed on the registry seed plus a stable hash of the cell id plus
    the partition index, so the partial summary of a chunk is a pure
    function of its content and position — the warm-restart and
    at-least-once-ingest guarantees both rest on this.
    """
    return np.random.default_rng(
        [seed, zlib.crc32(cell_id.encode("utf-8")), partition]
    )


@dataclass(frozen=True)
class AssignResult:
    """Answer to one ``assign``/``nearest`` request.

    Attributes:
        cell_id: the queried cell.
        assignments: nearest-centroid index per query point.
        sq_dists: squared distance to that centroid per query point.
        centroids: the assigned centroids' coordinates (``nearest``
            requests read these; plain ``assign`` callers may ignore).
        model_version: partitions folded into the answering model.
        stale: whether the model's age exceeded the registry TTL.
    """

    cell_id: str
    assignments: np.ndarray
    sq_dists: np.ndarray
    centroids: np.ndarray
    model_version: int
    stale: bool

    def to_payload(self) -> dict:
        """JSON-safe representation (floats round-trip exactly)."""
        return {
            "cell": self.cell_id,
            "assignments": [int(a) for a in self.assignments],
            "sq_dists": self.sq_dists.tolist(),
            "centroids": self.centroids.tolist(),
            "model_version": self.model_version,
            "stale": self.stale,
        }


@dataclass(frozen=True)
class SummaryInfo:
    """Answer to one ``summary`` request: the cell's hot model + freshness.

    Attributes:
        cell_id: the queried cell.
        model: the served model (empty watermark for zero-point cells).
        partitions: partitions folded in (base + serve-time).
        folds: serve-time folds applied since warm start.
        age_seconds: time since the model last changed (or was warmed).
        stale: whether ``age_seconds`` exceeded the registry TTL.
    """

    cell_id: str
    model: ClusterModel
    partitions: int
    folds: int
    age_seconds: float
    stale: bool

    def to_payload(self) -> dict:
        """JSON-safe representation (floats round-trip exactly)."""
        return {
            "cell": self.cell_id,
            "k": self.model.k,
            "centroids": self.model.centroids.tolist(),
            "weights": self.model.weights.tolist(),
            "mse": self.model.mse,
            "method": self.model.method,
            "partitions": self.partitions,
            "folds": self.folds,
            "age_seconds": self.age_seconds,
            "stale": self.stale,
        }


@dataclass(frozen=True)
class IngestReceipt:
    """Acknowledgement of one folded chunk.

    Attributes:
        cell_id: the cell the chunk was folded into.
        partition: journal partition index the chunk was recorded under.
        n_points: points folded.
        model_version: partitions in the model after the fold.
        partial_seconds: wall-clock of the chunk's partial k-means.
        fold_seconds: wall-clock of journal append + merge + tree offer.
    """

    cell_id: str
    partition: int
    n_points: int
    model_version: int
    partial_seconds: float
    fold_seconds: float

    def to_payload(self) -> dict:
        """JSON-safe representation."""
        return {
            "cell": self.cell_id,
            "partition": self.partition,
            "n_points": self.n_points,
            "model_version": self.model_version,
            "partial_seconds": self.partial_seconds,
            "fold_seconds": self.fold_seconds,
        }


@dataclass
class _CellEntry:
    """One cell's resident serving state."""

    cell_id: str
    model: ClusterModel | None
    tree: CoresetTree
    partitions: int
    updated_at: float
    lock: threading.RLock = field(default_factory=threading.RLock)
    folds: int = 0


class ModelRegistry:
    """Hot per-cell models + coreset trees over one run journal.

    Args:
        run_dir: directory holding (or about to hold) the ``.rjl``
            journal; created on first ingest if absent.
        k: centroids for cells the journal gives no model for (new cells
            and zero-point-cell watermarks); populated journal models
            keep their own ``k``.
        seed: base seed for ingest-time partial k-means restarts.
        restarts: seed restarts per ingested chunk.
        criterion: convergence criterion for all folds and tree merges.
        max_iter: Lloyd cap for all folds and tree merges.
        kernel: assignment backend for all folds and tree merges
            (exact kernels are bit-identical; performance knob only).
        exact: ``False`` opts into the tolerance-close ``blas`` tier for
            folds, merges *and* serving-time assigns (the float32 GEMM
            one-shot path).
        ttl_seconds: serve-side staleness horizon — responses from a
            model older than this carry ``stale=True`` (and are counted)
            so callers can trigger refreshes; ``None`` disables.
        fsync: fsync the journal after every record (default).  Turning
            it off trades durability for ingest latency — tests only.

    Thread safety: per-cell locks serialise folds and reads of one cell;
    distinct cells proceed concurrently.
    """

    def __init__(
        self,
        run_dir: str | Path,
        k: int = 8,
        seed: int = 0,
        restarts: int = 3,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        kernel: str | None = None,
        exact: bool | None = None,
        ttl_seconds: float | None = None,
        fsync: bool = True,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.run_dir = Path(run_dir)
        self.journal_path = self.run_dir / JOURNAL_FILENAME
        self.k = k
        self.seed = seed
        self.restarts = restarts
        self.criterion = criterion
        self.max_iter = max_iter
        self.kernel = kernel
        self.exact = exact
        self.ttl_seconds = ttl_seconds
        self._fsync = fsync
        self._lock = threading.Lock()
        self._entries: dict[str, _CellEntry] = {}
        #: Cells known to exist in the journal (re-warmable after evict).
        self._known_cells: set[str] = set()
        self._journal: JournalWriter | None = None
        # -- accounting ------------------------------------------------------
        self.recovery_seconds = 0.0
        self.partitions_replayed = 0
        self.cells_adopted = 0
        self.nodes_preloaded = 0
        self.gaps_skipped = 0
        self.stale_served = 0
        self.evictions = 0
        self.rewarms = 0
        self.ingests = 0
        self._warm_start()

    # -- warm start ----------------------------------------------------------

    def _warm_start(self) -> None:
        began = time.perf_counter()
        state = self._read_state()
        if state is not None:
            for cell_id in sorted(set(state.cells) | set(state.partitions)):
                self._entries[cell_id] = self._build_entry(cell_id, state)
                self._known_cells.add(cell_id)
        self.recovery_seconds = time.perf_counter() - began

    def _read_state(self) -> JournalState | None:
        if not self.journal_path.exists():
            return None
        if self.journal_path.stat().st_size == 0:
            return None
        return read_journal(self.journal_path)

    def _build_entry(self, cell_id: str, state: JournalState) -> _CellEntry:
        """Rebuild one cell's serving state from the journal.

        Deterministic by construction: the base model is adopted
        bit-exactly, serve-time partitions are folded in index order
        with the deterministic merge, and the tree adopts journaled
        node summaries — so two registries warmed from the same journal
        prefix are indistinguishable.
        """
        base = state.cells.get(cell_id)
        base_partitions = base.partitions if base is not None else 0
        by_partition = state.partitions.get(cell_id, {})
        prefix = 0
        while prefix in by_partition:
            prefix += 1
        self.gaps_skipped += max(0, len(by_partition) - prefix)
        tree = self._make_tree(cell_id, state.tree_nodes.get(cell_id))
        model = base
        for index in range(prefix):
            message = by_partition[index]
            tree.offer(message)
            if index >= base_partitions:
                model = fold_summary(
                    model,
                    message.summary,
                    k=self._fold_k(model),
                    criterion=self.criterion,
                    max_iter=self.max_iter,
                    kernel=self.kernel,
                    exact=self.exact,
                )
                self.partitions_replayed += 1
        if base is not None:
            self.cells_adopted += 1
        self.nodes_preloaded += tree.nodes_preloaded
        return _CellEntry(
            cell_id=cell_id,
            model=model,
            tree=tree,
            partitions=max(prefix, base_partitions),
            updated_at=time.monotonic(),
        )

    def _make_tree(self, cell_id: str, preloaded) -> CoresetTree:
        # Every *computed* tree merge is journaled (adopted ones already
        # are), so the next warm start adopts instead of recomputing.
        def node_sink(start, count, summary, _cell=cell_id):
            self._writer().append_tree_node(_cell, start, count, summary)

        return CoresetTree(
            k=self.k,
            criterion=self.criterion,
            max_iter=self.max_iter,
            kernel=self.kernel,
            exact=self.exact,
            node_sink=node_sink,
            preloaded=preloaded,
        )

    def _fold_k(self, model: ClusterModel | None) -> int:
        if model is not None and model.k > 0:
            return model.k
        return self.k

    # -- entry access --------------------------------------------------------

    def cells(self) -> list[str]:
        """Resident cells, sorted."""
        with self._lock:
            return sorted(self._entries)

    def _entry(self, cell_id: str, create: bool = False) -> _CellEntry:
        with self._lock:
            entry = self._entries.get(cell_id)
            if entry is not None:
                return entry
            known = cell_id in self._known_cells
        if known:
            # Evicted earlier: re-warm this cell from the journal.
            state = self._read_state()
            if state is not None and (
                cell_id in state.cells or cell_id in state.partitions
            ):
                entry = self._build_entry(cell_id, state)
                with self._lock:
                    resident = self._entries.setdefault(cell_id, entry)
                self.rewarms += 1
                return resident
        if not create:
            raise UnknownCellError(
                f"cell {cell_id!r} is in neither the registry nor the journal"
            )
        entry = _CellEntry(
            cell_id=cell_id,
            model=None,
            tree=self._make_tree(cell_id, None),
            partitions=0,
            updated_at=time.monotonic(),
        )
        with self._lock:
            resident = self._entries.setdefault(cell_id, entry)
            self._known_cells.add(cell_id)
        return resident

    def _writer(self) -> JournalWriter:
        with self._lock:
            if self._journal is None:
                self.run_dir.mkdir(parents=True, exist_ok=True)
                self._journal = JournalWriter(
                    self.journal_path, fsync=self._fsync
                )
            return self._journal

    def _freshness(self, entry: _CellEntry) -> tuple[float, bool]:
        age = time.monotonic() - entry.updated_at
        stale = self.ttl_seconds is not None and age > self.ttl_seconds
        if stale:
            self.stale_served += 1
        return age, stale

    # -- ingest --------------------------------------------------------------

    def ingest(self, cell_id: str, points: np.ndarray) -> IngestReceipt:
        """Fold one chunk of new points into a cell, durably.

        The chunk is summarised by partial k-means (restart seeds keyed
        on ``(seed, cell, partition index)``), the summary is journaled,
        and only then is the fold applied to the hot model and the
        coreset tree — crash between journal and fold re-derives the
        fold from the journal on restart.
        """
        pts = as_points(points)
        entry = self._entry(cell_id, create=True)
        with entry.lock:
            index = entry.partitions
            fresh = partial_kmeans(
                pts,
                self._fold_k(entry.model),
                self.restarts,
                _chunk_rng(self.seed, cell_id, index),
                source=f"serve/P{index}",
                criterion=self.criterion,
                max_iter=self.max_iter,
                kernel=self.kernel,
                exact=self.exact,
            )
            fold_began = time.perf_counter()
            message = CentroidMessage(
                cell_id=cell_id,
                partition=index,
                summary=fresh.summary,
                n_partitions=0,
                partial_seconds=fresh.seconds,
            )
            self._writer().append_partition(message)
            entry.model = fold_summary(
                entry.model,
                fresh.summary,
                k=self._fold_k(entry.model),
                criterion=self.criterion,
                max_iter=self.max_iter,
                kernel=self.kernel,
                exact=self.exact,
            )
            entry.tree.offer(message)
            entry.partitions = index + 1
            entry.folds += 1
            entry.updated_at = time.monotonic()
            self.ingests += 1
            return IngestReceipt(
                cell_id=cell_id,
                partition=index,
                n_points=pts.shape[0],
                model_version=entry.partitions,
                partial_seconds=fresh.seconds,
                fold_seconds=time.perf_counter() - fold_began,
            )

    # -- queries -------------------------------------------------------------

    def _served_model(self, entry: _CellEntry) -> ClusterModel:
        model = entry.model
        if model is None or model.k == 0:
            raise ServeError(
                f"cell {entry.cell_id!r} has no populated model yet "
                "(zero-point watermark; ingest a chunk to bootstrap it)"
            )
        return model

    def assign(self, cell_id: str, points: np.ndarray) -> AssignResult:
        """Nearest-centroid assignment of ``points`` under the hot model."""
        pts = as_points(points)
        entry = self._entry(cell_id)
        with entry.lock:
            model = self._served_model(entry)
            assignments, sq_dists = assign_to_nearest(
                pts, model.centroids, kernel=self.kernel, exact=self.exact
            )
            age, stale = self._freshness(entry)
            return AssignResult(
                cell_id=cell_id,
                assignments=assignments,
                sq_dists=sq_dists,
                centroids=model.centroids[assignments].copy(),
                model_version=entry.partitions,
                stale=stale,
            )

    def summary(self, cell_id: str) -> SummaryInfo:
        """The cell's hot model plus freshness accounting."""
        entry = self._entry(cell_id)
        with entry.lock:
            model = entry.model
            if model is None:
                raise ServeError(
                    f"cell {cell_id!r} has no model yet (no chunk folded)"
                )
            age, stale = self._freshness(entry)
            return SummaryInfo(
                cell_id=cell_id,
                model=model,
                partitions=entry.partitions,
                folds=entry.folds,
                age_seconds=age,
                stale=stale,
            )

    def prefix(self, cell_id: str, upto: int | None = None) -> PrefixQuery:
        """Coreset-tree clustering of the cell's partition prefix."""
        entry = self._entry(cell_id)
        with entry.lock:
            answer = entry.tree.query_prefix(upto=upto)
            return PrefixQuery(
                cell_id=cell_id,
                start=answer.start,
                upto=answer.upto,
                model=answer.model,
                nodes_reused=answer.nodes_reused,
                merge_iterations=answer.merge_iterations,
                cached=answer.cached,
                seconds=answer.seconds,
            )

    def window(
        self, cell_id: str, last_n: int, upto: int | None = None
    ) -> PrefixQuery:
        """Coreset-tree clustering of the cell's trailing chunk window."""
        entry = self._entry(cell_id)
        with entry.lock:
            answer = entry.tree.query_window(last_n, upto=upto)
            return PrefixQuery(
                cell_id=cell_id,
                start=answer.start,
                upto=answer.upto,
                model=answer.model,
                nodes_reused=answer.nodes_reused,
                merge_iterations=answer.merge_iterations,
                cached=answer.cached,
                seconds=answer.seconds,
            )

    # -- lifecycle -----------------------------------------------------------

    def evict_idle(self, idle_seconds: float) -> list[str]:
        """Drop cells untouched for ``idle_seconds`` from memory.

        Evicted cells stay journal-backed: the next request for one
        re-warms it lazily (counted in :attr:`rewarms`), so eviction is
        a memory policy, never a data loss.
        """
        now = time.monotonic()
        evicted: list[str] = []
        with self._lock:
            for cell_id in list(self._entries):
                entry = self._entries[cell_id]
                if now - entry.updated_at >= idle_seconds:
                    del self._entries[cell_id]
                    evicted.append(cell_id)
            self.evictions += len(evicted)
        return sorted(evicted)

    def stats(self) -> dict:
        """JSON-safe registry accounting (warm start, folds, eviction)."""
        with self._lock:
            resident = len(self._entries)
            partitions = sum(e.partitions for e in self._entries.values())
        return {
            "resident_cells": resident,
            "known_cells": len(self._known_cells),
            "partitions": partitions,
            "recovery_seconds": self.recovery_seconds,
            "cells_adopted": self.cells_adopted,
            "partitions_replayed": self.partitions_replayed,
            "nodes_preloaded": self.nodes_preloaded,
            "gaps_skipped": self.gaps_skipped,
            "ingests": self.ingests,
            "stale_served": self.stale_served,
            "evictions": self.evictions,
            "rewarms": self.rewarms,
        }

    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        with self._lock:
            journal = self._journal
            self._journal = None
        if journal is not None:
            journal.close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
