"""Request micro-batching for the serving layer.

Interactive serving under load wants neither one-lock-round-trip-per-
request (throughput dies) nor unbounded queueing (latency dies).  The
middle ground is the classic micro-batch: the first waiting request
opens a window of ``max_delay_seconds``; every request arriving inside
the window joins the batch, up to ``max_batch``; the batch then closes
and is dispatched as one unit.  Requests for the same ``(op, cell)``
are grouped so the dispatcher can answer them with one model read (an
``assign`` group becomes a single pooled distance computation).

Latency cost is bounded by ``max_delay_seconds`` (default 2 ms); an
idle server dispatches a lone request after at most that delay.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

__all__ = ["PendingRequest", "RequestBatcher", "group_requests"]

#: Sentinel enqueued by :meth:`RequestBatcher.close` to wake the
#: dispatcher for shutdown.
_CLOSE = object()


@dataclass
class PendingRequest:
    """One enqueued request awaiting dispatch.

    Attributes:
        op: endpoint name (``"assign"``, ``"summary"``, ``"ingest"``, ...).
        cell: target cell id (``None`` for registry-level ops).
        payload: endpoint-specific arguments.
        future: resolved with the endpoint's answer (or its exception).
        enqueued_at: perf-counter timestamp of submission — request
            latency and ingest update lag are both measured from here.
    """

    op: str
    cell: str | None
    payload: dict
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)


class RequestBatcher:
    """Thread-safe micro-batch collector.

    Args:
        max_batch: requests per batch before it closes early.
        max_delay_seconds: window a batch stays open after its first
            request arrives.
    """

    def __init__(
        self, max_batch: int = 32, max_delay_seconds: float = 0.002
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_seconds < 0:
            raise ValueError(
                f"max_delay_seconds must be >= 0, got {max_delay_seconds}"
            )
        self.max_batch = max_batch
        self.max_delay_seconds = max_delay_seconds
        self._queue: queue.Queue = queue.Queue()
        self._closed = False

    def submit(
        self, op: str, cell: str | None = None, payload: dict | None = None
    ) -> PendingRequest:
        """Enqueue one request; returns it with an unresolved future."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        request = PendingRequest(op=op, cell=cell, payload=payload or {})
        self._queue.put(request)
        return request

    def next_batch(self, timeout: float = 0.1) -> list[PendingRequest] | None:
        """Collect the next micro-batch.

        Blocks up to ``timeout`` for the first request; once one
        arrives, keeps collecting until ``max_batch`` requests are in
        hand or ``max_delay_seconds`` has passed since the first.

        Returns:
            The batch, ``None`` if nothing arrived within ``timeout``,
            or ``[]`` once the batcher has been closed and drained.
        """
        try:
            first = self._queue.get(timeout=timeout)
        except queue.Empty:
            return [] if self._closed else None
        if first is _CLOSE:
            return []
        batch = [first]
        deadline = time.perf_counter() + self.max_delay_seconds
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                request = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if request is _CLOSE:
                break
            batch.append(request)
        return batch

    def close(self) -> None:
        """Stop accepting requests and wake the dispatcher (idempotent)."""
        if not self._closed:
            self._closed = True
            self._queue.put(_CLOSE)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def depth(self) -> int:
        """Requests currently queued (approximate)."""
        return self._queue.qsize()


def group_requests(
    batch: list[PendingRequest],
) -> list[tuple[tuple[str, str | None], list[PendingRequest]]]:
    """Group a batch by ``(op, cell)``, preserving first-arrival order.

    Within a group, requests keep their arrival order — the ingest
    endpoint's per-cell ordering guarantee rests on this plus the
    dispatcher applying ingest groups inline.
    """
    groups: dict[tuple[str, str | None], list[PendingRequest]] = {}
    order: list[tuple[str, str | None]] = []
    for request in batch:
        key = (request.op, request.cell)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(request)
    return [(key, groups[key]) for key in order]
