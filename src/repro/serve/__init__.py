"""Always-on clustering service: warm models, async serving, load gen.

The batch engine answers one :class:`~repro.stream.query.Query` per
process and exits; this package keeps the answers *resident*.  A
:class:`~repro.serve.registry.ModelRegistry` holds every cell's
:class:`~repro.core.model.ClusterModel` and
:class:`~repro.stream.coreset.CoresetTree` hot in memory — warm-started
from the run's ``.rjl`` journal, folded forward chunk by chunk via
:mod:`repro.core.incremental` — and a
:class:`~repro.serve.server.ClusterServer` answers ``assign`` /
``nearest`` / ``summary`` / ``prefix`` / ``window`` queries over it at
interactive latency with request micro-batching.

See ``docs/serving.md`` for the warm-start contract and the
staleness/TTL semantics.
"""

from repro.serve.batching import PendingRequest, RequestBatcher, group_requests
from repro.serve.loadgen import LoadGenerator, LoadReport
from repro.serve.registry import (
    AssignResult,
    IngestReceipt,
    ModelRegistry,
    ServeError,
    SummaryInfo,
    UnknownCellError,
)
from repro.serve.server import ClusterServer

__all__ = [
    "ModelRegistry",
    "ClusterServer",
    "LoadGenerator",
    "LoadReport",
    "RequestBatcher",
    "PendingRequest",
    "group_requests",
    "AssignResult",
    "SummaryInfo",
    "IngestReceipt",
    "ServeError",
    "UnknownCellError",
]
