"""Async clustering server over a warm :class:`ModelRegistry`.

:class:`ClusterServer` is the long-lived serving loop: client threads
submit requests and receive futures; a dispatcher thread drains the
:class:`~repro.serve.batching.RequestBatcher`, groups each micro-batch
by ``(endpoint, cell)`` and answers groups with single registry calls —
an ``assign`` group for one cell costs one pooled distance computation
regardless of how many clients are in it.

Ordering and consistency:

* **ingest** groups are applied inline on the dispatcher thread, in
  arrival order — per-cell fold order (and therefore the journal, and
  therefore the warm-restart bits) never depends on scheduling;
* **query** groups run on a small thread pool, so slow queries for one
  cell do not convoy cheap queries for another;
* every response is computed under the cell's lock against a single
  model version — a batch never observes a half-applied fold.

Endpoint latencies (measured enqueue-to-answer, the number a client
feels) and ingest update lag flow into
:class:`~repro.stream.metrics.ServingMetrics`, exportable as JSON via
:func:`repro.stream.tracing.dump_serving_json`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np

from repro.core.model import as_points
from repro.serve.batching import PendingRequest, RequestBatcher, group_requests
from repro.serve.registry import AssignResult, ModelRegistry, ServeError
from repro.stream.metrics import ServingMetrics

__all__ = ["ClusterServer"]

#: Endpoints answered by the server, in documentation order.
ENDPOINTS = (
    "assign",
    "nearest",
    "summary",
    "prefix",
    "window",
    "ingest",
    "cells",
    "stats",
)


class ClusterServer:
    """Micro-batched request server over one :class:`ModelRegistry`.

    Args:
        registry: the warm model registry to serve.
        max_batch: requests per micro-batch before early dispatch.
        max_delay_seconds: micro-batch collection window (the bounded
            latency cost of batching).
        query_workers: threads answering query groups concurrently
            (``0`` answers everything inline on the dispatcher thread —
            fully deterministic scheduling, for tests).

    Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 32,
        max_delay_seconds: float = 0.002,
        query_workers: int = 2,
    ) -> None:
        if query_workers < 0:
            raise ValueError(
                f"query_workers must be >= 0, got {query_workers}"
            )
        self.registry = registry
        self.metrics = ServingMetrics()
        self._batcher = RequestBatcher(
            max_batch=max_batch, max_delay_seconds=max_delay_seconds
        )
        self._query_workers = query_workers
        self._pool: ThreadPoolExecutor | None = None
        self._dispatcher: threading.Thread | None = None
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ClusterServer":
        """Start the dispatcher (idempotent)."""
        if self._started:
            return self
        self._started = True
        if self._query_workers:
            self._pool = ThreadPoolExecutor(
                max_workers=self._query_workers,
                thread_name_prefix="serve-query",
            )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        return self

    def close(self) -> None:
        """Drain in-flight requests, stop threads, close the registry."""
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=30.0)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self.registry.close()

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def submit(
        self, op: str, cell: str | None = None, **payload
    ) -> Future:
        """Enqueue one request; the future resolves with the answer."""
        if not self._started or self._closed:
            raise RuntimeError("server is not running")
        if op not in ENDPOINTS:
            raise ValueError(
                f"unknown endpoint {op!r}; valid: {', '.join(ENDPOINTS)}"
            )
        return self._batcher.submit(op, cell, payload).future

    # Synchronous conveniences: submit + wait.

    def assign(self, cell: str, points) -> AssignResult:
        """Nearest-centroid assignment for ``points`` of ``cell``."""
        return self.submit("assign", cell, points=points).result()

    def nearest(self, cell: str, points) -> AssignResult:
        """Alias of :meth:`assign` that callers use for the centroid
        coordinates rather than the indices."""
        return self.submit("nearest", cell, points=points).result()

    def summary(self, cell: str):
        """The cell's hot model summary."""
        return self.submit("summary", cell).result()

    def prefix(self, cell: str, upto: int | None = None):
        """Coreset-tree prefix clustering of the cell."""
        return self.submit("prefix", cell, upto=upto).result()

    def window(self, cell: str, last_n: int, upto: int | None = None):
        """Coreset-tree trailing-window clustering of the cell."""
        return self.submit("window", cell, last_n=last_n, upto=upto).result()

    def ingest(self, cell: str, points):
        """Fold a chunk of new points into the cell (durable, ordered)."""
        return self.submit("ingest", cell, points=points).result()

    def stats(self) -> dict:
        """Registry + serving counters."""
        return self.submit("stats").result()

    def cells(self) -> list[str]:
        """Resident cells."""
        return self.submit("cells").result()

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._batcher.next_batch(timeout=0.05)
            if batch is None:
                continue
            if not batch:
                return
            try:
                for (op, cell), group in group_requests(batch):
                    self.metrics.record_batch(op, len(group))
                    if op == "ingest" or self._pool is None:
                        self._run_group(op, cell, group)
                    else:
                        self._pool.submit(self._run_group, op, cell, group)
            except BaseException as exc:  # pragma: no cover - defensive
                # The dispatcher must never die with futures in hand:
                # a hung client is strictly worse than a failed request.
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _run_group(
        self, op: str, cell: str | None, group: list[PendingRequest]
    ) -> None:
        try:
            if op in ("assign", "nearest") and len(group) > 1:
                self._run_pooled_assign(cell, group)
            else:
                for request in group:
                    self._answer(request, self._execute)
        except BaseException as exc:  # pragma: no cover - defensive
            for request in group:
                if not request.future.done():
                    request.future.set_exception(exc)

    def _answer(self, request: PendingRequest, runner) -> None:
        try:
            result = runner(request)
        except Exception as exc:
            self.metrics.record(
                request.op,
                time.perf_counter() - request.enqueued_at,
                error=True,
            )
            request.future.set_exception(exc)
        else:
            items = result[1] if isinstance(result, tuple) else 1
            value = result[0] if isinstance(result, tuple) else result
            self.metrics.record(
                request.op,
                time.perf_counter() - request.enqueued_at,
                items=items,
            )
            request.future.set_result(value)

    def _execute(self, request: PendingRequest):
        registry = self.registry
        op, cell, payload = request.op, request.cell, request.payload
        if op in ("assign", "nearest"):
            points = np.asarray(payload["points"], dtype=np.float64)
            result = registry.assign(cell, points)
            return result, result.assignments.shape[0]
        if op == "summary":
            return registry.summary(cell)
        if op == "prefix":
            return registry.prefix(cell, upto=payload.get("upto"))
        if op == "window":
            return registry.window(
                cell, payload["last_n"], upto=payload.get("upto")
            )
        if op == "ingest":
            points = np.asarray(payload["points"], dtype=np.float64)
            receipt = registry.ingest(cell, points)
            self.metrics.record_update_lag(
                time.perf_counter() - request.enqueued_at,
                items=receipt.n_points,
            )
            return receipt, receipt.n_points
        if op == "stats":
            payload = dict(registry.stats())
            payload["serving"] = self.metrics.snapshot()
            return payload
        if op == "cells":
            return registry.cells()
        raise ServeError(f"unknown endpoint {op!r}")

    def _run_pooled_assign(
        self, cell: str, group: list[PendingRequest]
    ) -> None:
        """Answer a same-cell assign group with one distance computation."""
        arrays = []
        try:
            for request in group:
                arrays.append(as_points(request.payload["points"]))
            if len({a.shape[1] for a in arrays}) != 1:
                raise ValueError("mixed dimensionality in assign batch")
        except Exception:
            # A malformed member must not poison the batch: fall back to
            # per-request answering so the bad request alone fails.
            for request in group:
                self._answer(request, self._execute)
            return
        offsets = [0]
        for array in arrays:
            offsets.append(offsets[-1] + array.shape[0])
        try:
            pooled = self.registry.assign(cell, np.vstack(arrays))
        except Exception as exc:
            now = time.perf_counter()
            for request in group:
                self.metrics.record(
                    request.op, now - request.enqueued_at, error=True
                )
                request.future.set_exception(exc)
            return
        now = time.perf_counter()
        for index, request in enumerate(group):
            lo, hi = offsets[index], offsets[index + 1]
            sliced = AssignResult(
                cell_id=pooled.cell_id,
                assignments=pooled.assignments[lo:hi],
                sq_dists=pooled.sq_dists[lo:hi],
                centroids=pooled.centroids[lo:hi],
                model_version=pooled.model_version,
                stale=pooled.stale,
            )
            self.metrics.record(
                request.op,
                now - request.enqueued_at,
                items=hi - lo,
            )
            request.future.set_result(sliced)
