"""Satellite-swath simulator.

MISR collects data in "stripes" as the instrument flies pole-to-pole while
the Earth rotates underneath (paper Figure 1); a grid cell's points end up
scattered across many swath files.  This module simulates that acquisition
geometry so the scan stage has realistic input:

* :class:`SwathSimulator` flies a polar orbiter; each orbit yields a
  :class:`SwathStripe` of footprints (lat, lon, measurement vector).
* :func:`bin_stripes_into_buckets` replays the paper's one-pass
  preprocessing: scan all stripes once, sorting footprints into per-cell
  :class:`~repro.data.gridcell.GridBucket` accumulators.

Measurements are drawn from a per-cell Gaussian mixture (the same model as
:mod:`repro.data.generator`), cached per cell so that every footprint
landing in a cell shares the cell's distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.generator import (
    MISR_DIM,
    MisrCellDistribution,
    random_cell_distribution,
)
from repro.data.gridcell import GridBucket, GridCellId

__all__ = ["SwathStripe", "SwathSimulator", "bin_stripes_into_buckets"]

_EARTH_ROTATION_DEG_PER_MIN = 360.0 / (24.0 * 60.0)


@dataclass(frozen=True)
class SwathStripe:
    """One orbit's worth of footprints.

    Attributes:
        orbit: orbit number.
        lats: ``(m,)`` footprint latitudes in degrees.
        lons: ``(m,)`` footprint longitudes in degrees.
        measurements: ``(m, d)`` measurement vectors.
    """

    orbit: int
    lats: np.ndarray
    lons: np.ndarray
    measurements: np.ndarray

    @property
    def n_footprints(self) -> int:
        """Number of footprints in the stripe."""
        return self.lats.shape[0]


@dataclass
class SwathSimulator:
    """Simulates a polar orbiter's ground coverage.

    The satellite descends from +90° to -90° latitude each half-orbit; the
    ascending node drifts westward with Earth rotation, so successive
    orbits cover adjacent stripes and, over enough orbits, the full globe —
    matching MISR's 2-to-14-day global coverage cadence.

    Args:
        swath_width_deg: cross-track swath width in degrees of longitude.
        footprints_per_orbit: samples taken along one orbit.
        samples_per_footprint: measurement vectors recorded per footprint
            (a MISR footprint is a multi-pixel region, so one geolocated
            footprint contributes many measurements to its cell).
        orbit_minutes: orbital period (drives the stripe-to-stripe drift).
        dim: measurement dimensionality.
        seed: determinism.
    """

    swath_width_deg: float = 6.0
    footprints_per_orbit: int = 2000
    samples_per_footprint: int = 1
    orbit_minutes: float = 98.0
    dim: int = MISR_DIM
    seed: int = 0
    _distributions: dict[GridCellId, MisrCellDistribution] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.swath_width_deg <= 0:
            raise ValueError("swath_width_deg must be positive")
        if self.footprints_per_orbit < 1:
            raise ValueError("footprints_per_orbit must be >= 1")
        if self.samples_per_footprint < 1:
            raise ValueError("samples_per_footprint must be >= 1")
        self._rng = np.random.default_rng(self.seed)

    def _cell_distribution(self, cell: GridCellId) -> MisrCellDistribution:
        """Per-cell mixture, created lazily and cached for consistency."""
        if cell not in self._distributions:
            cell_rng = np.random.default_rng(
                (self.seed, cell.lat + 90, cell.lon + 180)
            )
            self._distributions[cell] = random_cell_distribution(
                cell_rng, dim=self.dim
            )
        return self._distributions[cell]

    def fly(self, n_orbits: int) -> Iterator[SwathStripe]:
        """Yield one :class:`SwathStripe` per orbit.

        Args:
            n_orbits: orbits to simulate.
        """
        if n_orbits < 1:
            raise ValueError(f"n_orbits must be >= 1, got {n_orbits}")
        drift_per_orbit = self.orbit_minutes * _EARTH_ROTATION_DEG_PER_MIN
        for orbit in range(n_orbits):
            fraction = np.linspace(0.0, 1.0, self.footprints_per_orbit)
            # Descending pass: +90 -> -90 latitude over the half orbit.
            lats = 90.0 - 180.0 * fraction
            node_lon = -orbit * drift_per_orbit
            cross_track = self._rng.uniform(
                -self.swath_width_deg / 2.0,
                self.swath_width_deg / 2.0,
                size=self.footprints_per_orbit,
            )
            along_track_drift = fraction * drift_per_orbit / 2.0
            lons = ((node_lon + cross_track - along_track_drift + 180.0) % 360.0) - 180.0
            # Clamp the poles into valid cell rows.
            lats = np.clip(lats, -90.0, 89.999)

            samples = self.samples_per_footprint
            measurements = np.empty(
                (self.footprints_per_orbit * samples, self.dim)
            )
            for index in range(self.footprints_per_orbit):
                cell = GridCellId.containing(lats[index], lons[index])
                distribution = self._cell_distribution(cell)
                measurements[index * samples : (index + 1) * samples] = (
                    distribution.sample(samples, self._rng)
                )
            yield SwathStripe(
                orbit=orbit,
                lats=np.repeat(lats, samples),
                lons=np.repeat(lons, samples),
                measurements=measurements,
            )


def bin_stripes_into_buckets(
    stripes: Iterator[SwathStripe] | list[SwathStripe],
) -> dict[GridCellId, GridBucket]:
    """One-pass binning of swath stripes into per-cell grid buckets.

    Replays the paper's preprocessing assumption: "the data had been
    scanned once, and sorted into one degree latitude and one degree
    longitude grid buckets".

    Returns:
        Mapping from cell id to its (unfrozen) :class:`GridBucket`.
    """
    buckets: dict[GridCellId, GridBucket] = {}
    for stripe in stripes:
        cells = [
            GridCellId.containing(lat, lon)
            for lat, lon in zip(stripe.lats, stripe.lons)
        ]
        order = np.argsort([c.key for c in cells], kind="stable")
        sorted_cells = [cells[i] for i in order]
        sorted_measurements = stripe.measurements[order]
        start = 0
        while start < len(sorted_cells):
            end = start
            while end < len(sorted_cells) and sorted_cells[end] == sorted_cells[start]:
                end += 1
            cell = sorted_cells[start]
            bucket = buckets.setdefault(cell, GridBucket(cell_id=cell))
            bucket.append(sorted_measurements[start:end])
            start = end
    return buckets
