"""Grid-cell data model.

The paper partitions the globe into 1°×1° latitude/longitude grid cells and
clusters each cell independently.  :class:`GridCellId` names a cell by its
south-west corner; :class:`GridCell` couples an id with its measurement
points; :class:`GridBucket` is the on-disk unit (one cell's points,
accumulated across swaths, stored in random arrival order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import as_points

__all__ = ["GridCellId", "GridCell", "GridBucket"]


@dataclass(frozen=True, order=True)
class GridCellId:
    """Identifier of a 1°×1° grid cell by its south-west corner.

    Attributes:
        lat: latitude of the south edge, in degrees, ``-90 <= lat < 90``.
        lon: longitude of the west edge, in degrees, ``-180 <= lon < 180``.
    """

    lat: int
    lon: int

    def __post_init__(self) -> None:
        if not -90 <= self.lat < 90:
            raise ValueError(f"lat must be in [-90, 90), got {self.lat}")
        if not -180 <= self.lon < 180:
            raise ValueError(f"lon must be in [-180, 180), got {self.lon}")

    @staticmethod
    def containing(lat: float, lon: float) -> "GridCellId":
        """The cell containing a (lat, lon) position.

        Longitude wraps modulo 360; latitude 90.0 is clamped into the
        northernmost row.
        """
        wrapped_lon = ((lon + 180.0) % 360.0) - 180.0
        cell_lat = min(int(np.floor(lat)), 89)
        return GridCellId(lat=cell_lat, lon=int(np.floor(wrapped_lon)))

    def contains(self, lat: float, lon: float) -> bool:
        """Whether a (lat, lon) position falls inside this cell."""
        return self == GridCellId.containing(lat, lon)

    @property
    def key(self) -> str:
        """Stable string key, e.g. ``"N34E118"`` style ``"lat34lon-118"``."""
        return f"lat{self.lat}lon{self.lon}"

    @staticmethod
    def from_key(key: str) -> "GridCellId":
        """Parse a :attr:`key` string back into an id."""
        if not key.startswith("lat") or "lon" not in key:
            raise ValueError(f"malformed grid cell key: {key!r}")
        lat_text, __, lon_text = key[3:].partition("lon")
        return GridCellId(lat=int(lat_text), lon=int(lon_text))


@dataclass(frozen=True)
class GridCell:
    """One grid cell's measurement points.

    Attributes:
        cell_id: the cell's identity.
        points: ``(n, d)`` float64 array of measurement vectors.
    """

    cell_id: GridCellId
    points: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", as_points(self.points))

    @property
    def n_points(self) -> int:
        """Number of measurements in the cell."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Measurement dimensionality."""
        return self.points.shape[1]


@dataclass
class GridBucket:
    """Accumulates one cell's points as swath stripes deliver them.

    The scan stage appends stripe fragments in arrival order; the paper's
    assumption that "all data points that belong to a grid cell arrive
    sequentially, and in random order" is realised by :meth:`freeze`, which
    shuffles the accumulated points once before clustering.
    """

    cell_id: GridCellId
    _fragments: list[np.ndarray] = field(default_factory=list)

    def append(self, points: np.ndarray) -> None:
        """Add a stripe fragment of measurements for this cell."""
        self._fragments.append(as_points(points))

    @property
    def n_points(self) -> int:
        """Points accumulated so far."""
        return sum(f.shape[0] for f in self._fragments)

    def freeze(self, rng: np.random.Generator | None = None) -> GridCell:
        """Materialise the bucket as a :class:`GridCell`.

        Args:
            rng: when given, the points are shuffled (random arrival
                order); otherwise they stay in append order.

        Raises:
            ValueError: if the bucket is empty.
        """
        if not self._fragments:
            raise ValueError(f"grid bucket {self.cell_id.key} is empty")
        stacked = np.vstack(self._fragments)
        if rng is not None:
            stacked = stacked[rng.permutation(stacked.shape[0])]
        return GridCell(cell_id=self.cell_id, points=stacked)
