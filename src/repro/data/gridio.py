"""Binary grid-bucket file format.

The paper's preprocessing stores each grid cell's points "to disk as
binary files" that are "directly used as data input".  This module defines
that format and the one-pass readers the scan operator uses.

Layout (little-endian)::

    magic    4 bytes   b"GBK1"
    lat      int32     south edge of the cell
    lon      int32     west edge of the cell
    n        uint64    number of points
    dim      uint32    attributes per point
    crc32    uint32    checksum of the payload
    payload  n*dim float64, row-major

Readers validate magic, shape and checksum, so truncated or corrupted
buckets fail loudly instead of producing garbage clusters.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.model import as_points
from repro.data.gridcell import GridCell, GridCellId

__all__ = [
    "GridBucketFormatError",
    "write_bucket_file",
    "read_bucket_file",
    "read_bucket_header",
    "stream_bucket_points",
    "write_bucket_dir",
    "scan_bucket_dir",
]

_MAGIC = b"GBK1"
_HEADER = struct.Struct("<4siiQII")


class GridBucketFormatError(Exception):
    """A grid-bucket file is malformed, truncated, or corrupted."""


def write_bucket_file(path: str | Path, cell: GridCell) -> Path:
    """Write one grid cell to a bucket file.

    Returns:
        The written path.
    """
    target = Path(path)
    points = np.ascontiguousarray(cell.points, dtype="<f8")
    payload = points.tobytes()
    header = _HEADER.pack(
        _MAGIC,
        cell.cell_id.lat,
        cell.cell_id.lon,
        points.shape[0],
        points.shape[1],
        zlib.crc32(payload),
    )
    with open(target, "wb") as handle:
        handle.write(header)
        handle.write(payload)
    return target


def read_bucket_header(path: str | Path) -> tuple[GridCellId, int, int]:
    """Read only the header: ``(cell_id, n_points, dim)``.

    Lets the planner size partitions without touching the payload.  The
    file size is validated against the header's declared shape, so a
    truncated payload fails loudly here — before any work is scheduled
    against the bucket — instead of at the end of a streaming read.
    """
    with open(path, "rb") as handle:
        raw = handle.read(_HEADER.size)
        file_size = os.fstat(handle.fileno()).st_size
    if len(raw) != _HEADER.size:
        raise GridBucketFormatError(f"{path}: truncated header")
    magic, lat, lon, n_points, dim, __ = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise GridBucketFormatError(f"{path}: bad magic {magic!r}")
    if n_points < 1 or dim < 1:
        raise GridBucketFormatError(f"{path}: empty bucket (n={n_points}, d={dim})")
    expected_size = _HEADER.size + n_points * dim * 8
    if file_size != expected_size:
        raise GridBucketFormatError(
            f"{path}: file is {file_size} bytes, header declares "
            f"{n_points}x{dim} points ({expected_size} bytes) — "
            "truncated payload or trailing garbage"
        )
    return GridCellId(lat=lat, lon=lon), n_points, dim


def read_bucket_file(path: str | Path) -> GridCell:
    """Read a whole bucket file, verifying its checksum."""
    cell_id, n_points, dim = read_bucket_header(path)
    with open(path, "rb") as handle:
        handle.seek(_HEADER.size - 4)
        (crc_expected,) = struct.unpack("<I", handle.read(4))
        payload = handle.read()
    expected_bytes = n_points * dim * 8
    if len(payload) != expected_bytes:
        raise GridBucketFormatError(
            f"{path}: payload is {len(payload)} bytes, expected {expected_bytes}"
        )
    if zlib.crc32(payload) != crc_expected:
        raise GridBucketFormatError(f"{path}: checksum mismatch")
    points = np.frombuffer(payload, dtype="<f8").reshape(n_points, dim)
    return GridCell(cell_id=cell_id, points=as_points(points))


def stream_bucket_points(
    path: str | Path, chunk_points: int
) -> Iterator[np.ndarray]:
    """One-pass streaming read: yield ``(<=chunk_points, dim)`` arrays.

    This is the scan operator's memory-bounded access path — the file is
    never loaded whole, honouring the "each data item is scanned only
    once" and "limited state" stream restrictions.  The checksum cannot be
    verified incrementally per chunk, so it is accumulated and checked at
    end of stream.
    """
    if chunk_points < 1:
        raise ValueError(f"chunk_points must be >= 1, got {chunk_points}")
    cell_id, n_points, dim = read_bucket_header(path)
    del cell_id
    row_bytes = dim * 8
    crc_running = 0
    with open(path, "rb") as handle:
        handle.seek(_HEADER.size - 4)
        (crc_expected,) = struct.unpack("<I", handle.read(4))
        remaining = n_points
        while remaining > 0:
            take = min(chunk_points, remaining)
            raw = handle.read(take * row_bytes)
            if len(raw) != take * row_bytes:
                raise GridBucketFormatError(f"{path}: truncated payload")
            crc_running = zlib.crc32(raw, crc_running)
            yield np.frombuffer(raw, dtype="<f8").reshape(take, dim).copy()
            remaining -= take
    if crc_running != crc_expected:
        raise GridBucketFormatError(f"{path}: checksum mismatch")


def write_bucket_dir(
    directory: str | Path, cells: list[GridCell]
) -> list[Path]:
    """Write each cell as ``<key>.gbk`` under ``directory``.

    Returns:
        Written paths in cell order.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    return [
        write_bucket_file(root / f"{cell.cell_id.key}.gbk", cell) for cell in cells
    ]


def scan_bucket_dir(directory: str | Path) -> Iterator[GridCell]:
    """Yield every bucket in ``directory`` (sorted by filename)."""
    root = Path(directory)
    for path in sorted(root.glob("*.gbk")):
        yield read_bucket_file(path)
