"""Data-quality screening for incoming swath stripes.

Real instrument streams carry junk: saturated detectors produce
non-finite radiances, geolocation glitches put footprints off the
planet, and stuck pixels repeat one value thousands of times.  A
production ingest pipeline screens stripes before binning; this module
is that screen.

:func:`scrub_stripe` drops unusable samples and reports what it did;
:func:`scrub_stripes` wraps a whole stream, accumulating a
:class:`QualityLedger` for monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.swath import SwathStripe

__all__ = ["StripeQualityReport", "QualityLedger", "scrub_stripe", "scrub_stripes"]


@dataclass(frozen=True)
class StripeQualityReport:
    """What the screen removed from one stripe.

    Attributes:
        orbit: stripe identity.
        samples_in: samples before screening.
        samples_out: samples kept.
        dropped_nonfinite: rows with NaN/inf measurements.
        dropped_geolocation: rows with coordinates off the valid ranges.
    """

    orbit: int
    samples_in: int
    samples_out: int
    dropped_nonfinite: int
    dropped_geolocation: int

    @property
    def kept_fraction(self) -> float:
        if self.samples_in == 0:
            return 1.0
        return self.samples_out / self.samples_in


@dataclass
class QualityLedger:
    """Accumulated screening statistics across a stream."""

    reports: list[StripeQualityReport] = field(default_factory=list)

    @property
    def samples_in(self) -> int:
        return sum(r.samples_in for r in self.reports)

    @property
    def samples_out(self) -> int:
        return sum(r.samples_out for r in self.reports)

    @property
    def dropped(self) -> int:
        return self.samples_in - self.samples_out

    def summary(self) -> str:
        """One-line ledger for logs."""
        return (
            f"{len(self.reports)} stripes screened: "
            f"{self.samples_out}/{self.samples_in} samples kept "
            f"({self.dropped} dropped)"
        )


def scrub_stripe(stripe: SwathStripe) -> tuple[SwathStripe | None, StripeQualityReport]:
    """Screen one stripe.

    Drops rows whose measurements are non-finite or whose coordinates
    fall outside ``[-90, 90) x [-180, 180)``.

    Returns:
        ``(clean_stripe, report)``; ``clean_stripe`` is ``None`` when
        nothing survives.
    """
    n = stripe.measurements.shape[0]
    finite = np.isfinite(stripe.measurements).all(axis=1)
    coords_ok = (
        (stripe.lats >= -90.0)
        & (stripe.lats < 90.0)
        & (stripe.lons >= -180.0)
        & (stripe.lons < 180.0)
        & np.isfinite(stripe.lats)
        & np.isfinite(stripe.lons)
    )
    keep = finite & coords_ok
    report = StripeQualityReport(
        orbit=stripe.orbit,
        samples_in=n,
        samples_out=int(keep.sum()),
        dropped_nonfinite=int((~finite).sum()),
        dropped_geolocation=int((finite & ~coords_ok).sum()),
    )
    if not keep.any():
        return None, report
    if keep.all():
        return stripe, report
    clean = SwathStripe(
        orbit=stripe.orbit,
        lats=stripe.lats[keep],
        lons=stripe.lons[keep],
        measurements=stripe.measurements[keep],
    )
    return clean, report


def scrub_stripes(
    stripes: Iterator[SwathStripe] | list[SwathStripe],
    ledger: QualityLedger | None = None,
) -> Iterator[SwathStripe]:
    """Screen a stripe stream, yielding only clean stripes.

    Args:
        stripes: incoming stripes.
        ledger: when given, screening reports are appended to it.
    """
    for stripe in stripes:
        clean, report = scrub_stripe(stripe)
        if ledger is not None:
            ledger.reports.append(report)
        if clean is not None:
            yield clean
