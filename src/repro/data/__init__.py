"""Data substrate: grid cells, synthetic MISR data, swaths, IO, slicing.

* :mod:`~repro.data.gridcell` — 1°×1° cell model and buckets.
* :mod:`~repro.data.generator` — seeded Gaussian-mixture cell data.
* :mod:`~repro.data.swath` — satellite-swath acquisition simulator.
* :mod:`~repro.data.gridio` — binary grid-bucket file format.
* :mod:`~repro.data.partitioning` — random / spatial / salami slicing.
* :mod:`~repro.data.datasets` — the paper's experiment workloads.
"""

from repro.data.datasets import (
    PAPER_CELL_SIZES,
    PAPER_K,
    PAPER_RESTARTS,
    PAPER_SPLITS,
    PAPER_VERSIONS,
    ExperimentCell,
    build_paper_cells,
    scaled_sizes,
)
from repro.data.generator import (
    MISR_DIM,
    ComponentSpec,
    MisrCellDistribution,
    generate_cell_points,
    generate_versions,
    random_cell_distribution,
)
from repro.data.gridcell import GridBucket, GridCell, GridCellId
from repro.data.gridio import (
    GridBucketFormatError,
    read_bucket_file,
    read_bucket_header,
    scan_bucket_dir,
    stream_bucket_points,
    write_bucket_dir,
    write_bucket_file,
)
from repro.data.partitioning import (
    Partitioner,
    RandomPartitioner,
    SalamiPartitioner,
    SpatialPartitioner,
    make_partitioner,
)
from repro.data.swath import SwathSimulator, SwathStripe, bin_stripes_into_buckets
from repro.data.quality import (
    QualityLedger,
    StripeQualityReport,
    scrub_stripe,
    scrub_stripes,
)
from repro.data.workloads import MonthlyWorkload, build_monthly_workload
from repro.data.swathio import (
    SwathFileError,
    bin_granules_into_buckets,
    read_swath_stripes,
    scan_granules,
    swath_directory,
    write_granules,
    write_swath_file,
)

__all__ = [
    "PAPER_CELL_SIZES",
    "PAPER_K",
    "PAPER_RESTARTS",
    "PAPER_SPLITS",
    "PAPER_VERSIONS",
    "ExperimentCell",
    "build_paper_cells",
    "scaled_sizes",
    "MISR_DIM",
    "ComponentSpec",
    "MisrCellDistribution",
    "generate_cell_points",
    "generate_versions",
    "random_cell_distribution",
    "GridBucket",
    "GridCell",
    "GridCellId",
    "GridBucketFormatError",
    "read_bucket_file",
    "read_bucket_header",
    "scan_bucket_dir",
    "stream_bucket_points",
    "write_bucket_dir",
    "write_bucket_file",
    "Partitioner",
    "RandomPartitioner",
    "SalamiPartitioner",
    "SpatialPartitioner",
    "make_partitioner",
    "SwathSimulator",
    "SwathStripe",
    "bin_stripes_into_buckets",
    "SwathFileError",
    "bin_granules_into_buckets",
    "read_swath_stripes",
    "scan_granules",
    "swath_directory",
    "write_granules",
    "write_swath_file",
    "MonthlyWorkload",
    "build_monthly_workload",
    "QualityLedger",
    "StripeQualityReport",
    "scrub_stripe",
    "scrub_stripes",
]
