"""Semi-structured swath files — the HDF stand-in.

The paper's raw input is "complex, semi-structured files" holding swath
stripes; a grid cell's points are "scattered over several large files",
and scan operators read them once to sort points into grid buckets.  This
module defines that container:

Layout (little-endian)::

    magic        4 bytes  b"SWF1"
    n_stripes    uint32
    dim          uint32
    -- stripe directory: n_stripes records --
    orbit        uint32
    n_samples    uint64
    offset       uint64   (payload byte offset of this stripe)
    -- payload: per stripe --
    lats         n float64
    lons         n float64
    measurements n*dim float64 (row-major)

The directory-at-front layout permits both a full sequential scan and a
per-stripe seek, like the HDF files it stands in for.  A "granule" is one
file; a collection is a directory of granules, typically one per orbit
group, so cells genuinely span multiple files.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.data.gridcell import GridBucket, GridCellId
from repro.data.swath import SwathStripe, bin_stripes_into_buckets

__all__ = [
    "SwathFileError",
    "write_swath_file",
    "read_swath_stripes",
    "swath_directory",
    "write_granules",
    "scan_granules",
    "bin_granules_into_buckets",
]

_MAGIC = b"SWF1"
_HEADER = struct.Struct("<4sII")
_DIRENT = struct.Struct("<IQQ")


class SwathFileError(Exception):
    """A swath file is malformed or truncated."""


def write_swath_file(path: str | Path, stripes: Sequence[SwathStripe]) -> Path:
    """Write stripes to one swath granule.

    All stripes must share a dimensionality; the directory is written
    first so readers can seek per stripe.
    """
    target = Path(path)
    if not stripes:
        raise ValueError("cannot write an empty swath file")
    dims = {s.measurements.shape[1] for s in stripes}
    if len(dims) != 1:
        raise ValueError(f"stripes have mixed dimensionality: {sorted(dims)}")
    dim = dims.pop()

    payloads: list[bytes] = []
    directory: list[tuple[int, int, int]] = []
    offset = 0
    for stripe in stripes:
        n = stripe.measurements.shape[0]
        if stripe.lats.shape != (n,) or stripe.lons.shape != (n,):
            raise ValueError("stripe coordinate arrays must match measurements")
        block = (
            np.ascontiguousarray(stripe.lats, dtype="<f8").tobytes()
            + np.ascontiguousarray(stripe.lons, dtype="<f8").tobytes()
            + np.ascontiguousarray(stripe.measurements, dtype="<f8").tobytes()
        )
        directory.append((stripe.orbit, n, offset))
        payloads.append(block)
        offset += len(block)

    with open(target, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, len(stripes), dim))
        for orbit, n, stripe_offset in directory:
            handle.write(_DIRENT.pack(orbit, n, stripe_offset))
        for block in payloads:
            handle.write(block)
    return target


def swath_directory(path: str | Path) -> list[tuple[int, int]]:
    """Read only the stripe directory: ``[(orbit, n_samples), ...]``."""
    with open(path, "rb") as handle:
        raw = handle.read(_HEADER.size)
        if len(raw) != _HEADER.size:
            raise SwathFileError(f"{path}: truncated header")
        magic, n_stripes, __ = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise SwathFileError(f"{path}: bad magic {magic!r}")
        entries = []
        for __ in range(n_stripes):
            entry = handle.read(_DIRENT.size)
            if len(entry) != _DIRENT.size:
                raise SwathFileError(f"{path}: truncated directory")
            orbit, n_samples, __offset = _DIRENT.unpack(entry)
            entries.append((orbit, n_samples))
        return entries


def read_swath_stripes(path: str | Path) -> Iterator[SwathStripe]:
    """One-pass sequential read of every stripe in a granule."""
    with open(path, "rb") as handle:
        raw = handle.read(_HEADER.size)
        if len(raw) != _HEADER.size:
            raise SwathFileError(f"{path}: truncated header")
        magic, n_stripes, dim = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise SwathFileError(f"{path}: bad magic {magic!r}")
        directory = []
        for __ in range(n_stripes):
            entry = handle.read(_DIRENT.size)
            if len(entry) != _DIRENT.size:
                raise SwathFileError(f"{path}: truncated directory")
            directory.append(_DIRENT.unpack(entry))
        for orbit, n_samples, __offset in directory:
            coord_bytes = n_samples * 8
            block = handle.read(coord_bytes * 2 + n_samples * dim * 8)
            if len(block) != coord_bytes * 2 + n_samples * dim * 8:
                raise SwathFileError(f"{path}: truncated stripe payload")
            lats = np.frombuffer(block[:coord_bytes], dtype="<f8")
            lons = np.frombuffer(
                block[coord_bytes : 2 * coord_bytes], dtype="<f8"
            )
            measurements = np.frombuffer(
                block[2 * coord_bytes :], dtype="<f8"
            ).reshape(n_samples, dim)
            yield SwathStripe(
                orbit=orbit,
                lats=lats.copy(),
                lons=lons.copy(),
                measurements=measurements.copy(),
            )


def write_granules(
    directory: str | Path,
    stripes: Iterator[SwathStripe] | list[SwathStripe],
    stripes_per_granule: int = 4,
) -> list[Path]:
    """Split a stripe stream into granule files under ``directory``.

    This reproduces the paper's file layout problem: consecutive orbits go
    to the same granule, so one grid cell's points end up scattered over
    several files.
    """
    if stripes_per_granule < 1:
        raise ValueError("stripes_per_granule must be >= 1")
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    pending: list[SwathStripe] = []
    index = 0
    for stripe in stripes:
        pending.append(stripe)
        if len(pending) == stripes_per_granule:
            paths.append(
                write_swath_file(root / f"granule{index:04d}.swf", pending)
            )
            pending = []
            index += 1
    if pending:
        paths.append(write_swath_file(root / f"granule{index:04d}.swf", pending))
    return paths


def scan_granules(directory: str | Path) -> Iterator[SwathStripe]:
    """Sequentially scan every granule in a directory, once."""
    for path in sorted(Path(directory).glob("*.swf")):
        yield from read_swath_stripes(path)


def bin_granules_into_buckets(
    directory: str | Path,
) -> dict[GridCellId, GridBucket]:
    """The paper's preprocessing: one pass over all granules -> buckets."""
    return bin_stripes_into_buckets(scan_granules(directory))
