"""Partitioning ("slicing") strategies for grid cells.

The paper's experiments randomly distribute a cell's points over p chunks;
its future work (Section 6) proposes comparing that against spatially
*non-overlapping* sub-cells and a "'salami'-type slicing strategy".  All
three are implemented here so the slicing ablation benchmark can measure
their effect on merge quality:

* :class:`RandomPartitioner` — the paper's experiment setup: each chunk is
  a uniform random sample, so chunk areas overlap >90%.
* :class:`SpatialPartitioner` — non-overlapping sub-cells: points sorted
  along one attribute (or a spatial coordinate) and cut into contiguous
  ranges; each chunk sees only part of the space, losing cross-chunk
  locality.
* :class:`SalamiPartitioner` — thin interleaved slices: point ``i`` goes
  to chunk ``i mod p``; a deterministic, maximally overlapping split.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import as_points

__all__ = [
    "Partitioner",
    "RandomPartitioner",
    "SpatialPartitioner",
    "SalamiPartitioner",
    "make_partitioner",
]


def _check_split(n_points: int, n_chunks: int) -> None:
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if n_chunks > n_points:
        raise ValueError(f"cannot split {n_points} points into {n_chunks} chunks")


class Partitioner:
    """Interface: split a cell's points into chunks for partial k-means."""

    name = "abstract"

    def split(self, points: np.ndarray, n_chunks: int) -> list[np.ndarray]:
        """Return ``n_chunks`` arrays that partition ``points``."""
        raise NotImplementedError


class RandomPartitioner(Partitioner):
    """The paper's split: random equal-sized chunks (areas overlap >90%).

    Args:
        seed: determinism for the random assignment.
    """

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        self._rng = np.random.default_rng(seed)

    def split(self, points: np.ndarray, n_chunks: int) -> list[np.ndarray]:
        pts = as_points(points)
        _check_split(pts.shape[0], n_chunks)
        perm = self._rng.permutation(pts.shape[0])
        return [pts[idx] for idx in np.array_split(perm, n_chunks)]


class SpatialPartitioner(Partitioner):
    """Non-overlapping sub-cells: contiguous ranges along one axis.

    Args:
        axis: attribute index to sort along (a proxy for a spatial
            coordinate within the cell).
    """

    name = "spatial"

    def __init__(self, axis: int = 0) -> None:
        if axis < 0:
            raise ValueError(f"axis must be >= 0, got {axis}")
        self.axis = axis

    def split(self, points: np.ndarray, n_chunks: int) -> list[np.ndarray]:
        pts = as_points(points)
        _check_split(pts.shape[0], n_chunks)
        if self.axis >= pts.shape[1]:
            raise ValueError(
                f"axis {self.axis} out of range for dimensionality {pts.shape[1]}"
            )
        order = np.argsort(pts[:, self.axis], kind="stable")
        return [pts[idx] for idx in np.array_split(order, n_chunks)]


class SalamiPartitioner(Partitioner):
    """Thin interleaved slices: point ``i`` goes to chunk ``i mod p``."""

    name = "salami"

    def split(self, points: np.ndarray, n_chunks: int) -> list[np.ndarray]:
        pts = as_points(points)
        _check_split(pts.shape[0], n_chunks)
        return [pts[start::n_chunks] for start in range(n_chunks)]


def make_partitioner(name: str, seed: int | None = None) -> Partitioner:
    """Build a partitioner by name (``random``, ``spatial``, ``salami``)."""
    if name == "random":
        return RandomPartitioner(seed=seed)
    if name == "spatial":
        return SpatialPartitioner()
    if name == "salami":
        return SalamiPartitioner()
    raise ValueError(
        f"unknown partitioner {name!r}; expected 'random', 'spatial' or 'salami'"
    )
