"""Synthetic MISR-like grid-cell data.

The paper's experiments use data "recreated with the R statistical package
... with the same distribution" as 1°×1° MISR grid cells: 6 attributes per
point, between 250 and 75,000 points per cell.  Real MISR radiances are
multi-modal (clouds, ocean, land, aerosol regimes) with correlated
channels, so the faithful synthetic equivalent is a Gaussian mixture with
anisotropic, correlated components — which is what
:class:`MisrCellDistribution` draws from.

Every generator here is fully seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MISR_DIM",
    "ComponentSpec",
    "MisrCellDistribution",
    "random_cell_distribution",
    "generate_cell_points",
    "generate_versions",
]

#: The paper's fixed dimensionality: six attributes per measurement.
MISR_DIM = 6


@dataclass(frozen=True)
class ComponentSpec:
    """One Gaussian mixture component.

    Attributes:
        mean: ``(d,)`` component mean.
        cov: ``(d, d)`` positive-definite covariance.
        weight: mixing proportion (normalised across the distribution).
    """

    mean: np.ndarray
    cov: np.ndarray
    weight: float

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=np.float64)
        cov = np.asarray(self.cov, dtype=np.float64)
        if mean.ndim != 1:
            raise ValueError("component mean must be 1-dimensional")
        if cov.shape != (mean.size, mean.size):
            raise ValueError(
                f"cov shape {cov.shape} does not match mean size {mean.size}"
            )
        if self.weight <= 0:
            raise ValueError(f"component weight must be positive, got {self.weight}")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "cov", cov)


@dataclass(frozen=True)
class MisrCellDistribution:
    """A grid cell's point distribution: a Gaussian mixture.

    Attributes:
        components: the mixture components.
    """

    components: tuple[ComponentSpec, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("distribution needs at least one component")
        dims = {c.mean.size for c in self.components}
        if len(dims) != 1:
            raise ValueError(f"components have mixed dimensionality: {sorted(dims)}")

    @property
    def dim(self) -> int:
        """Dimensionality of the distribution."""
        return self.components[0].mean.size

    @property
    def n_components(self) -> int:
        """Number of mixture components."""
        return len(self.components)

    def mixture_weights(self) -> np.ndarray:
        """Normalised mixing proportions, shape ``(n_components,)``."""
        raw = np.array([c.weight for c in self.components], dtype=np.float64)
        return raw / raw.sum()

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points from the mixture.

        Component counts are drawn multinomially, then each component's
        points are sampled from its multivariate normal; the result is
        shuffled so arrival order carries no cluster signal.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        counts = rng.multinomial(n, self.mixture_weights())
        blocks = []
        for component, count in zip(self.components, counts):
            if count == 0:
                continue
            blocks.append(
                rng.multivariate_normal(
                    component.mean, component.cov, size=count, method="cholesky"
                )
            )
        points = np.vstack(blocks)
        return points[rng.permutation(points.shape[0])]


def _random_covariance(
    dim: int, rng: np.random.Generator, scale: float
) -> np.ndarray:
    """A random positive-definite covariance with correlated axes."""
    basis = rng.normal(size=(dim, dim))
    q, __ = np.linalg.qr(basis)
    eigenvalues = rng.uniform(0.2, 1.0, size=dim) * scale**2
    return (q * eigenvalues) @ q.T


def random_cell_distribution(
    rng: np.random.Generator,
    dim: int = MISR_DIM,
    n_components: int | None = None,
    spread: float = 10.0,
    scale: float = 1.0,
) -> MisrCellDistribution:
    """Draw a random MISR-like cell distribution.

    Args:
        rng: source of randomness.
        dim: attribute count (paper: 6).
        n_components: mixture size; default draws 8-20 components, in the
            ballpark of the physical regimes a k=40 codebook summarises.
        spread: standard deviation of component means around the origin.
        scale: typical within-component standard deviation.

    Returns:
        A :class:`MisrCellDistribution`.
    """
    if n_components is None:
        n_components = int(rng.integers(8, 21))
    if n_components < 1:
        raise ValueError(f"n_components must be >= 1, got {n_components}")
    components = tuple(
        ComponentSpec(
            mean=rng.normal(scale=spread, size=dim),
            cov=_random_covariance(dim, rng, scale),
            weight=float(rng.uniform(0.5, 2.0)),
        )
        for __ in range(n_components)
    )
    return MisrCellDistribution(components=components)


def generate_cell_points(
    n_points: int,
    seed: int,
    dim: int = MISR_DIM,
    n_components: int | None = None,
) -> np.ndarray:
    """Convenience: a fresh random distribution sampled once.

    Args:
        n_points: points in the cell.
        seed: full determinism — same seed, same cell.
        dim: attribute count.
        n_components: mixture size (default: random 8-20).

    Returns:
        ``(n_points, dim)`` float64 array.
    """
    rng = np.random.default_rng(seed)
    distribution = random_cell_distribution(rng, dim=dim, n_components=n_components)
    return distribution.sample(n_points, rng)


def generate_versions(
    n_points: int,
    n_versions: int,
    base_seed: int,
    dim: int = MISR_DIM,
    n_components: int | None = None,
) -> list[np.ndarray]:
    """The paper's "5 different versions for each configuration".

    Each version shares the *configuration* (n_points, dim) but draws a
    fresh distribution and sample, exactly as regenerating with new R
    seeds would.
    """
    if n_versions < 1:
        raise ValueError(f"n_versions must be >= 1, got {n_versions}")
    return [
        generate_cell_points(
            n_points, seed=base_seed + version, dim=dim, n_components=n_components
        )
        for version in range(n_versions)
    ]
