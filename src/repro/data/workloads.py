"""Realistic multi-cell workloads.

The paper's production setting is not one cell but 64,800 of them with
wildly varying population ("up to 100,000 data points" per cell, many
nearly empty).  The builders here produce that shape at configurable
scale: cell sizes drawn from a heavy-tailed lognormal (matching the
skew of real swath coverage, where polar cells are revisited far more
often than equatorial ones), each cell with its own mixture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator import MISR_DIM, generate_cell_points
from repro.data.gridcell import GridCellId

__all__ = ["MonthlyWorkload", "build_monthly_workload"]


@dataclass(frozen=True)
class MonthlyWorkload:
    """A batch of grid cells approximating one monthly summary.

    Attributes:
        cells: mapping from cell key to its points.
        cell_ids: the structured ids, parallel to ``cells``.
    """

    cells: dict[str, np.ndarray]
    cell_ids: dict[str, GridCellId]

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def total_points(self) -> int:
        return sum(points.shape[0] for points in self.cells.values())

    def size_distribution(self) -> dict[str, float]:
        """Min / median / max cell sizes (workload characterisation)."""
        sizes = np.array([p.shape[0] for p in self.cells.values()])
        return {
            "min": float(sizes.min()),
            "median": float(np.median(sizes)),
            "max": float(sizes.max()),
        }


def build_monthly_workload(
    n_cells: int = 16,
    median_points: int = 5_000,
    sigma: float = 0.8,
    max_points: int = 100_000,
    min_points: int = 50,
    dim: int = MISR_DIM,
    seed: int = 0,
) -> MonthlyWorkload:
    """Build a skewed multi-cell workload.

    Args:
        n_cells: number of populated grid cells.
        median_points: median cell population.
        sigma: lognormal shape (larger = heavier tail).
        max_points: cap matching the paper's "up to 100,000" cells.
        min_points: floor so k-means stays feasible.
        dim: attribute count.
        seed: determinism.

    Returns:
        A :class:`MonthlyWorkload` with distinct cell locations.
    """
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells}")
    if median_points < min_points:
        raise ValueError("median_points must be >= min_points")
    rng = np.random.default_rng(seed)

    sizes = np.clip(
        rng.lognormal(mean=np.log(median_points), sigma=sigma, size=n_cells),
        min_points,
        max_points,
    ).astype(int)

    # Distinct cell locations.
    locations: set[GridCellId] = set()
    while len(locations) < n_cells:
        locations.add(
            GridCellId(
                lat=int(rng.integers(-60, 60)),
                lon=int(rng.integers(-180, 180)),
            )
        )

    cells: dict[str, np.ndarray] = {}
    cell_ids: dict[str, GridCellId] = {}
    for index, (cell_id, size) in enumerate(zip(sorted(locations), sizes)):
        cells[cell_id.key] = generate_cell_points(
            int(size), seed=seed + 7_919 * (index + 1), dim=dim
        )
        cell_ids[cell_id.key] = cell_id
    return MonthlyWorkload(cells=cells, cell_ids=cell_ids)
