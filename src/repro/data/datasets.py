"""Canned experiment datasets.

Builders that assemble exactly the workloads of the paper's Section 5.1:
grid cells with 250 … 75,000 six-dimensional points, five versions per
configuration, plus smaller laptop-scale variants used by the default
benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator import MISR_DIM, generate_versions

__all__ = [
    "PAPER_CELL_SIZES",
    "PAPER_K",
    "PAPER_RESTARTS",
    "PAPER_VERSIONS",
    "PAPER_SPLITS",
    "ExperimentCell",
    "build_paper_cells",
    "scaled_sizes",
]

#: Point counts per grid cell used in the paper's experiments.  The paper's
#: Section 5.1 lists {250, 2500, 5000, 20000, 50000, 75000} but Table 2
#: reports {250, 2500, 12500, 25000, 50000, 75000}; we follow Table 2,
#: which is what the figures plot.
PAPER_CELL_SIZES = (250, 2_500, 12_500, 25_000, 50_000, 75_000)

#: The paper's fixed cluster count.
PAPER_K = 40

#: The paper's restart count ("10 different sets of initial seeds").
PAPER_RESTARTS = 10

#: Dataset versions per configuration.
PAPER_VERSIONS = 5

#: Chunk counts compared in the experiments (1 = serial).
PAPER_SPLITS = (5, 10)


@dataclass(frozen=True)
class ExperimentCell:
    """One generated grid cell instance for an experiment.

    Attributes:
        n_points: configured cell size.
        version: dataset version index (0-based).
        points: the generated ``(n_points, 6)`` array.
    """

    n_points: int
    version: int
    points: np.ndarray


def scaled_sizes(scale: float = 1.0) -> tuple[int, ...]:
    """The paper's cell sizes scaled by ``scale`` (laptop-friendly runs).

    Sizes are floored at 50 points so k=40 stays feasible.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return tuple(max(50, int(round(size * scale))) for size in PAPER_CELL_SIZES)


def build_paper_cells(
    sizes: tuple[int, ...] | None = None,
    n_versions: int = PAPER_VERSIONS,
    base_seed: int = 20040301,
    dim: int = MISR_DIM,
) -> list[ExperimentCell]:
    """Generate the experiment grid of cells.

    Args:
        sizes: cell sizes; defaults to the paper's Table 2 sizes.
        n_versions: versions per size (paper: 5).
        base_seed: determinism anchor; versions and sizes get distinct
            derived seeds.
        dim: attribute count.

    Returns:
        One :class:`ExperimentCell` per (size, version) pair, ordered by
        size then version.
    """
    chosen = sizes if sizes is not None else PAPER_CELL_SIZES
    cells: list[ExperimentCell] = []
    for size_index, n_points in enumerate(chosen):
        versions = generate_versions(
            n_points,
            n_versions,
            base_seed=base_seed + 1_000 * size_index,
            dim=dim,
        )
        for version, points in enumerate(versions):
            cells.append(
                ExperimentCell(n_points=n_points, version=version, points=points)
            )
    return cells
