"""Baselines the paper compares against (or situates itself among).

* :class:`~repro.baselines.serial.SerialKMeans` — the paper's comparator.
* :mod:`~repro.baselines.parallel_methods` — Figure 2's Methods A/B/C.
* :class:`~repro.baselines.localsearch.StreamLocalSearch` — the
  LOCALSEARCH/STREAM related work.
* :class:`~repro.baselines.birch.Birch` — CF-tree clustering.
* :class:`~repro.baselines.minibatch.MiniBatchKMeans` — modern comparator.
"""

from repro.baselines.birch import Birch, CFEntry, CFNode
from repro.baselines.clarans import Clarans
from repro.baselines.cure import Cure
from repro.baselines.localsearch import StreamLocalSearch
from repro.baselines.minibatch import MiniBatchKMeans
from repro.baselines.parallel_methods import (
    MethodCStats,
    method_a_cells_in_parallel,
    method_b_restarts_in_parallel,
    method_c_distance_partitioned,
)
from repro.baselines.serial import SerialKMeans

__all__ = [
    "Birch",
    "CFEntry",
    "CFNode",
    "Clarans",
    "Cure",
    "StreamLocalSearch",
    "MiniBatchKMeans",
    "MethodCStats",
    "method_a_cells_in_parallel",
    "method_b_restarts_in_parallel",
    "method_c_distance_partitioned",
    "SerialKMeans",
]
