"""Mini-batch k-means (Sculley 2010) — the modern streaming comparator.

Not part of the paper (it predates mini-batch k-means), but the natural
present-day point of comparison for partial/merge: a single pass of small
random batches with per-center learning-rate updates.  Included so the
benchmark suite can situate the 2004 algorithm against what a practitioner
would reach for today.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.model import ClusterModel, as_points
from repro.core.quality import mse as evaluate_mse, pairwise_sq_distances
from repro.core.seeding import distinct_random_seeds

__all__ = ["MiniBatchKMeans"]


class MiniBatchKMeans:
    """Single-pass mini-batch k-means with per-center learning rates.

    Args:
        k: number of centroids.
        batch_size: points sampled per update step.
        n_batches: update steps; ``None`` sizes it so that roughly one
            epoch of the data is consumed.
        seed: RNG seed.

    Example:
        >>> import numpy as np
        >>> from repro.baselines import MiniBatchKMeans
        >>> data = np.random.default_rng(0).normal(size=(2000, 6))
        >>> model = MiniBatchKMeans(k=10, batch_size=200, seed=0).fit(data)
        >>> model.k
        10
    """

    def __init__(
        self,
        k: int,
        batch_size: int = 256,
        n_batches: int | None = None,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.k = k
        self.batch_size = batch_size
        self.n_batches = n_batches
        self._rng = np.random.default_rng(seed)

    def fit(self, points: np.ndarray) -> ClusterModel:
        """Run the configured number of mini-batch updates."""
        pts = as_points(points)
        n = pts.shape[0]
        steps = (
            self.n_batches
            if self.n_batches is not None
            else max(1, -(-n // self.batch_size))
        )

        start = time.perf_counter()
        centroids = distinct_random_seeds(pts, self.k, self._rng)
        counts = np.zeros(centroids.shape[0], dtype=np.float64)

        for __ in range(steps):
            take = min(self.batch_size, n)
            batch = pts[self._rng.choice(n, size=take, replace=False)]
            d2 = pairwise_sq_distances(batch, centroids)
            nearest = np.argmin(d2, axis=1)
            for point, center_index in zip(batch, nearest):
                counts[center_index] += 1.0
                rate = 1.0 / counts[center_index]
                centroids[center_index] += rate * (point - centroids[center_index])
        elapsed = time.perf_counter() - start

        weights = np.maximum(counts, 1e-12)
        return ClusterModel(
            centroids=centroids,
            weights=weights,
            mse=evaluate_mse(pts, centroids),
            method="minibatch",
            total_seconds=elapsed,
            extra={"batch_size": self.batch_size, "steps": steps},
        )
