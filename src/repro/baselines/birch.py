"""BIRCH (Zhang, Ramakrishnan & Livny 1996) — CF-tree clustering baseline.

The paper cites BIRCH as the canonical database answer to the memory
bottleneck, applicable "only in a limited sense" to the per-grid-cell
setting.  A complete single-pass CF-tree is implemented here so the
benchmarks can compare its quality/time against partial/merge on identical
cells.

Clustering features (CF) are the classic triple ``(n, LS, SS)``:
point count, linear sum and squared-norm sum, which compose additively and
give centroid and radius in O(1).  Phase 1 builds the height-balanced
CF-tree with a radius ``threshold``; phase 3 (global clustering) runs
weighted k-means over the leaf entries' centroids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kmeans import DEFAULT_MAX_ITER, lloyd
from repro.core.model import ClusterModel, as_points
from repro.core.quality import mse as evaluate_mse
from repro.core.seeding import largest_weight_seeds

__all__ = ["CFEntry", "CFNode", "Birch"]


@dataclass(eq=False)
class CFEntry:
    """One clustering feature: ``(n, LS, SS)``.

    Compared by identity (``eq=False``): entries hold numpy arrays, and
    tree surgery removes entries from node lists by object identity.

    Attributes:
        n: number of points summarised.
        linear_sum: ``(d,)`` sum of the points.
        square_sum: scalar sum of squared norms.
        child: subtree summarised by this entry (``None`` in leaves).
    """

    n: float
    linear_sum: np.ndarray
    square_sum: float
    child: "CFNode | None" = None

    @staticmethod
    def of_point(point: np.ndarray) -> "CFEntry":
        """CF of a single point."""
        return CFEntry(
            n=1.0,
            linear_sum=point.astype(np.float64).copy(),
            square_sum=float(np.dot(point, point)),
        )

    @property
    def centroid(self) -> np.ndarray:
        """Centroid of the summarised points."""
        return self.linear_sum / self.n

    @property
    def radius(self) -> float:
        """RMS distance of summarised points to the centroid."""
        centroid = self.centroid
        variance = self.square_sum / self.n - float(np.dot(centroid, centroid))
        return float(np.sqrt(max(0.0, variance)))

    def absorb(self, other: "CFEntry") -> None:
        """Merge ``other`` into this CF (additivity theorem)."""
        self.n += other.n
        self.linear_sum = self.linear_sum + other.linear_sum
        self.square_sum += other.square_sum

    def merged_radius(self, other: "CFEntry") -> float:
        """Radius the union of the two CFs would have."""
        n = self.n + other.n
        ls = self.linear_sum + other.linear_sum
        ss = self.square_sum + other.square_sum
        centroid = ls / n
        variance = ss / n - float(np.dot(centroid, centroid))
        return float(np.sqrt(max(0.0, variance)))


@dataclass
class CFNode:
    """A CF-tree node holding up to ``capacity`` entries."""

    capacity: int
    is_leaf: bool
    entries: list[CFEntry] = field(default_factory=list)

    @property
    def overflowing(self) -> bool:
        """Whether the node exceeds its capacity and must split."""
        return len(self.entries) > self.capacity

    def nearest_entry(self, centroid: np.ndarray) -> CFEntry:
        """Entry whose centroid is closest to ``centroid``."""
        centroids = np.array([e.centroid for e in self.entries])
        distances = ((centroids - centroid) ** 2).sum(axis=1)
        return self.entries[int(np.argmin(distances))]

    def split(self) -> tuple["CFNode", "CFNode"]:
        """Split by farthest-pair seeding, reassigning entries by distance."""
        centroids = np.array([e.centroid for e in self.entries])
        diffs = centroids[:, None, :] - centroids[None, :, :]
        d2 = (diffs**2).sum(axis=2)
        a, b = np.unravel_index(np.argmax(d2), d2.shape)
        left = CFNode(capacity=self.capacity, is_leaf=self.is_leaf)
        right = CFNode(capacity=self.capacity, is_leaf=self.is_leaf)
        for index, entry in enumerate(self.entries):
            target = left if d2[index, a] <= d2[index, b] else right
            target.entries.append(entry)
        # Guard against a degenerate split leaving one side empty.
        if not left.entries:
            left.entries.append(right.entries.pop())
        if not right.entries:
            right.entries.append(left.entries.pop())
        return left, right


def _summarise(node: CFNode) -> CFEntry:
    """Aggregate CF of a whole node."""
    total = CFEntry(
        n=0.0,
        linear_sum=np.zeros_like(node.entries[0].linear_sum),
        square_sum=0.0,
        child=node,
    )
    for entry in node.entries:
        total.n += entry.n
        total.linear_sum = total.linear_sum + entry.linear_sum
        total.square_sum += entry.square_sum
    return total


class Birch:
    """Single-pass CF-tree clustering with a weighted k-means phase 3.

    Args:
        k: final number of clusters.
        threshold: maximum radius of a leaf CF after absorbing a point.
        branching: maximum entries per internal node.
        leaf_entries: maximum entries per leaf node.
        criterion: convergence criterion for the global k-means.
        max_iter: Lloyd cap for the global k-means.

    Example:
        >>> import numpy as np
        >>> from repro.baselines import Birch
        >>> data = np.random.default_rng(0).normal(size=(1000, 6))
        >>> model = Birch(k=10, threshold=0.8).fit(data)
        >>> model.method
        'birch'
    """

    def __init__(
        self,
        k: int,
        threshold: float = 0.5,
        branching: int = 50,
        leaf_entries: int = 50,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if branching < 2 or leaf_entries < 2:
            raise ValueError("branching and leaf_entries must be >= 2")
        self.k = k
        self.threshold = threshold
        self.branching = branching
        self.leaf_entries = leaf_entries
        self.criterion = criterion
        self.max_iter = max_iter
        self._root: CFNode | None = None

    # -- tree construction ---------------------------------------------------

    def _insert(self, node: CFNode, incoming: CFEntry) -> list[CFNode] | None:
        """Insert into the subtree; returns replacement nodes on split."""
        if node.is_leaf:
            if node.entries:
                nearest = node.nearest_entry(incoming.centroid)
                if nearest.merged_radius(incoming) <= self.threshold:
                    nearest.absorb(incoming)
                    return None
            node.entries.append(incoming)
            if node.overflowing:
                return list(node.split())
            return None

        nearest = node.nearest_entry(incoming.centroid)
        assert nearest.child is not None
        replacement = self._insert(nearest.child, incoming)
        if replacement is None:
            # Refresh the summary CF along the descent path.
            refreshed = _summarise(nearest.child)
            nearest.n = refreshed.n
            nearest.linear_sum = refreshed.linear_sum
            nearest.square_sum = refreshed.square_sum
            return None
        node.entries.remove(nearest)
        node.entries.extend(_summarise(child) for child in replacement)
        if node.overflowing:
            return list(node.split())
        return None

    def _insert_point(self, point: np.ndarray) -> None:
        if self._root is None:
            self._root = CFNode(capacity=self.leaf_entries, is_leaf=True)
        replacement = self._insert(self._root, CFEntry.of_point(point))
        if replacement is not None:
            new_root = CFNode(capacity=self.branching, is_leaf=False)
            new_root.entries = [_summarise(child) for child in replacement]
            self._root = new_root

    def leaf_summaries(self) -> tuple[np.ndarray, np.ndarray]:
        """All leaf CF centroids and their point counts."""
        if self._root is None:
            raise ValueError("fit has not been called")
        centroids: list[np.ndarray] = []
        weights: list[float] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    centroids.append(entry.centroid)
                    weights.append(entry.n)
            else:
                for entry in node.entries:
                    assert entry.child is not None
                    stack.append(entry.child)
        return np.asarray(centroids), np.asarray(weights)

    # -- public API ------------------------------------------------------------

    def fit(self, points: np.ndarray) -> ClusterModel:
        """Build the CF-tree in one pass and globally cluster the leaves."""
        pts = as_points(points)
        self._root = None
        start = time.perf_counter()
        for point in pts:
            self._insert_point(point)
        centroids, weights = self.leaf_summaries()

        if centroids.shape[0] <= self.k:
            final_centroids, final_weights = centroids, weights
        else:
            seeds = largest_weight_seeds(centroids, self.k, weights)
            result = lloyd(
                centroids,
                seeds,
                weights=weights,
                criterion=self.criterion,
                max_iter=self.max_iter,
            )
            summary = result.to_weighted_set()
            final_centroids, final_weights = summary.centroids, summary.weights
        elapsed = time.perf_counter() - start

        return ClusterModel(
            centroids=final_centroids,
            weights=final_weights,
            mse=evaluate_mse(pts, final_centroids),
            method="birch",
            total_seconds=elapsed,
            extra={
                "leaf_cf_count": int(centroids.shape[0]),
                "threshold": self.threshold,
            },
        )
