"""CURE (Guha, Rastogi & Shim, SIGMOD'98) — hierarchical baseline.

Cited by the paper among the database approaches to clustering large
data sets.  CURE agglomerates clusters represented by several
well-scattered *representative points* shrunk toward the centroid, which
lets it find non-spherical clusters while staying robust to outliers.
For large inputs it clusters a random sample (the original paper's
sampling step) and then assigns all points to the nearest
representative.

This implementation follows the published algorithm structure:

1. sample ``sample_size`` points,
2. greedy agglomerative merging (closest pair by representative
   distance) until ``k`` clusters remain,
3. per cluster: choose ``n_representatives`` scattered points, shrink
   them by ``shrink`` toward the centroid,
4. label the full data set by nearest representative.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.spatial.distance import cdist

from repro.core.model import ClusterModel, as_points
from repro.core.quality import mse as evaluate_mse

__all__ = ["Cure"]


class _CureCluster:
    """One agglomerative cluster with scattered representatives."""

    __slots__ = ("points", "centroid", "representatives")

    def __init__(
        self, points: np.ndarray, n_representatives: int, shrink: float
    ) -> None:
        self.points = points
        self.centroid = points.mean(axis=0)
        self._refresh(n_representatives, shrink)

    def _refresh(self, n_representatives: int, shrink: float) -> None:
        count = min(n_representatives, self.points.shape[0])
        # Well-scattered selection: farthest-point traversal.
        chosen = [self.points[0]]
        if count > 1:
            distances = ((self.points - chosen[0]) ** 2).sum(axis=1)
            for __ in range(count - 1):
                farthest = int(np.argmax(distances))
                chosen.append(self.points[farthest])
                distances = np.minimum(
                    distances,
                    ((self.points - self.points[farthest]) ** 2).sum(axis=1),
                )
        scattered = np.asarray(chosen)
        self.representatives = scattered + shrink * (self.centroid - scattered)

    def merge(
        self, other: "_CureCluster", n_representatives: int, shrink: float
    ) -> "_CureCluster":
        merged = _CureCluster.__new__(_CureCluster)
        merged.points = np.vstack([self.points, other.points])
        merged.centroid = merged.points.mean(axis=0)
        merged._refresh(n_representatives, shrink)
        return merged

    def distance_to(self, other: "_CureCluster") -> float:
        return float(
            cdist(self.representatives, other.representatives).min()
        )


class Cure:
    """CURE clustering with sampling and representative shrinking.

    Args:
        k: final number of clusters.
        n_representatives: scattered points per cluster (paper: 10).
        shrink: shrink factor toward the centroid (paper: 0.2-0.7).
        sample_size: points used for the agglomerative phase.
        seed: RNG seed.

    Example:
        >>> import numpy as np
        >>> from repro.baselines.cure import Cure
        >>> data = np.random.default_rng(0).normal(size=(500, 3))
        >>> model = Cure(k=4, sample_size=100, seed=0).fit(data)
        >>> model.method
        'cure'
    """

    def __init__(
        self,
        k: int,
        n_representatives: int = 6,
        shrink: float = 0.3,
        sample_size: int = 400,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if n_representatives < 1:
            raise ValueError("n_representatives must be >= 1")
        if not 0.0 <= shrink <= 1.0:
            raise ValueError(f"shrink must be in [0, 1], got {shrink}")
        if sample_size < 2:
            raise ValueError("sample_size must be >= 2")
        self.k = k
        self.n_representatives = n_representatives
        self.shrink = shrink
        self.sample_size = sample_size
        self._rng = np.random.default_rng(seed)

    def fit(self, points: np.ndarray) -> ClusterModel:
        """Cluster ``points``; representatives come from a sample."""
        pts = as_points(points)
        n = pts.shape[0]
        k = min(self.k, n)
        start = time.perf_counter()

        sample_count = min(self.sample_size, n)
        sample = pts[self._rng.choice(n, size=sample_count, replace=False)]

        clusters = [
            _CureCluster(
                sample[i : i + 1], self.n_representatives, self.shrink
            )
            for i in range(sample.shape[0])
        ]

        # Greedy agglomeration on pairwise representative distances.
        while len(clusters) > k:
            best_pair = (0, 1)
            best_distance = np.inf
            for i in range(len(clusters)):
                for j in range(i + 1, len(clusters)):
                    distance = clusters[i].distance_to(clusters[j])
                    if distance < best_distance:
                        best_distance = distance
                        best_pair = (i, j)
            i, j = best_pair
            merged = clusters[i].merge(
                clusters[j], self.n_representatives, self.shrink
            )
            clusters = [
                c for index, c in enumerate(clusters) if index not in (i, j)
            ]
            clusters.append(merged)

        # Assign all points to the nearest representative.
        rep_blocks = [c.representatives for c in clusters]
        owners = np.concatenate(
            [np.full(block.shape[0], index) for index, block in enumerate(rep_blocks)]
        )
        all_representatives = np.vstack(rep_blocks)
        nearest = np.argmin(
            cdist(pts, all_representatives, metric="sqeuclidean"), axis=1
        )
        labels = owners[nearest]

        centroids = np.array(
            [
                pts[labels == index].mean(axis=0)
                if (labels == index).any()
                else clusters[index].centroid
                for index in range(len(clusters))
            ]
        )
        weights = np.bincount(labels, minlength=len(clusters)).astype(float)
        occupied = weights > 0
        elapsed = time.perf_counter() - start

        return ClusterModel(
            centroids=centroids[occupied],
            weights=weights[occupied],
            mse=evaluate_mse(pts, centroids[occupied]),
            method="cure",
            total_seconds=elapsed,
            extra={
                "sample_size": sample_count,
                "n_representatives": self.n_representatives,
                "shrink": self.shrink,
            },
        )
