"""The three parallelization methods of the paper's Figure 2.

The paper positions partial/merge against three conventional ways of
parallelizing k-means:

* **Method A** — one grid cell per processor: embarrassingly parallel
  across cells, but each cell must still fit in one machine's memory.
* **Method B** — one restart (seed set) per processor for a single cell:
  parallelises the ``R`` runs, same memory limitation.
* **Method C** — distance-based data partitioning with mean broadcast:
  the cell's points are sorted to slaves by nearest initial centroid; each
  iteration every slave recomputes means for its points, broadcasts them,
  and migrates points whose nearest centroid lives on another slave.
  Memory is divided, but message passing overhead appears.

Methods A and B run on real thread pools.  Method C is executed as a
faithful single-host simulation that tracks the messages a shared-nothing
deployment would exchange (broadcasts and point migrations), because the
paper's criticism of Method C is precisely that overhead.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceCriterion, MseDeltaCriterion
from repro.core.kmeans import DEFAULT_MAX_ITER, lloyd
from repro.core.model import ClusterModel, as_points
from repro.core.quality import pairwise_sq_distances
from repro.core.seeding import random_seeds
from repro.baselines.serial import SerialKMeans

__all__ = [
    "method_a_cells_in_parallel",
    "method_b_restarts_in_parallel",
    "MethodCStats",
    "method_c_distance_partitioned",
]


def method_a_cells_in_parallel(
    cells: dict[str, np.ndarray],
    k: int,
    restarts: int = 10,
    max_workers: int = 4,
    seed: int | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
) -> dict[str, ClusterModel]:
    """Method A: assign each grid cell to a worker, serial k-means inside.

    Returns:
        Mapping from cell id to its serial model.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    root = np.random.default_rng(seed)
    jobs = [
        (cell_id, points, int(child))
        for (cell_id, points), child in zip(
            cells.items(), root.integers(0, 2**63 - 1, size=len(cells))
        )
    ]

    def run(job: tuple[str, np.ndarray, int]) -> tuple[str, ClusterModel]:
        cell_id, points, child_seed = job
        model = SerialKMeans(
            k,
            restarts=restarts,
            criterion=criterion,
            max_iter=max_iter,
            seed=child_seed,
        ).fit(points)
        return cell_id, model

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return dict(pool.map(run, jobs))


def method_b_restarts_in_parallel(
    points: np.ndarray,
    k: int,
    restarts: int = 10,
    max_workers: int = 4,
    seed: int | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
) -> ClusterModel:
    """Method B: one restart per worker for a single cell; keep min MSE."""
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    pts = as_points(points)
    root = np.random.default_rng(seed)
    child_seeds = [int(s) for s in root.integers(0, 2**63 - 1, size=restarts)]
    start = time.perf_counter()

    def run(child_seed: int):
        rng = np.random.default_rng(child_seed)
        seeds = random_seeds(pts, k, rng)
        return lloyd(pts, seeds, criterion=criterion, max_iter=max_iter)

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        results = list(pool.map(run, child_seeds))
    elapsed = time.perf_counter() - start

    best = min(results, key=lambda r: r.mse)
    occupied = best.cluster_weights > 0
    return ClusterModel(
        centroids=best.centroids[occupied],
        weights=best.cluster_weights[occupied],
        mse=best.mse,
        method="method-B",
        restarts=restarts,
        total_seconds=elapsed,
        extra={"restart_mses": [r.mse for r in results]},
    )


@dataclass
class MethodCStats:
    """Message accounting for the simulated Method C deployment.

    Attributes:
        iterations: Lloyd iterations executed.
        broadcasts: mean-vector broadcast messages
            (``slaves * (slaves - 1)`` per iteration).
        migrated_points: points shipped between slaves across the run.
        per_iteration_migrations: migration counts per iteration.
    """

    iterations: int = 0
    broadcasts: int = 0
    migrated_points: int = 0
    per_iteration_migrations: list[int] = field(default_factory=list)


def method_c_distance_partitioned(
    points: np.ndarray,
    k: int,
    n_slaves: int = 4,
    seed: int | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
) -> tuple[ClusterModel, MethodCStats]:
    """Method C: distance-partitioned k-means with migration accounting.

    The simulation is numerically identical to Lloyd k-means (so its model
    quality matches the serial algorithm with the same seeds); what it adds
    is the distributed-execution ledger: slaves own contiguous centroid
    ranges, means are broadcast each iteration, and a point whose nearest
    centroid moves to another slave's range counts as one migrated point.

    Returns:
        ``(model, stats)``.
    """
    pts = as_points(points)
    if n_slaves < 1:
        raise ValueError(f"n_slaves must be >= 1, got {n_slaves}")
    if k < n_slaves:
        raise ValueError(f"need k >= n_slaves, got k={k}, slaves={n_slaves}")
    rng = np.random.default_rng(seed)
    centroids = random_seeds(pts, k, rng)
    k_eff = centroids.shape[0]
    test = criterion if criterion is not None else MseDeltaCriterion()

    # Slave ownership: centroid j lives on slave j % n_slaves.
    owner_of_centroid = np.arange(k_eff) % n_slaves

    stats = MethodCStats()
    prev_mse = np.inf
    prev_owner = None
    start = time.perf_counter()
    assignments = np.zeros(pts.shape[0], dtype=np.intp)

    for __ in range(max_iter):
        d2 = pairwise_sq_distances(pts, centroids)
        assignments = np.argmin(d2, axis=1)
        sq = d2[np.arange(pts.shape[0]), assignments]

        point_owner = owner_of_centroid[assignments]
        if prev_owner is not None:
            moved = int((point_owner != prev_owner).sum())
            stats.migrated_points += moved
            stats.per_iteration_migrations.append(moved)
        prev_owner = point_owner

        counts = np.bincount(assignments, minlength=k_eff)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, pts)
        occupied = counts > 0
        new_centroids = centroids.copy()
        new_centroids[occupied] = sums[occupied] / counts[occupied, None]
        shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
        centroids = new_centroids

        stats.iterations += 1
        stats.broadcasts += n_slaves * (n_slaves - 1)

        cur_mse = float(sq.mean())
        if test.converged(prev_mse, cur_mse, shift):
            break
        prev_mse = cur_mse

    elapsed = time.perf_counter() - start
    d2 = pairwise_sq_distances(pts, centroids)
    assignments = np.argmin(d2, axis=1)
    sq = d2[np.arange(pts.shape[0]), assignments]
    counts = np.bincount(assignments, minlength=k_eff)
    occupied = counts > 0
    model = ClusterModel(
        centroids=centroids[occupied],
        weights=counts[occupied].astype(np.float64),
        mse=float(sq.mean()),
        method="method-C",
        total_seconds=elapsed,
        extra={"n_slaves": n_slaves},
    )
    return model, stats
