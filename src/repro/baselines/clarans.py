"""CLARANS (Ng & Han, VLDB'94) — randomized k-medoids baseline.

Cited by the paper as the database-community partitional method for
spatial data mining ("related work that deals with the partitional
clustering of large spaces such as CLARANS").  The algorithm views the
solution space as a graph whose nodes are k-medoid sets, adjacent when
they differ in one medoid, and performs ``numlocal`` randomized descents
of at most ``maxneighbor`` attempted swaps each.

Cost is the k-medoids objective: the sum of distances (not squared)
from each point to its nearest medoid.  The returned
:class:`~repro.core.model.ClusterModel` reports the usual squared-error
MSE so it is directly comparable to the k-means family.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.spatial.distance import cdist

from repro.core.model import ClusterModel, as_points
from repro.core.quality import mse as evaluate_mse

__all__ = ["Clarans"]


class Clarans:
    """Randomized k-medoids search.

    Args:
        k: number of medoids.
        numlocal: independent descents (the paper's recommended 2).
        maxneighbor: attempted swaps before declaring a local optimum
            (Ng & Han suggest max(250, 1.25% of k(n-k))); ``None`` uses
            that formula.
        seed: RNG seed.

    Example:
        >>> import numpy as np
        >>> from repro.baselines.clarans import Clarans
        >>> data = np.random.default_rng(0).normal(size=(300, 4))
        >>> model = Clarans(k=5, numlocal=1, maxneighbor=50, seed=0).fit(data)
        >>> model.method
        'clarans'
    """

    def __init__(
        self,
        k: int,
        numlocal: int = 2,
        maxneighbor: int | None = None,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if numlocal < 1:
            raise ValueError(f"numlocal must be >= 1, got {numlocal}")
        if maxneighbor is not None and maxneighbor < 1:
            raise ValueError(f"maxneighbor must be >= 1, got {maxneighbor}")
        self.k = k
        self.numlocal = numlocal
        self.maxneighbor = maxneighbor
        self._rng = np.random.default_rng(seed)

    def _cost(self, points: np.ndarray, medoid_idx: np.ndarray) -> float:
        distances = cdist(points, points[medoid_idx])
        return float(distances.min(axis=1).sum())

    def fit(self, points: np.ndarray) -> ClusterModel:
        """Run the randomized descent and return the best medoid set."""
        pts = as_points(points)
        n = pts.shape[0]
        k = min(self.k, n)
        maxneighbor = (
            self.maxneighbor
            if self.maxneighbor is not None
            else max(250, int(0.0125 * k * (n - k)))
        )

        start = time.perf_counter()
        best_idx: np.ndarray | None = None
        best_cost = np.inf
        swaps_tried_total = 0

        for __ in range(self.numlocal):
            current = self._rng.choice(n, size=k, replace=False)
            current_cost = self._cost(pts, current)
            rejected = 0
            while rejected < maxneighbor:
                swaps_tried_total += 1
                # Random neighbour: swap one medoid for one non-medoid.
                position = int(self._rng.integers(k))
                candidates = np.setdiff1d(
                    np.arange(n), current, assume_unique=False
                )
                if candidates.size == 0:
                    break
                replacement = int(self._rng.choice(candidates))
                neighbour = current.copy()
                neighbour[position] = replacement
                neighbour_cost = self._cost(pts, neighbour)
                if neighbour_cost < current_cost:
                    current, current_cost = neighbour, neighbour_cost
                    rejected = 0
                else:
                    rejected += 1
            if current_cost < best_cost:
                best_idx, best_cost = current, current_cost

        assert best_idx is not None
        elapsed = time.perf_counter() - start
        medoids = pts[best_idx].copy()
        d2 = cdist(pts, medoids, metric="sqeuclidean")
        assignments = np.argmin(d2, axis=1)
        weights = np.bincount(assignments, minlength=k).astype(float)
        occupied = weights > 0
        return ClusterModel(
            centroids=medoids[occupied],
            weights=weights[occupied],
            mse=evaluate_mse(pts, medoids[occupied]),
            method="clarans",
            total_seconds=elapsed,
            extra={
                "medoid_cost": best_cost,
                "swaps_tried": swaps_tried_total,
                "maxneighbor": maxneighbor,
            },
        )
