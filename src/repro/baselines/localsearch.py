"""STREAM/LOCALSEARCH-style streaming k-means (O'Callaghan et al. 2002).

The paper's closest related work: a one-pass streaming clusterer that
processes "as much data as can be fit in memory" per batch, retains each
batch's weighted centers, and — unlike partial/merge — compresses the
retained set *incrementally and hierarchically* whenever it grows past a
memory bound, rather than holding every partition's centroids for one
collective merge.  The paper's critique ("there is no merge step with
earlier results") corresponds to the information loss of these early,
irrevocable compressions; this implementation exists so the benchmarks can
measure that difference.

Structure (faithful to the STREAM framework, with Lloyd as the inner
``k``-clusterer in place of the paper's facility-location local search —
the retention/compression schedule, which is what distinguishes the
algorithms, is preserved):

1. read the stream in batches of ``batch_size`` points;
2. cluster each batch to ``k`` weighted centers (level-0 summary);
3. whenever more than ``retention_limit`` weighted centers are retained,
   re-cluster the retained centers themselves to ``k`` centers (level-up
   compression);
4. at end of stream, cluster whatever is retained to the final ``k``.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.model import ClusterModel, WeightedCentroidSet, as_points
from repro.core.quality import mse as evaluate_mse
from repro.core.restarts import best_of_restarts
from repro.core.seeding import largest_weight_seeds
from repro.core.kmeans import lloyd

__all__ = ["StreamLocalSearch"]


class StreamLocalSearch:
    """One-pass streaming k-means in the STREAM/LOCALSEARCH mould.

    Args:
        k: number of output centers.
        batch_size: points per in-memory batch.
        retention_limit: maximum retained weighted centers before a
            hierarchical compression is forced.
        restarts: seed restarts for each batch clustering.
        criterion: convergence criterion for the inner k-means.
        max_iter: Lloyd cap for the inner k-means.
        seed: RNG seed.

    Example:
        >>> import numpy as np
        >>> from repro.baselines import StreamLocalSearch
        >>> data = np.random.default_rng(0).normal(size=(2000, 6))
        >>> algo = StreamLocalSearch(k=10, batch_size=500, seed=0)
        >>> model = algo.fit(data)
        >>> model.method
        'stream-localsearch'
    """

    def __init__(
        self,
        k: int,
        batch_size: int = 1_000,
        retention_limit: int | None = None,
        restarts: int = 3,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.k = k
        self.batch_size = batch_size
        self.retention_limit = (
            retention_limit if retention_limit is not None else 4 * k
        )
        if self.retention_limit < k:
            raise ValueError("retention_limit must be >= k")
        self.restarts = restarts
        self.criterion = criterion
        self.max_iter = max_iter
        self._rng = np.random.default_rng(seed)

    def fit(self, points: np.ndarray) -> ClusterModel:
        """Cluster a full array by streaming it in batches."""
        pts = as_points(points)
        batches = (
            pts[start : start + self.batch_size]
            for start in range(0, pts.shape[0], self.batch_size)
        )
        return self.fit_stream(batches, evaluate_on=pts)

    def fit_stream(
        self,
        batches: Iterable[np.ndarray],
        evaluate_on: np.ndarray | None = None,
    ) -> ClusterModel:
        """Cluster an iterable of point batches in one pass.

        Args:
            batches: point arrays; each must fit in memory.
            evaluate_on: optional raw data to score the final model on.
        """
        start = time.perf_counter()
        retained: list[WeightedCentroidSet] = []
        retained_count = 0
        compressions = 0
        n_batches = 0
        total_points = 0

        for batch in batches:
            batch_pts = as_points(batch)
            n_batches += 1
            total_points += batch_pts.shape[0]
            summary = self._cluster_points(batch_pts)
            retained.append(summary)
            retained_count += summary.k
            if retained_count > self.retention_limit:
                merged = self._compress(retained)
                retained = [merged]
                retained_count = merged.k
                compressions += 1

        if not retained:
            raise ValueError("fit_stream received no batches")
        final = self._compress(retained)
        elapsed = time.perf_counter() - start

        if evaluate_on is not None:
            final_mse = evaluate_mse(evaluate_on, final.centroids)
        else:
            final_mse = float("nan")
        return ClusterModel(
            centroids=final.centroids,
            weights=final.weights,
            mse=final_mse,
            method="stream-localsearch",
            partitions=n_batches,
            restarts=self.restarts,
            total_seconds=elapsed,
            extra={
                "compressions": compressions,
                "retention_limit": self.retention_limit,
                "points_seen": total_points,
            },
        )

    def _cluster_points(self, batch: np.ndarray) -> WeightedCentroidSet:
        """Level-0: cluster one raw batch to k weighted centers."""
        report = best_of_restarts(
            batch,
            self.k,
            self.restarts,
            self._rng,
            criterion=self.criterion,
            max_iter=self.max_iter,
        )
        return report.best.to_weighted_set(source="batch")

    def _compress(self, retained: list[WeightedCentroidSet]) -> WeightedCentroidSet:
        """Level-up: re-cluster retained weighted centers to k."""
        pooled = WeightedCentroidSet.concatenate(retained)
        if pooled.k <= self.k:
            return pooled
        seeds = largest_weight_seeds(pooled.centroids, self.k, pooled.weights)
        result = lloyd(
            pooled.centroids,
            seeds,
            weights=pooled.weights,
            criterion=self.criterion,
            max_iter=self.max_iter,
        )
        return result.to_weighted_set(source="compressed")
