"""Serial k-means baseline — the paper's comparator.

"For the serial implementation, we loaded the complete grid cell into
(virtual) memory, and ran k-means until it converged" with R restart seed
sets, keeping the minimum-MSE representation.  The kernel is the same
:func:`repro.core.kmeans.lloyd` the partial/merge pipeline uses ("the code
for the serial and the partial k-means implementation are identical").
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.model import ClusterModel, as_points
from repro.core.restarts import best_of_restarts

__all__ = ["SerialKMeans"]


class SerialKMeans:
    """Whole-cell k-means with multi-restart, timed like the paper's runs.

    Args:
        k: number of centroids.
        restarts: random-seed restarts (the paper's ``R``; 10 in Section 5).
        seeding: seed strategy (paper: ``"random"``).
        criterion: convergence criterion (paper's 1e-9 MSE delta when
            ``None``).
        max_iter: Lloyd iteration cap per restart.
        kernel: Lloyd assignment backend name (exact backends are a
            bit-identical performance knob; ``None`` consults
            ``REPRO_KMEANS_KERNEL``).
        exact: ``False`` opts into the tolerance-close ``blas`` tier.
        early_abandon: cut short restarts that cannot beat the incumbent.
        seed: RNG seed.

    Example:
        >>> import numpy as np
        >>> from repro.baselines import SerialKMeans
        >>> data = np.random.default_rng(0).normal(size=(500, 6))
        >>> model = SerialKMeans(k=10, restarts=2, seed=0).fit(data)
        >>> model.method
        'serial'
    """

    def __init__(
        self,
        k: int,
        restarts: int = 10,
        seeding: str = "random",
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        kernel: str | None = None,
        exact: bool | None = None,
        early_abandon: bool = False,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.restarts = restarts
        self.seeding = seeding
        self.criterion = criterion
        self.max_iter = max_iter
        self.kernel = kernel
        self.exact = exact
        self.early_abandon = early_abandon
        self._rng = np.random.default_rng(seed)

    def fit(self, points: np.ndarray) -> ClusterModel:
        """Cluster the whole cell; returns the min-MSE model across restarts."""
        pts = as_points(points)
        start = time.perf_counter()
        report = best_of_restarts(
            pts,
            self.k,
            self.restarts,
            self._rng,
            seeding=self.seeding,
            criterion=self.criterion,
            max_iter=self.max_iter,
            kernel=self.kernel,
            exact=self.exact,
            early_abandon=self.early_abandon,
        )
        elapsed = time.perf_counter() - start
        best = report.best
        occupied = best.cluster_weights > 0
        return ClusterModel(
            centroids=best.centroids[occupied],
            weights=best.cluster_weights[occupied],
            mse=best.mse,
            method="serial",
            partitions=1,
            restarts=self.restarts,
            total_seconds=elapsed,
            extra={
                "iterations": report.iteration_counts,
                "restart_mses": report.mses,
                "best_restart": report.best_index,
                "kernel": best.kernel,
                "kernel_counters": (
                    report.counters.as_dict() if report.counters else None
                ),
                "abandoned_runs": report.abandoned_runs,
            },
        )
