"""Event-driven simulation of a shared-nothing cluster.

The paper's testbed was four Dell PCs (2.8 GHz P4, 1 GB RAM) on a Netgear
gigabit switch; this environment exposes a single CPU, so wall-clock
multi-machine speed-up cannot be *measured* here.  Following the
reproduction's substitution rule, this module simulates that deployment:

* :class:`MachineSpec` / :class:`NetworkSpec` / :class:`ClusterSpec`
  describe the hardware (compute throughput in distance-operations/s,
  link latency and bandwidth).
* :class:`DistributedSimulation` schedules the partial/merge query onto
  the cluster with greedy earliest-available placement: chunks ship from
  the storage node to their machine, partial k-means runs locally,
  weighted centroids ship to the coordinator, the merge runs there.
  It also simulates Figure 2's Method C (distance-partitioned k-means)
  with its per-iteration mean broadcasts and point migrations, so the
  paper's communication argument is quantified on equal hardware.
* :func:`calibrate_ops_per_second` measures the *real* Lloyd kernel on
  this host so simulated single-machine times line up with measured ones
  (the simulator is anchored, not free-floating).

Costs use the paper's own unit — distance computations, O(points × k ×
iterations) — so the simulation inherits the Section 3.2 complexity
model directly.

This simulator is the *model* of the shared-nothing deployment; the real
*runtime* is :mod:`repro.stream.shard`, which actually partitions the
grid by cell across worker processes, with heartbeats, shard
reassignment and bit-identical journal-replay recovery (see
``docs/distributed.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "MachineSpec",
    "NetworkSpec",
    "ClusterSpec",
    "SimEvent",
    "SimReport",
    "DistributedSimulation",
    "calibrate_ops_per_second",
    "paper_testbed",
]

_FLOAT_BYTES = 8


@dataclass(frozen=True)
class MachineSpec:
    """One worker machine.

    Attributes:
        name: label used in events.
        ops_per_second: distance computations per second (calibrate with
            :func:`calibrate_ops_per_second` to anchor to real hardware).
    """

    name: str
    ops_per_second: float = 2.0e8

    def __post_init__(self) -> None:
        if self.ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """The interconnect.

    Attributes:
        latency_seconds: per-message latency.
        bandwidth_bytes_per_second: per-link throughput.
    """

    latency_seconds: float = 1e-4
    bandwidth_bytes_per_second: float = 125e6  # ~1 GbE

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_seconds(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` point-to-point."""
        return self.latency_seconds + n_bytes / self.bandwidth_bytes_per_second


@dataclass(frozen=True)
class ClusterSpec:
    """A set of machines plus their interconnect.

    Machine 0 doubles as the storage node and merge coordinator, like
    the paper's NFS-mounted setup.
    """

    machines: tuple[MachineSpec, ...]
    network: NetworkSpec = NetworkSpec()

    def __post_init__(self) -> None:
        if not self.machines:
            raise ValueError("cluster needs at least one machine")

    @property
    def n_machines(self) -> int:
        return len(self.machines)


def paper_testbed(n_machines: int = 4, ops_per_second: float = 2.0e8) -> ClusterSpec:
    """The paper's testbed shape: n identical PCs on a gigabit switch."""
    if n_machines < 1:
        raise ValueError("n_machines must be >= 1")
    return ClusterSpec(
        machines=tuple(
            MachineSpec(name=f"pc{i}", ops_per_second=ops_per_second)
            for i in range(n_machines)
        )
    )


@dataclass(frozen=True)
class SimEvent:
    """One scheduled activity.

    Attributes:
        machine: executing machine name.
        kind: ``"transfer"``, ``"partial"``, ``"merge"`` or ``"broadcast"``.
        start: start time (s).
        end: end time (s).
        detail: free-form description.
    """

    machine: str
    kind: str
    start: float
    end: float
    detail: str = ""


@dataclass
class SimReport:
    """Outcome of one simulated execution.

    Attributes:
        makespan_seconds: end-to-end simulated time.
        compute_seconds: per-machine busy compute time.
        network_bytes: total bytes moved.
        events: the full schedule.
    """

    makespan_seconds: float
    compute_seconds: dict[str, float] = field(default_factory=dict)
    network_bytes: float = 0.0
    events: list[SimEvent] = field(default_factory=list)

    def utilization(self) -> dict[str, float]:
        """Busy fraction per machine over the makespan."""
        if self.makespan_seconds <= 0:
            return {name: 0.0 for name in self.compute_seconds}
        return {
            name: busy / self.makespan_seconds
            for name, busy in self.compute_seconds.items()
        }


def calibrate_ops_per_second(
    n_points: int = 20_000, k: int = 40, dim: int = 6, seed: int = 0
) -> float:
    """Measure this host's real distance-computation throughput.

    Runs a few real Lloyd iterations and divides the distance-op count by
    the measured time, so simulated machines can be anchored to the host
    the reproduction actually ran on.
    """
    from repro.core.kmeans import lloyd
    from repro.core.seeding import random_seeds

    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n_points, dim))
    seeds = random_seeds(points, k, rng)
    start = time.perf_counter()
    result = lloyd(points, seeds, max_iter=20)
    elapsed = time.perf_counter() - start
    ops = result.iterations * n_points * k
    return ops / max(elapsed, 1e-9)


class DistributedSimulation:
    """Schedules clustering queries onto a simulated cluster.

    Args:
        cluster: the hardware description.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster

    # -- partial/merge ---------------------------------------------------------

    def simulate_partial_merge(
        self,
        n_points: int,
        dim: int,
        k: int,
        n_chunks: int,
        restarts: int,
        partial_iterations: float,
        merge_iterations: float = 20.0,
    ) -> SimReport:
        """Simulate the partial/merge query on the cluster.

        Chunks are placed greedily on the machine that becomes available
        earliest (accounting for the chunk's transfer from the storage
        node); the merge waits for every machine's centroids.

        Args:
            n_points: cell size.
            dim: attribute count.
            k: centroids.
            n_chunks: partitions.
            restarts: seed restarts per partition.
            partial_iterations: mean Lloyd iterations per partial restart
                (measure with the convergence study for fidelity).
            merge_iterations: Lloyd iterations of the merge step.

        Returns:
            A :class:`SimReport`.
        """
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        network = self.cluster.network
        machines = self.cluster.machines
        chunk_points = n_points / n_chunks
        chunk_bytes = chunk_points * dim * _FLOAT_BYTES
        centroid_bytes = k * (dim + 1) * _FLOAT_BYTES
        chunk_ops = restarts * partial_iterations * k * chunk_points

        available = {m.name: 0.0 for m in machines}
        busy = {m.name: 0.0 for m in machines}
        events: list[SimEvent] = []
        network_bytes = 0.0
        storage = machines[0].name
        centroid_arrivals: list[float] = []

        for chunk_index in range(n_chunks):
            target = min(machines, key=lambda m: available[m.name])
            start = available[target.name]
            # Ship the chunk unless it is already local to storage.
            if target.name != storage:
                transfer = network.transfer_seconds(chunk_bytes)
                network_bytes += chunk_bytes
                events.append(
                    SimEvent(
                        machine=target.name,
                        kind="transfer",
                        start=start,
                        end=start + transfer,
                        detail=f"chunk{chunk_index} in",
                    )
                )
                start += transfer
            compute = chunk_ops / target.ops_per_second
            events.append(
                SimEvent(
                    machine=target.name,
                    kind="partial",
                    start=start,
                    end=start + compute,
                    detail=f"chunk{chunk_index}",
                )
            )
            busy[target.name] += compute
            done = start + compute
            # Ship weighted centroids to the coordinator.
            if target.name != storage:
                transfer = network.transfer_seconds(centroid_bytes)
                network_bytes += centroid_bytes
                done += transfer
            available[target.name] = start + compute
            centroid_arrivals.append(done)

        merge_start = max(centroid_arrivals)
        merge_ops = merge_iterations * k * (k * n_chunks)
        merge_time = merge_ops / machines[0].ops_per_second
        events.append(
            SimEvent(
                machine=storage,
                kind="merge",
                start=merge_start,
                end=merge_start + merge_time,
                detail=f"{k * n_chunks} weighted centroids",
            )
        )
        busy[storage] += merge_time

        return SimReport(
            makespan_seconds=merge_start + merge_time,
            compute_seconds=busy,
            network_bytes=network_bytes,
            events=events,
        )

    # -- Method C ---------------------------------------------------------------

    def simulate_method_c(
        self,
        n_points: int,
        dim: int,
        k: int,
        iterations: int,
        migration_fraction: float = 0.05,
    ) -> SimReport:
        """Simulate Figure 2's Method C on the same cluster.

        Every iteration: each slave computes distances for its share of
        points against all k centroids, broadcasts its means to every
        other slave, and ships migrating points.

        Args:
            n_points: cell size (split evenly across slaves).
            dim: attribute count.
            k: centroids.
            iterations: Lloyd iterations until convergence.
            migration_fraction: fraction of points changing slaves per
                iteration (measured ~2-7% by
                ``method_c_distance_partitioned``).

        Returns:
            A :class:`SimReport`.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 <= migration_fraction <= 1.0:
            raise ValueError("migration_fraction must be in [0, 1]")
        network = self.cluster.network
        machines = self.cluster.machines
        n_slaves = len(machines)
        share = n_points / n_slaves
        point_bytes = dim * _FLOAT_BYTES
        mean_bytes = k * (dim + 1) * _FLOAT_BYTES

        clock = 0.0
        busy = {m.name: 0.0 for m in machines}
        events: list[SimEvent] = []
        network_bytes = 0.0

        # Initial distribution of points to slaves.
        for machine in machines[1:]:
            transfer = network.transfer_seconds(share * point_bytes)
            network_bytes += share * point_bytes
            events.append(
                SimEvent(
                    machine=machine.name,
                    kind="transfer",
                    start=clock,
                    end=clock + transfer,
                    detail="initial shard",
                )
            )
        clock += network.transfer_seconds(share * point_bytes) if n_slaves > 1 else 0.0

        for iteration in range(iterations):
            # Compute phase: slaves run in parallel, barrier at the end.
            compute_times = []
            for machine in machines:
                compute = share * k / machine.ops_per_second
                busy[machine.name] += compute
                events.append(
                    SimEvent(
                        machine=machine.name,
                        kind="partial",
                        start=clock,
                        end=clock + compute,
                        detail=f"iter{iteration} assign+mean",
                    )
                )
                compute_times.append(compute)
            clock += max(compute_times)
            # Broadcast phase: every slave sends its means to all others.
            if n_slaves > 1:
                broadcast = network.transfer_seconds(mean_bytes) * (n_slaves - 1)
                network_bytes += mean_bytes * n_slaves * (n_slaves - 1)
                events.append(
                    SimEvent(
                        machine="switch",
                        kind="broadcast",
                        start=clock,
                        end=clock + broadcast,
                        detail=f"iter{iteration} means",
                    )
                )
                clock += broadcast
                # Migration phase.
                migrating = n_points * migration_fraction
                if migrating >= 1:
                    transfer = network.transfer_seconds(
                        migrating * point_bytes / n_slaves
                    )
                    network_bytes += migrating * point_bytes
                    clock += transfer

        return SimReport(
            makespan_seconds=clock,
            compute_seconds=busy,
            network_bytes=network_bytes,
            events=events,
        )
