"""Operator model: sources, transforms and sinks.

An operator "consumes one or several data items from an incoming data
stream, processes the data, and produces a stream of output data items"
(paper Section 1.2).  User code subclasses one of three bases:

* :class:`Source` — produces items from outside the stream (files,
  generators); has no input queue.
* :class:`Transform` — maps each input item to zero or more output items,
  optionally holding bounded state; may flush remaining state at end of
  stream.
* :class:`Sink` — terminal consumer; accumulates a result.

Operators declare whether they are safe to clone (``parallelizable``);
stateful-per-stream operators like a collective merge are not, while pure
per-item operators like partial k-means are.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["Operator", "Source", "Transform", "Sink", "FunctionTransform"]


class Operator:
    """Common base for all logical operators.

    Attributes:
        name: logical name; physical clones are suffixed ``#i``.
        parallelizable: whether the planner may clone this operator.
    """

    #: Overridden by subclasses that must run as a single instance.
    parallelizable: bool = True

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("operator name must be non-empty")
        self.name = name

    def clone(self) -> "Operator":
        """Return an independent instance for parallel execution.

        The default is only correct for stateless operators; stateful
        parallelizable operators must override this to avoid shared state.
        """
        if not self.parallelizable:
            raise TypeError(f"operator {self.name!r} is not parallelizable")
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Source(Operator):
    """Root operator producing the input stream."""

    #: Sources own external resources (file cursors); never cloned.
    parallelizable = False

    def generate(self) -> Iterator[Any]:
        """Yield the source's items; called once per execution."""
        raise NotImplementedError


class Transform(Operator):
    """Mid-stream operator: items in, items out.

    Attributes:
        max_retries: how many times the executor re-invokes ``process``
            on the same item after an exception before failing the plan.
            0 (default) fails fast; transforms wrapping flaky external
            resources (network reads, remote services) set it higher.
        retryable_errors: exception types considered transient; others
            fail immediately regardless of ``max_retries``.
        retry_policy: optional
            :class:`~repro.stream.supervision.RetryPolicy` giving this
            transform exponential backoff, jitter and a per-item timeout.
            When set it takes precedence over ``max_retries`` /
            ``retryable_errors`` (which remain as the zero-backoff
            shorthand).
    """

    max_retries: int = 0
    retryable_errors: tuple[type[BaseException], ...] = (Exception,)
    #: Optional rich retry policy; ``None`` falls back to the executor's
    #: default or the legacy ``max_retries`` shorthand above.
    retry_policy = None

    def process(self, item: Any) -> Iterable[Any]:
        """Handle one input item; return (possibly empty) output items."""
        raise NotImplementedError

    def finish(self) -> Iterable[Any]:
        """Flush buffered state at end of stream (default: nothing)."""
        return ()


class Sink(Operator):
    """Terminal operator accumulating a result.

    Sinks run as a single instance so result assembly needs no locking.
    """

    parallelizable = False

    def consume(self, item: Any) -> None:
        """Handle one input item."""
        raise NotImplementedError

    def result(self) -> Any:
        """Return the accumulated result; called after the stream ends."""
        raise NotImplementedError


class FunctionTransform(Transform):
    """Adapter turning a plain function into a stateless transform.

    Args:
        name: operator name.
        fn: callable mapping one item to an iterable of output items.
    """

    def __init__(self, name: str, fn) -> None:
        super().__init__(name)
        self._fn = fn

    def process(self, item: Any) -> Iterable[Any]:
        return self._fn(item)

    def clone(self) -> "FunctionTransform":
        return FunctionTransform(self.name, self._fn)
