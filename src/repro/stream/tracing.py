"""Execution traces: JSON export and ASCII Gantt rendering.

Two consumers:

* engineers debugging a plan — dump an
  :class:`~repro.stream.metrics.ExecutionMetrics` to JSON and diff runs,
* the distributed simulator — render a
  :class:`~repro.stream.distributed.SimReport` schedule as a Gantt chart
  so placement and idle gaps are visible in a terminal.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.stream.distributed import SimReport
from repro.stream.metrics import ExecutionMetrics, ServingMetrics

__all__ = [
    "metrics_to_dict",
    "dump_metrics_json",
    "serving_to_dict",
    "dump_serving_json",
    "render_gantt",
]


def metrics_to_dict(metrics: ExecutionMetrics) -> dict:
    """Convert execution metrics to a JSON-safe dictionary."""
    payload = {
        "wall_seconds": metrics.wall_seconds,
        "backend": metrics.backend,
        "workers": [
            {
                "name": worker.name,
                "pid": worker.pid,
                "items": worker.items,
                "busy_seconds": worker.busy_seconds,
                "spawn_seconds": worker.spawn_seconds,
                "shm_bytes": worker.shm_bytes,
            }
            for worker in metrics.workers
        ],
        "shards": [
            {
                "name": shard.name,
                "pid": shard.pid,
                "cells_owned": shard.cells_owned,
                "cells_completed": shard.cells_completed,
                "partitions_computed": shard.partitions_computed,
                "partitions_replayed": shard.partitions_replayed,
                "heartbeats": shard.heartbeats,
                "respawns": shard.respawns,
                "lost_reason": shard.lost_reason,
            }
            for shard in metrics.shards
        ],
        "recoveries": [
            {
                "worker_name": event.worker_name,
                "reason": event.reason,
                "cells_reassigned": event.cells_reassigned,
                "cells_degraded": event.cells_degraded,
                "replayed_records": event.replayed_records,
                "recovery_seconds": event.recovery_seconds,
            }
            for event in metrics.recoveries
        ],
        "operators": [
            {
                "name": op.name,
                "items_in": op.items_in,
                "items_out": op.items_out,
                "busy_seconds": op.busy_seconds,
                "wall_seconds": op.wall_seconds,
                "utilization": op.utilization,
                "retries": op.retries,
                "restarts": op.restarts,
                "degraded_items": op.degraded_items,
                "lost_items": list(op.lost_items),
                "quarantined_files": list(op.quarantined_files),
                "incomplete_cells": list(op.incomplete_cells),
                "kernel_counters": dict(op.kernel_counters),
                "tree_stats": dict(op.tree_stats),
            }
            for op in metrics.operators
        ],
        "kernel_counters": metrics.kernel_counters,
        "tree_stats": metrics.tree_stats,
        "resilience": {
            "total_retries": metrics.total_retries,
            "total_restarts": metrics.total_restarts,
            "total_degraded": metrics.total_degraded,
            "lost_partitions": metrics.lost_partitions,
            "injected_faults": metrics.injected_faults,
            "quarantined_files": metrics.quarantined_files,
            "incomplete_cells": metrics.incomplete_cells,
            "total_reassignments": metrics.total_reassignments,
            "total_replayed_records": metrics.total_replayed_records,
        },
        "queues": {
            name: {
                "puts": stats.puts,
                "gets": stats.gets,
                "high_water_mark": stats.high_water_mark,
                "producer_block_seconds": stats.producer_block_seconds,
                "consumer_block_seconds": stats.consumer_block_seconds,
            }
            for name, stats in metrics.queues.items()
        },
        "stalls": [
            {
                "waited_seconds": stall.waited_seconds,
                "suspects": list(stall.suspects),
                "policies": dict(stall.policies),
                "queue_depths": dict(stall.queue_depths),
                "thread_stacks": dict(stall.thread_stacks),
            }
            for stall in metrics.stalls
        ],
    }
    if metrics.checkpoint is not None:
        cp = metrics.checkpoint
        payload["checkpoint"] = {
            "journal_path": cp.journal_path,
            "partitions_replayed": cp.partitions_replayed,
            "partitions_recomputed": cp.partitions_recomputed,
            "cells_replayed": cp.cells_replayed,
            "journal_bytes": cp.journal_bytes,
            "recovery_seconds": cp.recovery_seconds,
            "resumed": cp.resumed,
        }
    return payload


def dump_metrics_json(metrics: ExecutionMetrics, path: str | Path) -> Path:
    """Write execution metrics as pretty-printed JSON."""
    target = Path(path)
    target.write_text(json.dumps(metrics_to_dict(metrics), indent=2))
    return target


def serving_to_dict(
    metrics: ServingMetrics, registry_stats: dict | None = None
) -> dict:
    """Convert serving metrics (plus optional registry counters) to JSON.

    The payload mirrors :func:`metrics_to_dict`'s role for batch runs:
    one diffable document per serving session, with per-endpoint
    latency percentiles, QPS and ingest update lag.
    """
    payload = metrics.snapshot()
    if registry_stats is not None:
        payload["registry"] = dict(registry_stats)
    return payload


def dump_serving_json(
    metrics: ServingMetrics,
    path: str | Path,
    registry_stats: dict | None = None,
) -> Path:
    """Write serving metrics as pretty-printed JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(serving_to_dict(metrics, registry_stats), indent=2)
    )
    return target


_KIND_MARKS = {"partial": "#", "merge": "M", "transfer": "-", "broadcast": "B"}


def render_gantt(report: SimReport, width: int = 72) -> str:
    """ASCII Gantt chart of a simulated schedule.

    One row per machine; time flows left to right across ``width``
    columns.  Marks: ``#`` compute, ``M`` merge, ``-`` transfer,
    ``B`` broadcast; later events overwrite earlier ones per column.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not report.events:
        return "(empty schedule)"
    span = max(report.makespan_seconds, 1e-9)
    machines = sorted({event.machine for event in report.events})
    rows = {machine: [" "] * width for machine in machines}

    for event in sorted(report.events, key=lambda e: e.start):
        row = rows[event.machine]
        start_col = int(event.start / span * (width - 1))
        end_col = max(start_col + 1, int(event.end / span * (width - 1)))
        mark = _KIND_MARKS.get(event.kind, "?")
        for col in range(start_col, min(end_col, width)):
            row[col] = mark

    name_width = max(len(machine) for machine in machines)
    lines = [
        f"Gantt — makespan {report.makespan_seconds:.3f}s "
        f"({report.network_bytes / 1e6:.1f} MB on the network)"
    ]
    for machine in machines:
        lines.append(f"{machine:>{name_width}} |{''.join(rows[machine])}|")
    lines.append(
        " " * name_width
        + "  0"
        + " " * (width - 8)
        + f"{report.makespan_seconds:.2f}s"
    )
    lines.append(
        " " * name_width + "  legend: # partial  M merge  - transfer  B broadcast"
    )
    return "\n".join(lines)
