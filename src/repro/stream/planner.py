"""Query planner: logical dataflow graph → physical execution plan.

Mirrors Conquest's optimizer at the scale this library needs: the planner
chooses how many *clones* of each parallelizable operator to run, given a
:class:`~repro.stream.scheduler.ResourceManager`.  Clone slots are awarded
proportionally to the operators' cost hints — in the partial/merge query
the partial k-means operator carries nearly all the cost, so it receives
nearly all the clones, which is precisely the paper's "Option 1"
parallelization (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stream.faults import FaultPlan
from repro.stream.graph import DataflowGraph
from repro.stream.mp import SHARDS, validate_backend
from repro.stream.operators import Operator, Sink, Transform
from repro.stream.queues import SmartQueue
from repro.stream.scheduler import ResourceManager
from repro.stream.supervision import SupervisionPolicy

__all__ = ["PhysicalOperator", "PhysicalPlan", "Planner"]

#: Input queue capacity; small enough to exert backpressure, large enough
#: to keep clones fed.
_QUEUE_CAPACITY = 64


@dataclass(frozen=True)
class PhysicalOperator:
    """One schedulable operator instance.

    Attributes:
        name: physical name (``logical`` or ``logical#i`` for clones).
        logical_name: the logical operator this instance realises.
        operator: the operator instance to run.
        input_queue: queue to consume from (``None`` for sources).
        output_queue: queue to produce into (``None`` for the sink).
    """

    name: str
    logical_name: str
    operator: Operator
    input_queue: SmartQueue | None
    output_queue: SmartQueue | None


@dataclass
class PhysicalPlan:
    """A fully wired set of physical operators ready for execution.

    Attributes:
        operators: all physical instances, topologically ordered by stage.
        queues: input queue per consuming logical operator.
        clone_counts: physical instances per logical operator.
        supervision: per-logical-operator supervision policies copied off
            the graph (the executor consults these first).
        fault_plan: chaos engine attached at plan time, if any.
        stall_timeout: watchdog deadline in seconds; when set, the
            executor monitors queue progress and diagnoses hung operators
            (``None`` disables the watchdog).
        backend: execution backend for cloneable transforms —
            ``"threads"`` (default), ``"processes"`` (worker processes
            fed over shared memory), or ``None`` to defer to the
            executor's own setting.
    """

    operators: list[PhysicalOperator] = field(default_factory=list)
    queues: dict[str, SmartQueue] = field(default_factory=dict)
    clone_counts: dict[str, int] = field(default_factory=dict)
    supervision: dict[str, SupervisionPolicy] = field(default_factory=dict)
    fault_plan: FaultPlan | None = None
    stall_timeout: float | None = None
    backend: str | None = None

    def describe(self) -> str:
        """One-line-per-operator plan description (for CLI/examples)."""
        lines = ["physical plan:"]
        for logical, count in self.clone_counts.items():
            lines.append(f"  {logical}: {count} instance(s)")
        if self.backend is not None:
            lines.append(f"  backend: {self.backend}")
        return "\n".join(lines)


class Planner:
    """Compiles logical graphs into physical plans.

    Args:
        resources: the resource envelope; defaults to host CPU count and
            the default memory budget.
    """

    def __init__(self, resources: ResourceManager | None = None) -> None:
        self.resources = resources if resources is not None else ResourceManager()

    def plan(
        self,
        graph: DataflowGraph,
        clone_overrides: dict[str, int] | None = None,
        fault_plan: FaultPlan | None = None,
        stall_timeout: float | None = None,
        backend: str | None = None,
    ) -> PhysicalPlan:
        """Compile ``graph`` into a :class:`PhysicalPlan`.

        Args:
            graph: validated logical dataflow graph.
            clone_overrides: explicit clone counts per logical operator
                (used by the speed-up experiments to pin parallelism);
                values are clamped to 1 for non-parallelizable operators.
            fault_plan: optional chaos engine; every physical instance a
                spec targets is wrapped transparently (testing only).
            stall_timeout: arm the executor's hung-operator watchdog with
                this deadline in seconds (``None`` leaves it off).
            backend: run cloneable transforms on ``"threads"`` or
                ``"processes"``; ``None`` defers to the executor.  The
                ``"shards"`` backend is not plan-based and is rejected
                here — use :func:`repro.stream.shard.run_sharded`.

        Returns:
            A wired physical plan.
        """
        graph.validate()
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be positive, got {stall_timeout}")
        overrides = dict(clone_overrides or {})
        clone_counts = self._decide_clones(graph, overrides)

        plan = PhysicalPlan(
            clone_counts=clone_counts,
            supervision=graph.supervision_policies(),
            fault_plan=fault_plan,
            stall_timeout=stall_timeout,
            backend=self._validate_plan_backend(backend),
        )
        # One input queue per consuming logical operator.
        for name in graph.names():
            operator = graph.operator(name)
            if isinstance(operator, (Transform, Sink)):
                plan.queues[name] = SmartQueue(
                    name=f"q->{name}", capacity=_QUEUE_CAPACITY
                )

        for name in graph.names():
            operator = graph.operator(name)
            count = clone_counts[name]
            downstream = graph.downstream_of(name)
            output_queue = plan.queues.get(downstream) if downstream else None
            input_queue = plan.queues.get(name)
            for index in range(count):
                instance = operator if count == 1 else operator.clone()
                physical_name = name if count == 1 else f"{name}#{index}"
                if fault_plan is not None:
                    instance = fault_plan.wrap(instance, physical_name)
                if output_queue is not None:
                    output_queue.register_producer()
                plan.operators.append(
                    PhysicalOperator(
                        name=physical_name,
                        logical_name=name,
                        operator=instance,
                        input_queue=input_queue,
                        output_queue=output_queue,
                    )
                )
        return plan

    @staticmethod
    def _validate_plan_backend(backend: str | None) -> str | None:
        """Accept only plan-compatible backends (threads/processes)."""
        if backend is None:
            return None
        validate_backend(backend)
        if backend == SHARDS:
            raise ValueError(
                "the 'shards' backend is not plan-based; use "
                "repro.stream.shard.run_sharded, "
                "run_partial_merge_stream(backend='shards') or "
                "Query.with_shards(n) instead of the Planner"
            )
        return backend

    def _decide_clones(
        self, graph: DataflowGraph, overrides: dict[str, int]
    ) -> dict[str, int]:
        """Choose instance counts: overrides win, then cost-weighted split."""
        counts: dict[str, int] = {}
        cloneable: list[str] = []
        for name in graph.names():
            operator = graph.operator(name)
            if name in overrides:
                requested = max(1, int(overrides[name]))
                counts[name] = 1 if not operator.parallelizable else requested
            elif operator.parallelizable and isinstance(operator, Transform):
                cloneable.append(name)
            else:
                counts[name] = 1

        if not cloneable:
            return counts

        singletons = sum(counts.values())
        budget = self.resources.clones_available(reserved=singletons)
        total_cost = sum(graph.cost_hint(name) for name in cloneable)
        remaining = budget
        for position, name in enumerate(cloneable):
            if position == len(cloneable) - 1:
                share = remaining
            else:
                share = max(1, round(budget * graph.cost_hint(name) / total_cost))
                share = min(share, remaining - (len(cloneable) - position - 1))
            counts[name] = max(1, share)
            remaining -= counts[name]
        return counts
