"""Resource management: memory budget and worker slots.

The paper's central scalability argument is that partition sizes must be
derived from *available volatile memory* (RAM, not virtual memory — to
avoid "undesired paging effects"), and that the number of operator clones
must be derived from available processors/machines.  The
:class:`ResourceManager` encodes both decisions so the planner and the
data partitioners can share them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ResourceManager", "DEFAULT_MEMORY_BUDGET"]

#: Default per-operator memory budget: 64 MiB, a conservative stand-in for
#: the paper's 1 GB machines after OS/JVM overheads.
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024

_FLOAT64_BYTES = 8
#: Working-set multiplier: Lloyd needs the points, the (n, k) distance
#: matrix rows, and assignment/weight buffers; 3x the raw point bytes is a
#: safe envelope for the d and k used in the paper's workloads.
_WORKING_SET_FACTOR = 3.0


@dataclass(frozen=True)
class ResourceManager:
    """Describes the compute resources a plan may use.

    Attributes:
        memory_budget_bytes: volatile memory one partial operator may use
            for its partition's working set.
        worker_slots: concurrent operator threads available (the paper's
            "machines"); defaults to the host CPU count.
    """

    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET
    worker_slots: int = 0

    def __post_init__(self) -> None:
        if self.memory_budget_bytes < 1024:
            raise ValueError(
                f"memory budget unreasonably small: {self.memory_budget_bytes}"
            )
        if self.worker_slots < 0:
            raise ValueError(f"worker_slots must be >= 0, got {self.worker_slots}")
        if self.worker_slots == 0:
            object.__setattr__(
                self, "worker_slots", max(1, os.cpu_count() or 1)
            )

    def max_points_per_partition(self, dim: int) -> int:
        """Largest partition (in points) that fits the memory budget.

        Args:
            dim: data dimensionality.

        Returns:
            Point capacity, at least 1.
        """
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        bytes_per_point = dim * _FLOAT64_BYTES * _WORKING_SET_FACTOR
        return max(1, int(self.memory_budget_bytes / bytes_per_point))

    def partitions_for(self, n_points: int, dim: int) -> int:
        """Number of equal partitions needed so each fits in memory."""
        if n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {n_points}")
        cap = self.max_points_per_partition(dim)
        return max(1, -(-n_points // cap))  # ceil division

    def clones_available(self, reserved: int) -> int:
        """Worker slots left for cloning after ``reserved`` singleton ops."""
        return max(1, self.worker_slots - reserved)
