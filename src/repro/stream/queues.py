"""Smart queues: bounded, multi-producer, instrumented.

The paper connects producer and consumer operators "via smart queues to
avoid buffer overflow or underflow".  :class:`SmartQueue` provides:

* a bounded buffer with blocking backpressure on ``put``,
* multi-producer accounting — the queue closes (consumers see end of
  stream) only after *every* registered producer has called
  :meth:`producer_done`, which is what makes operator cloning transparent
  to downstream consumers,
* abort support so a failing plan unblocks all parties, and
* occupancy / blocking metrics for the planner's cost model.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.stream.errors import QueueClosedError, QueueTimeout

__all__ = ["QueueStats", "SmartQueue", "END_OF_STREAM"]


class _EndOfStream:
    """Private sentinel signalling stream exhaustion to consumers."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<END_OF_STREAM>"


#: Returned by :meth:`SmartQueue.get` when the stream is exhausted.
END_OF_STREAM = _EndOfStream()


@dataclass
class QueueStats:
    """Counters observed on one queue.

    Attributes:
        puts: items enqueued.
        gets: items dequeued.
        high_water_mark: maximum buffer occupancy observed.
        producer_block_seconds: total time producers spent blocked on a
            full buffer (backpressure).
        consumer_block_seconds: total time consumers spent blocked on an
            empty buffer (starvation).
    """

    puts: int = 0
    gets: int = 0
    high_water_mark: int = 0
    producer_block_seconds: float = 0.0
    consumer_block_seconds: float = 0.0


class SmartQueue:
    """Bounded multi-producer multi-consumer queue with close semantics.

    Args:
        name: label used in metrics and error messages.
        capacity: maximum buffered items; producers block when full.
    """

    def __init__(self, name: str = "queue", capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.stats = QueueStats()
        self._buffer: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._producers = 0
        self._producers_done = 0
        self._aborted = False

    # -- producer protocol -------------------------------------------------

    def register_producer(self) -> None:
        """Declare one more producer; must precede its first ``put``."""
        with self._lock:
            self._producers += 1

    def producer_done(self) -> None:
        """Declare one producer finished; closes the queue when all are."""
        with self._lock:
            self._producers_done += 1
            if self._producers_done > self._producers:
                raise QueueClosedError(
                    f"queue {self.name!r}: producer_done called more times "
                    f"than producers registered"
                )
            if self._closed_locked():
                self._not_empty.notify_all()

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Enqueue ``item``, blocking while the buffer is full.

        Raises:
            QueueClosedError: the queue was closed or aborted.
            QueueTimeout: the ``timeout`` expired while blocked on
                backpressure (the queue itself is still healthy).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while True:
                if self._aborted:
                    raise QueueClosedError(f"queue {self.name!r} aborted")
                if self._closed_locked():
                    raise QueueClosedError(f"queue {self.name!r} is closed")
                if len(self._buffer) < self.capacity:
                    break
                blocked_at = time.monotonic()
                remaining = None if deadline is None else deadline - blocked_at
                if remaining is not None and remaining <= 0:
                    raise QueueTimeout(
                        f"queue {self.name!r}: put timed out under backpressure"
                    )
                self._not_full.wait(remaining)
                self.stats.producer_block_seconds += time.monotonic() - blocked_at
            self._buffer.append(item)
            self.stats.puts += 1
            occupancy = len(self._buffer)
            if occupancy > self.stats.high_water_mark:
                self.stats.high_water_mark = occupancy
            self._not_empty.notify()

    # -- consumer protocol -------------------------------------------------

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue one item; returns :data:`END_OF_STREAM` when exhausted.

        Raises:
            QueueClosedError: the queue was aborted.
            QueueTimeout: ``timeout`` expired while the buffer stayed
                empty (starvation, not a plan abort).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                if self._buffer:
                    item = self._buffer.popleft()
                    self.stats.gets += 1
                    self._not_full.notify()
                    return item
                if self._aborted:
                    raise QueueClosedError(f"queue {self.name!r} aborted")
                if self._closed_locked():
                    return END_OF_STREAM
                blocked_at = time.monotonic()
                remaining = None if deadline is None else deadline - blocked_at
                if remaining is not None and remaining <= 0:
                    raise QueueTimeout(
                        f"queue {self.name!r}: get timed out while starved"
                    )
                self._not_empty.wait(remaining)
                self.stats.consumer_block_seconds += time.monotonic() - blocked_at

    def __iter__(self) -> Iterator[Any]:
        """Iterate items until end of stream."""
        while True:
            item = self.get()
            if item is END_OF_STREAM:
                return
            yield item

    # -- lifecycle ----------------------------------------------------------

    def abort(self) -> None:
        """Unblock everyone and poison the queue (error propagation)."""
        with self._lock:
            self._aborted = True
            self._buffer.clear()
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        """True when all producers finished (or the queue was aborted)."""
        with self._lock:
            return self._aborted or self._closed_locked()

    def _closed_locked(self) -> bool:
        return self._producers > 0 and self._producers_done == self._producers

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)
