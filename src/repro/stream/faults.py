"""Deterministic fault injection for stream plans (the chaos engine).

The paper's deployment story — many partial-k-means clones racing while
the merge operator idles — only survives contact with real clusters if
the engine tolerates crashing clones, stalling queues and flaky I/O.
This module makes those failures *reproducible*: a :class:`FaultPlan` is
a seeded list of :class:`FaultSpec` entries that wrap physical operators
(any :class:`~repro.stream.operators.Source`, ``Transform`` or ``Sink``)
without touching operator code, and inject

* ``crash``   — raise :class:`~repro.stream.errors.InjectedFault`,
* ``delay``   — sleep before handling each matching item,
* ``stall``   — a one-shot long sleep (a stuck queue / wedged worker),
* ``truncate``— end a source's stream early (lost partitions).

Two further kinds target :mod:`repro.stream.shard` worker *processes*
rather than in-plan operators (``FaultPlan.wrap`` ignores them):

* ``kill``           — the worker SIGKILLs itself mid-task,
* ``heartbeat-drop`` — the worker silently stops heartbeating.

Injection decisions depend only on ``(plan seed, spec index, target
name, item index)`` — never on thread scheduling — so the same plan
replayed over the same pipeline produces an identical injection trace
(:meth:`FaultPlan.trace`), which is what makes chaos tests assertable.
"""

from __future__ import annotations

import copy
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.stream.errors import InjectedFault
from repro.stream.operators import Operator, Sink, Source, Transform

__all__ = [
    "FaultSpec",
    "InjectionEvent",
    "FaultPlan",
    "ChaosSource",
    "ChaosTransform",
    "ChaosSink",
    "SHARD_KINDS",
]

_KINDS = ("crash", "delay", "stall", "truncate", "kill", "heartbeat-drop")

#: Fault kinds handled by shard worker processes, not operator wrappers.
SHARD_KINDS = ("kill", "heartbeat-drop")

#: Default injection budget per kind; ``None`` means unlimited.  One-shot
#: defaults keep crash faults recoverable: a restarted clone replaying its
#: buffered items must not crash again at the same index.
_DEFAULT_BUDGET: dict[str, int | None] = {
    "crash": 1,
    "stall": 1,
    "truncate": 1,
    "delay": None,
    "kill": 1,
    "heartbeat-drop": 1,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    Attributes:
        target: physical operator name to attack (``"partial#1"``) or a
            logical name (``"partial"``, matching every clone).  For the
            shard kinds the target is a worker name (``"worker#1"``).
        kind: ``"crash"``, ``"delay"``, ``"stall"``, ``"truncate"``
            (``truncate`` is only meaningful on sources), or the
            shard-runtime kinds ``"kill"`` / ``"heartbeat-drop"``.
        at_index: inject when the wrapper's item counter equals this
            index (counting every item the operator handles, including
            control messages).  ``None`` disables index triggering.
        probability: per-item injection probability in ``[0, 1]``;
            decided by a counter-based hash of the plan seed, so it is
            deterministic and independent of thread scheduling.
        delay_seconds: sleep duration for ``delay``/``stall``.
        max_injections: cap on how many times this spec may fire;
            ``None`` uses the kind default (1 for crash/stall/truncate,
            unlimited for delay).
        message: carried into the raised :class:`InjectedFault`.
    """

    target: str
    kind: str
    at_index: int | None = None
    probability: float = 0.0
    delay_seconds: float = 0.0
    max_injections: int | None = None
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {_KINDS}")
        if not self.target:
            raise ValueError("fault target must be non-empty")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.at_index is None and self.probability == 0.0:
            raise ValueError("fault needs at_index or probability > 0")
        if self.at_index is not None and self.at_index < 0:
            raise ValueError(f"at_index must be >= 0, got {self.at_index}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        if self.max_injections is not None and self.max_injections < 1:
            raise ValueError("max_injections must be >= 1 when given")

    @property
    def budget(self) -> int | None:
        """Effective injection cap (``None`` = unlimited)."""
        if self.max_injections is not None:
            return self.max_injections
        return _DEFAULT_BUDGET[self.kind]


@dataclass(frozen=True, order=True)
class InjectionEvent:
    """One fault actually injected during a run.

    Attributes:
        spec_index: position of the firing :class:`FaultSpec` in the plan.
        target: physical operator the fault hit.
        item_index: the wrapper's item counter at injection time.
        kind: the fault kind that fired.
    """

    spec_index: int
    target: str
    item_index: int
    kind: str


class FaultPlan:
    """A seeded, replayable set of faults to inject into one plan.

    Pass to :meth:`repro.stream.planner.Planner.plan` (or the
    ``fault_plan=`` hooks on :func:`~repro.stream.kmeans_ops.
    run_partial_merge_stream` / :meth:`~repro.stream.query.Query.execute`)
    and every physical operator a spec targets is transparently wrapped.

    Thread safety: injection budgets and the trace are guarded by a lock;
    :meth:`trace` returns events in a canonical sort order so two replays
    of the same plan compare equal even though operator threads interleave
    differently.

    Args:
        specs: the faults to inject.
        seed: drives the probabilistic triggers deterministically.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._spent: dict[int, int] = {}
        self._events: list[InjectionEvent] = []

    # -- wiring -------------------------------------------------------------

    def wrap(self, operator: Operator, physical_name: str) -> Operator:
        """Wrap ``operator`` if any spec targets it; otherwise return it.

        Args:
            operator: the physical instance about to be scheduled.
            physical_name: its physical name (``"partial#2"``); specs
                match on this or on the operator's logical name.
        """
        indexed = [
            (index, spec)
            for index, spec in enumerate(self.specs)
            if spec.target in (physical_name, operator.name)
            and spec.kind not in SHARD_KINDS
        ]
        if not indexed:
            return operator
        if isinstance(operator, Source):
            return ChaosSource(self, operator, physical_name, indexed)
        if isinstance(operator, Sink):
            return ChaosSink(self, operator, physical_name, indexed)
        if isinstance(operator, Transform):
            return ChaosTransform(self, operator, physical_name, indexed)
        raise TypeError(f"cannot wrap {operator!r}")  # pragma: no cover

    def shard_specs(self, worker_name: str) -> list[tuple[int, FaultSpec]]:
        """Indexed ``kill``/``heartbeat-drop`` specs aimed at one worker.

        The shard runtime ships these to the worker process, which makes
        the (deterministic) injection decisions locally — a killed worker
        cannot report back, so shard-kind injections appear in the
        coordinator's :class:`~repro.stream.metrics.RecoveryEvent` log
        rather than in :meth:`trace`.
        """
        return [
            (index, spec)
            for index, spec in enumerate(self.specs)
            if spec.kind in SHARD_KINDS and spec.target == worker_name
        ]

    # -- injection decisions -------------------------------------------------

    def _chance(self, spec_index: int, target: str, item_index: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for one decision."""
        key = f"{self.seed}:{spec_index}:{target}:{item_index}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def should_inject(
        self, spec_index: int, spec: FaultSpec, target: str, item_index: int
    ) -> bool:
        """Decide (and atomically claim budget for) one injection."""
        triggered = spec.at_index is not None and item_index == spec.at_index
        if not triggered and spec.probability > 0.0:
            triggered = self._chance(spec_index, target, item_index) < spec.probability
        if not triggered:
            return False
        with self._lock:
            spent = self._spent.get(spec_index, 0)
            budget = spec.budget
            if budget is not None and spent >= budget:
                return False
            self._spent[spec_index] = spent + 1
            self._events.append(
                InjectionEvent(
                    spec_index=spec_index,
                    target=target,
                    item_index=item_index,
                    kind=spec.kind,
                )
            )
        return True

    # -- observability -------------------------------------------------------

    def trace(self) -> tuple[InjectionEvent, ...]:
        """All injections so far, in canonical (deterministic) order."""
        with self._lock:
            return tuple(sorted(self._events))

    def injected_count(self) -> int:
        """Number of faults injected so far."""
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        """Clear budgets and the trace so the same plan can be replayed."""
        with self._lock:
            self._spent.clear()
            self._events.clear()


class _ChaosMixin:
    """Shared per-instance injection loop for the three wrappers."""

    def _init_chaos(
        self,
        plan: FaultPlan,
        inner: Operator,
        physical_name: str,
        indexed_specs: list[tuple[int, FaultSpec]],
    ) -> None:
        self._plan = plan
        self._inner = inner
        self._physical_name = physical_name
        self._indexed_specs = list(indexed_specs)
        self._item_index = 0

    @property
    def inner(self) -> Operator:
        """The wrapped operator."""
        return self._inner

    def _inject(self) -> bool:
        """Run every matching spec against the current item.

        Returns:
            True when a ``truncate`` spec fired (callers stop the stream).

        Raises:
            InjectedFault: when a ``crash`` spec fired.
        """
        index = self._item_index
        self._item_index += 1
        for spec_index, spec in self._indexed_specs:
            if not self._plan.should_inject(
                spec_index, spec, self._physical_name, index
            ):
                continue
            if spec.kind in ("delay", "stall"):
                time.sleep(spec.delay_seconds)
            elif spec.kind == "truncate":
                return True
            else:  # crash
                raise InjectedFault(self._physical_name, index, spec.message)
        return False


class ChaosSource(_ChaosMixin, Source):
    """Source wrapper: faults fire before each item is emitted."""

    def __init__(
        self,
        plan: FaultPlan,
        inner: Source,
        physical_name: str,
        indexed_specs: list[tuple[int, FaultSpec]],
    ) -> None:
        Source.__init__(self, inner.name)
        self._init_chaos(plan, inner, physical_name, indexed_specs)

    def generate(self) -> Iterator[Any]:
        for item in self._inner.generate():
            if self._inject():
                return  # truncate: the stream ends here
            yield item


class ChaosTransform(_ChaosMixin, Transform):
    """Transform wrapper: faults fire before each ``process`` call.

    Crashes are raised *before* delegating, so the wrapped operator's
    state (e.g. a partial-k-means clone's RNG) is untouched by the failed
    attempt — exactly like a process that died before doing the work.
    """

    def __init__(
        self,
        plan: FaultPlan,
        inner: Transform,
        physical_name: str,
        indexed_specs: list[tuple[int, FaultSpec]],
    ) -> None:
        Transform.__init__(self, inner.name)
        self._init_chaos(plan, inner, physical_name, indexed_specs)

    # The planner and executor read these off the physical instance.
    @property
    def parallelizable(self) -> bool:  # type: ignore[override]
        return self._inner.parallelizable

    @property
    def max_retries(self) -> int:  # type: ignore[override]
        return self._inner.max_retries

    @property
    def retryable_errors(self):  # type: ignore[override]
        return self._inner.retryable_errors

    @property
    def retry_policy(self):  # type: ignore[override]
        return self._inner.retry_policy

    def process(self, item: Any) -> Iterable[Any]:
        self._inject()
        return self._inner.process(item)

    def finish(self) -> Iterable[Any]:
        return self._inner.finish()

    def clone(self) -> "ChaosTransform":
        return ChaosTransform(
            self._plan,
            self._inner.clone(),
            self._physical_name,
            self._indexed_specs,
        )

    def __deepcopy__(self, memo) -> "ChaosTransform":
        # Restart snapshots deep-copy the operator; the fault plan (with
        # its lock, budgets and trace) must stay shared so one-shot
        # faults do not re-fire during replay.
        return ChaosTransform(
            self._plan,
            copy.deepcopy(self._inner, memo),
            self._physical_name,
            self._indexed_specs,
        )


class ChaosSink(_ChaosMixin, Sink):
    """Sink wrapper: faults fire before each ``consume`` call."""

    def __init__(
        self,
        plan: FaultPlan,
        inner: Sink,
        physical_name: str,
        indexed_specs: list[tuple[int, FaultSpec]],
    ) -> None:
        Sink.__init__(self, inner.name)
        self._init_chaos(plan, inner, physical_name, indexed_specs)

    def consume(self, item: Any) -> None:
        self._inject()
        self._inner.consume(item)

    def result(self) -> Any:
        return self._inner.result()
