"""Supervised recovery: retry policies, restart and degrade.

The paper's parallelization argument assumes partial-k-means clones can
die without taking the query down: weighted-centroid summaries are
recomputable (restart) and droppable (the merge still produces a model
from surviving summaries, as mini-batch/streaming k-means variants
exploit).  This module supplies the pieces the executor uses:

* :class:`RetryPolicy` — per-item retries with exponential backoff,
  deterministic jitter and an optional per-attempt timeout.  Replaces the
  bare fixed-count loop the executor used to run.
* :class:`SupervisionPolicy` — what happens when retries are exhausted:
  ``fail-fast`` (abort the plan, the old behaviour), ``restart`` (replace
  the operator instance and re-run it from its buffered input) or
  ``degrade`` (drop the item, record the loss, keep going).
* :class:`Supervisor` — maps logical operator names to policies and
  carries the executor-wide default retry policy.
* :class:`SupervisedTransform` — the executor-side wrapper driving one
  physical transform under its policies.

Restart semantics: a replacement instance is deep-copied from a snapshot
taken before the first item, then *replays* the buffered input with
outputs suppressed.  Deterministic operators (partial k-means included:
its RNG stream advances once per chunk) therefore end up in exactly the
state the crashed instance should have had, so a restarted run's final
model is byte-identical to the unfaulted run for the same seed.
"""

from __future__ import annotations

import copy
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.stream.errors import InjectedFault, OperatorTimeout
from repro.stream.metrics import OperatorMetrics
from repro.stream.operators import Transform

__all__ = [
    "FAIL_FAST",
    "RESTART",
    "DEGRADE",
    "RetryPolicy",
    "SupervisionPolicy",
    "Supervisor",
    "SupervisedTransform",
    "run_with_retry",
    "describe_item",
]

FAIL_FAST = "fail-fast"
RESTART = "restart"
DEGRADE = "degrade"
_MODES = (FAIL_FAST, RESTART, DEGRADE)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-item retry behaviour for one transform.

    Attributes:
        max_retries: additional attempts after the first failure.
        base_delay: seconds before the first retry (0 disables backoff).
        backoff_factor: multiplier applied per subsequent retry.
        max_delay: ceiling on any single backoff sleep.
        jitter: fraction in ``[0, 1]``; each sleep is scaled by a factor
            drawn uniformly from ``[1 - jitter, 1 + jitter]`` using a
            per-operator seeded RNG, so schedules stay reproducible while
            de-synchronising retry storms across clones.
        timeout: per-attempt deadline in seconds; a ``process`` call that
            overruns raises :class:`~repro.stream.errors.OperatorTimeout`
            (the attempt's thread is abandoned — intended for I/O-bound
            transforms and chaos-test stalls, not CPU kernels).
        retryable_errors: exception types worth retrying.
            :class:`~repro.stream.errors.InjectedFault` is *never*
            retryable unless listed explicitly — an injected crash is the
            supervisor's problem, not a transient.
        seed: seeds the jitter RNG (combined with the operator name).
    """

    max_retries: int = 0
    base_delay: float = 0.0
    backoff_factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.0
    timeout: float | None = None
    retryable_errors: tuple[type[BaseException], ...] = (Exception,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive when given")

    @staticmethod
    def from_transform(transform: Transform) -> "RetryPolicy":
        """Legacy shorthand: zero-backoff policy from transform attrs."""
        return RetryPolicy(
            max_retries=transform.max_retries,
            retryable_errors=transform.retryable_errors,
        )

    def rng_for(self, operator_name: str) -> random.Random:
        """Deterministic jitter RNG bound to one physical operator."""
        return random.Random(f"{self.seed}:{operator_name}")

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether one failure is worth another attempt."""
        if isinstance(exc, InjectedFault):
            # Retry only when InjectedFault (or a subclass) is listed
            # explicitly; broad entries like ``Exception`` do not count.
            return any(
                issubclass(listed, InjectedFault)
                for listed in self.retryable_errors
            )
        return isinstance(exc, self.retryable_errors)

    def delay_before(self, retry_index: int, rng: random.Random) -> float:
        """Backoff sleep before retry number ``retry_index`` (0-based)."""
        if self.base_delay <= 0.0:
            return 0.0
        delay = min(
            self.max_delay, self.base_delay * self.backoff_factor**retry_index
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


@dataclass(frozen=True)
class SupervisionPolicy:
    """What the executor does when a transform exhausts its retries.

    Attributes:
        mode: ``"fail-fast"``, ``"restart"`` or ``"degrade"``.
        max_restarts: replacement instances allowed (``restart`` only).
    """

    mode: str = FAIL_FAST
    max_restarts: int = 0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown supervision mode {self.mode!r}; use {_MODES}")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.mode == RESTART and self.max_restarts < 1:
            raise ValueError("restart policy needs max_restarts >= 1")

    @staticmethod
    def fail_fast() -> "SupervisionPolicy":
        """Abort the whole plan on first unrecovered failure (default)."""
        return SupervisionPolicy(mode=FAIL_FAST)

    @staticmethod
    def restart(max_restarts: int = 1) -> "SupervisionPolicy":
        """Replace the crashed instance and replay its buffered input."""
        return SupervisionPolicy(mode=RESTART, max_restarts=max_restarts)

    @staticmethod
    def degrade() -> "SupervisionPolicy":
        """Drop the failing item, record the loss, keep streaming."""
        return SupervisionPolicy(mode=DEGRADE)


class Supervisor:
    """Per-operator supervision policies plus the default retry policy.

    Args:
        default: policy for operators without an explicit entry
            (defaults to fail-fast, the pre-supervision behaviour).
        policies: mapping from *logical* operator name to policy.
        retry_policy: executor-wide default
            :class:`RetryPolicy`; a transform's own ``retry_policy``
            attribute wins, then this, then the legacy
            ``max_retries``/``retryable_errors`` shorthand.
    """

    def __init__(
        self,
        default: SupervisionPolicy | None = None,
        policies: dict[str, SupervisionPolicy] | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.default = default if default is not None else SupervisionPolicy.fail_fast()
        self.policies = dict(policies or {})
        self.retry_policy = retry_policy

    def policy_for(self, logical_name: str) -> SupervisionPolicy:
        """Effective supervision policy for one logical operator."""
        return self.policies.get(logical_name, self.default)

    def retry_policy_for(self, transform: Transform) -> RetryPolicy:
        """Effective retry policy for one transform instance."""
        own = getattr(transform, "retry_policy", None)
        if own is not None:
            return own
        if self.retry_policy is not None:
            return self.retry_policy
        return RetryPolicy.from_transform(transform)


def describe_item(item: Any) -> str:
    """Short label of a lost item for :attr:`OperatorMetrics.lost_items`."""
    cell = getattr(item, "cell_id", None)
    partition = getattr(item, "partition", None)
    if cell is not None and partition is not None:
        return f"{cell}/P{partition}"
    text = repr(item)
    return text if len(text) <= 60 else text[:57] + "..."


def _call_materialized(
    fn: Callable[[Any], Any],
    item: Any,
    timeout: float | None,
    label: str,
) -> list:
    """Run ``fn(item)``, materializing its iterable, under a deadline.

    Materializing inside the guarded call matters twice over: generator
    transforms do their work lazily (so a timeout must cover consumption,
    not just the call), and retries must re-run the whole computation.
    When the deadline fires the attempt's daemon thread is abandoned —
    acceptable for blocked I/O, which is what timeouts are for.
    """
    if timeout is None:
        return list(fn(item))
    results: list = []
    errors: list[BaseException] = []

    def attempt() -> None:
        try:
            results.append(list(fn(item)))
        except BaseException as exc:  # noqa: BLE001 - re-raised by caller
            errors.append(exc)

    thread = threading.Thread(target=attempt, name=f"{label}-attempt", daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise OperatorTimeout(label, timeout)
    if errors:
        raise errors[0]
    return results[0]


def run_with_retry(
    fn: Callable[[Any], Any],
    item: Any,
    policy: RetryPolicy,
    metrics: OperatorMetrics,
    rng: random.Random,
    label: str,
) -> list:
    """Invoke ``fn(item)`` under ``policy``, counting retries in metrics."""
    attempt = 0
    while True:
        try:
            return _call_materialized(fn, item, policy.timeout, label)
        except BaseException as exc:  # noqa: BLE001 - filtered below
            if attempt >= policy.max_retries or not policy.is_retryable(exc):
                raise
            attempt += 1
            metrics.retries += 1
            delay = policy.delay_before(attempt - 1, rng)
            if delay > 0.0:
                time.sleep(delay)


@dataclass
class SupervisedTransform:
    """Drives one physical transform under retry + supervision policies.

    Created by the executor per transform thread.  Under ``restart`` it
    snapshots the operator up front (``copy.deepcopy``) and buffers every
    consumed item; a replacement instance replays the buffer with outputs
    suppressed, which reconstructs the crashed instance's state exactly
    (at the price of keeping the consumed items alive — restart is meant
    for summarising operators whose inputs are bounded partitions).

    Attributes:
        transform: the live operator instance (rebound on restart).
        policy: the supervision policy in force.
        retry: the retry policy in force.
        metrics: counters updated in place (retries/restarts/losses).
        name: physical operator name (labels timeouts and losses).
    """

    transform: Transform
    policy: SupervisionPolicy
    retry: RetryPolicy
    metrics: OperatorMetrics
    name: str
    _snapshot: Transform | None = field(default=None, repr=False)
    _buffer: list | None = field(default=None, repr=False)
    _restarts_used: int = field(default=0, repr=False)
    _rng: random.Random = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._rng = self.retry.rng_for(self.name)
        if self.policy.mode == RESTART:
            self._snapshot = copy.deepcopy(self.transform)
            self._buffer = []

    def process(self, item: Any) -> list:
        """One supervised ``process`` call; returns the output items."""
        if self._buffer is not None:
            self._buffer.append(item)
        return self._supervised(
            lambda t: run_with_retry(
                t.process, item, self.retry, self.metrics, self._rng, self.name
            ),
            replay_all=False,
            loss_label=describe_item(item),
        )

    def finish(self) -> list:
        """Supervised end-of-stream flush."""
        return self._supervised(
            lambda t: list(t.finish()),
            replay_all=True,
            loss_label=f"{self.name}/finish",
        )

    def _supervised(self, call, replay_all: bool, loss_label: str) -> list:
        need_replay = False
        while True:
            try:
                if need_replay:
                    self._replay(replay_all)
                    need_replay = False
                return call(self.transform)
            except BaseException:  # noqa: BLE001 - dispatched by policy
                if (
                    self.policy.mode == RESTART
                    and self._restarts_used < self.policy.max_restarts
                ):
                    self._restarts_used += 1
                    self.metrics.restarts += 1
                    self.transform = copy.deepcopy(self._snapshot)
                    need_replay = True
                    continue
                if self.policy.mode == DEGRADE:
                    self.metrics.degraded_items += 1
                    self.metrics.lost_items.append(loss_label)
                    return []
                raise

    def _replay(self, replay_all: bool) -> None:
        """Re-run buffered items on the replacement, discarding outputs."""
        assert self._buffer is not None
        prior = self._buffer if replay_all else self._buffer[:-1]
        for item in prior:
            list(self.transform.process(item))
