"""Durable run journal: crash-safe checkpointing for partial/merge queries.

The paper's partial/merge decomposition makes each partition's weighted
centroids a tiny self-contained summary (``k × (d+1)`` floats) — exactly
the right unit of durable state.  A multi-hour run over millions of
points should survive a process kill without re-scanning completed
partitions, the same "never touch a point twice" discipline the paper's
one-pass stream restrictions demand.

This module provides the pieces:

* :class:`JournalWriter` / :func:`read_journal` — an append-only,
  fsync'd, CRC-framed record log (the GBK checksum discipline applied to
  run state).  A torn final record — the signature of a mid-write crash —
  is detected by its frame and the journal recovers to the last complete
  record; garbage is never replayed.
* :class:`JournalState` — the decoded journal: manifest, completed
  partition summaries, finalised cell models, run-complete marker.
* :class:`RecoveryManager` — validates a journal's manifest against the
  current inputs and configuration, decides which partitions can be
  replayed from the journal and which buckets must be rescanned, and
  reopens the journal for appending (truncating any torn tail first).

Journal layout (little-endian)::

    magic    4 bytes   b"RJL1"
    version  uint32    format version (currently 1)
    -- zero or more records --
    length   uint32    payload bytes
    crc32    uint32    checksum of the payload
    payload  length bytes of JSON (record kind in the "kind" key)

Record kinds: ``manifest`` (config + seed + input inventory), ``partition``
(one partition's weighted centroids), ``cell`` (one cell's merged model),
``tree_node`` (one coreset-tree internal merge, see
:mod:`repro.stream.coreset`) and ``complete`` (run finished).  Float
arrays are encoded as base64 of their little-endian float64 bytes, so
replayed centroids are *bit identical* to the originals — JSON float
round-tripping never touches them.  Unknown kinds are skipped on read,
so journals written with ``tree_node`` records stay readable by older
readers.
"""

from __future__ import annotations

import base64
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.core.model import ClusterModel, WeightedCentroidSet
from repro.data.gridio import GridBucketFormatError, read_bucket_header
from repro.stream.errors import StreamError
from repro.stream.items import CentroidMessage

__all__ = [
    "CheckpointError",
    "JournalFormatError",
    "ManifestMismatchError",
    "JournalWriter",
    "JournalState",
    "read_journal",
    "RecoveryManager",
    "bucket_inventory",
    "JOURNAL_FILENAME",
]

_MAGIC = b"RJL1"
_VERSION = 1
_FILE_HEADER = struct.Struct("<4sI")
_FRAME = struct.Struct("<II")

#: A single journal record may not exceed this (a frame whose declared
#: length is larger is treated as corruption, not as a 4 GB allocation).
_MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Journal filename inside a checkpoint/run directory.
JOURNAL_FILENAME = "journal.rjl"


class CheckpointError(StreamError):
    """Base class for run-journal errors."""


class JournalFormatError(CheckpointError):
    """The journal file header is unreadable (bad magic or version)."""


class ManifestMismatchError(CheckpointError):
    """The journal's manifest disagrees with the current inputs/config.

    Resuming under a different configuration or over changed inputs would
    silently produce a model that matches neither run; refuse instead.
    """


# -- array codec ------------------------------------------------------------


def _encode_array(array: np.ndarray) -> dict[str, Any]:
    """Encode a float array as base64 of its little-endian float64 bytes."""
    contiguous = np.ascontiguousarray(array, dtype="<f8")
    return {
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _decode_array(blob: Mapping[str, Any]) -> np.ndarray:
    shape = tuple(int(s) for s in blob["shape"])
    raw = base64.b64decode(blob["data"])
    return np.frombuffer(raw, dtype="<f8").reshape(shape).copy()


# -- writer ----------------------------------------------------------------


class JournalWriter:
    """Append-only, fsync'd, CRC-framed run journal.

    Opening an existing journal first scans it and truncates any torn
    tail (a partial frame left by a mid-write crash), so appends always
    continue from the last complete record.  A fresh file gets the magic
    header.

    Args:
        path: journal file path.
        fsync: fsync after every record (default).  Turning it off trades
            durability for write latency — tests only.
    """

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self.partition_records = 0
        self.cell_records = 0
        self.tree_node_records = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            state = read_journal(self.path)
            if state.torn:
                with open(self.path, "r+b") as handle:
                    handle.truncate(state.valid_bytes)
            self._handle = open(self.path, "ab")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "wb")
            self._handle.write(_FILE_HEADER.pack(_MAGIC, _VERSION))
            self._sync()

    def _sync(self) -> None:
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one record (frame + payload) and sync it to disk."""
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        with self._lock:
            self._handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
            self._handle.write(payload)
            self._sync()

    # -- record constructors ------------------------------------------------

    def append_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Record the run manifest (config + seed + input inventory)."""
        self.append({"kind": "manifest", "manifest": dict(manifest)})

    def append_partition(self, message: CentroidMessage) -> None:
        """Record one completed partition's weighted centroids."""
        self.append(
            {
                "kind": "partition",
                "cell": message.cell_id,
                "partition": message.partition,
                "n_partitions": message.n_partitions,
                "centroids": _encode_array(message.summary.centroids),
                "weights": _encode_array(message.summary.weights),
                "source": message.summary.source,
                "partial_seconds": message.partial_seconds,
                "partial_iterations": message.partial_iterations,
                "kernel_counters": message.kernel_counters,
            }
        )
        self.partition_records += 1

    def append_cell(self, cell_id: str, model: ClusterModel) -> None:
        """Record one cell's merged final model."""
        extra = {
            key: value
            for key, value in model.extra.items()
            if isinstance(value, (int, float, str, bool, list))
        }
        self.append(
            {
                "kind": "cell",
                "cell": cell_id,
                "centroids": _encode_array(model.centroids),
                "weights": _encode_array(model.weights),
                "mse": model.mse,
                "method": model.method,
                "partitions": model.partitions,
                "restarts": model.restarts,
                "partial_seconds": model.partial_seconds,
                "merge_seconds": model.merge_seconds,
                "total_seconds": model.total_seconds,
                "extra": extra,
            }
        )
        self.cell_records += 1

    def append_tree_node(
        self,
        cell_id: str,
        start: int,
        count: int,
        summary: WeightedCentroidSet,
    ) -> None:
        """Record one coreset-tree internal merge.

        ``(cell, start, count)`` identifies the dyadic partition range the
        node covers; on resume the rebuilt tree adopts the journaled
        summary instead of recomputing the merge, so prefix queries after
        a crash are bit-identical to an uninterrupted run without paying
        for the merges again.
        """
        self.append(
            {
                "kind": "tree_node",
                "cell": cell_id,
                "start": int(start),
                "count": int(count),
                "centroids": _encode_array(summary.centroids),
                "weights": _encode_array(summary.weights),
                "source": summary.source,
            }
        )
        self.tree_node_records += 1

    def append_complete(self) -> None:
        """Record the run-complete marker."""
        self.append({"kind": "complete"})

    def bytes_written(self) -> int:
        """Current journal size in bytes."""
        with self._lock:
            self._handle.flush()
        return self.path.stat().st_size

    def close(self) -> None:
        """Flush, sync and close the journal file."""
        with self._lock:
            if not self._handle.closed:
                self._sync()
                self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- reader ----------------------------------------------------------------


@dataclass
class JournalState:
    """Decoded contents of one run journal.

    Attributes:
        manifest: the recorded run manifest (``None`` if never written).
        partitions: completed partition summaries, ``cell -> {partition:
            CentroidMessage}``.
        cells: finalised cell models, ``cell -> ClusterModel``.
        tree_nodes: journaled coreset-tree merges, ``cell -> {(start,
            count): WeightedCentroidSet}`` (empty unless the run used a
            :class:`~repro.stream.coreset.CoresetTreeSink`).
        complete: whether the run-complete marker was found.
        torn: whether the file ended in a torn/corrupt record (recovered
            by stopping at the last complete record).
        valid_bytes: file offset of the last complete record's end — the
            truncation point for reopening.
        records: number of complete records decoded.
    """

    manifest: dict[str, Any] | None = None
    partitions: dict[str, dict[int, CentroidMessage]] = field(default_factory=dict)
    cells: dict[str, ClusterModel] = field(default_factory=dict)
    tree_nodes: dict[str, dict[tuple[int, int], WeightedCentroidSet]] = field(
        default_factory=dict
    )
    complete: bool = False
    torn: bool = False
    valid_bytes: int = 0
    records: int = 0

    def replayable_messages(self) -> list[CentroidMessage]:
        """Partition summaries for cells without a finalised model."""
        messages: list[CentroidMessage] = []
        for cell_id, by_partition in self.partitions.items():
            if cell_id in self.cells:
                continue
            messages.extend(
                by_partition[index] for index in sorted(by_partition)
            )
        return messages

    def partition_counts(self) -> dict[str, int]:
        """Length of each cell's *contiguous* journaled partition prefix.

        The serving layer's warm start folds exactly the prefix ``[0, n)``
        per cell (records after a gap are unreachable until the gap
        fills), so this is the authoritative "how far did the stream
        durably get" answer — and the next partition index a serve-time
        ingest will be journaled under.
        """
        counts: dict[str, int] = {}
        for cell_id, by_partition in self.partitions.items():
            prefix = 0
            while prefix in by_partition:
                prefix += 1
            counts[cell_id] = prefix
        return counts

    def completed_cells(self) -> set[str]:
        """Cells whose every partition (or final model) is journaled."""
        done = set(self.cells)
        for cell_id, by_partition in self.partitions.items():
            expected = {
                message.n_partitions for message in by_partition.values()
            } - {0}
            if len(expected) == 1 and len(by_partition) == expected.pop():
                done.add(cell_id)
        return done


def _decode_record(record: Mapping[str, Any], state: JournalState) -> None:
    kind = record.get("kind")
    if kind == "manifest":
        state.manifest = dict(record["manifest"])
    elif kind == "partition":
        summary = WeightedCentroidSet(
            centroids=_decode_array(record["centroids"]),
            weights=_decode_array(record["weights"]),
            source=record.get("source", ""),
        )
        message = CentroidMessage(
            cell_id=record["cell"],
            partition=int(record["partition"]),
            summary=summary,
            n_partitions=int(record.get("n_partitions", 0)),
            partial_seconds=float(record.get("partial_seconds", 0.0)),
            partial_iterations=int(record.get("partial_iterations", 0)),
            kernel_counters=record.get("kernel_counters"),
        )
        state.partitions.setdefault(message.cell_id, {})[
            message.partition
        ] = message
    elif kind == "cell":
        state.cells[record["cell"]] = ClusterModel(
            centroids=_decode_array(record["centroids"]),
            weights=_decode_array(record["weights"]),
            mse=float(record["mse"]),
            method=record.get("method", "partial/merge[journal]"),
            partitions=int(record.get("partitions", 1)),
            restarts=int(record.get("restarts", 1)),
            partial_seconds=float(record.get("partial_seconds", 0.0)),
            merge_seconds=float(record.get("merge_seconds", 0.0)),
            total_seconds=float(record.get("total_seconds", 0.0)),
            extra=dict(record.get("extra", {})),
        )
    elif kind == "tree_node":
        state.tree_nodes.setdefault(record["cell"], {})[
            (int(record["start"]), int(record["count"]))
        ] = WeightedCentroidSet(
            centroids=_decode_array(record["centroids"]),
            weights=_decode_array(record["weights"]),
            source=record.get("source", ""),
        )
    elif kind == "complete":
        state.complete = True
    # Unknown kinds are skipped: forward compatibility for readers.


def read_journal(path: str | Path) -> JournalState:
    """Decode a run journal, recovering past a torn final record.

    The reader walks CRC-framed records sequentially and stops at the
    first frame that is truncated, oversized, fails its checksum or does
    not parse — everything after a corrupt frame in an append-only log is
    untrustworthy.  ``state.torn`` reports whether such a tail was found
    and ``state.valid_bytes`` is the offset to truncate to.

    Raises:
        JournalFormatError: the file header itself is unreadable.
    """
    target = Path(path)
    with open(target, "rb") as handle:
        header = handle.read(_FILE_HEADER.size)
        if len(header) != _FILE_HEADER.size:
            raise JournalFormatError(f"{target}: truncated journal header")
        magic, version = _FILE_HEADER.unpack(header)
        if magic != _MAGIC:
            raise JournalFormatError(f"{target}: bad journal magic {magic!r}")
        if version != _VERSION:
            raise JournalFormatError(
                f"{target}: unsupported journal version {version}"
            )
        state = JournalState(valid_bytes=_FILE_HEADER.size)
        while True:
            frame = handle.read(_FRAME.size)
            if not frame:
                break
            if len(frame) < _FRAME.size:
                state.torn = True
                break
            length, crc_expected = _FRAME.unpack(frame)
            if length > _MAX_RECORD_BYTES:
                state.torn = True
                break
            payload = handle.read(length)
            if len(payload) != length or zlib.crc32(payload) != crc_expected:
                state.torn = True
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                state.torn = True
                break
            _decode_record(record, state)
            state.records += 1
            state.valid_bytes = handle.tell()
    return state


# -- manifest --------------------------------------------------------------


def bucket_inventory(paths: Iterable[Path]) -> list[dict[str, Any]]:
    """Header-level inventory of bucket files, for manifest validation.

    Files whose header cannot be read are listed with an ``"error"`` key
    so the caller can apply its corruption policy.
    """
    inventory: list[dict[str, Any]] = []
    for path in sorted(Path(p) for p in paths):
        try:
            cell_id, n_points, dim = read_bucket_header(path)
        except (GridBucketFormatError, OSError) as exc:
            inventory.append({"name": path.name, "error": str(exc)})
            continue
        inventory.append(
            {
                "name": path.name,
                "cell": cell_id.key,
                "n": int(n_points),
                "dim": int(dim),
            }
        )
    return inventory


# -- recovery --------------------------------------------------------------


class RecoveryManager:
    """Validates and replays a run directory's journal.

    Args:
        run_dir: checkpoint directory holding (or about to hold) the
            journal; created on first write.
    """

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)
        self.journal_path = self.run_dir / JOURNAL_FILENAME

    def journal_exists(self) -> bool:
        """Whether a non-empty journal is present."""
        return (
            self.journal_path.exists()
            and self.journal_path.stat().st_size >= _FILE_HEADER.size
        )

    def load(self) -> JournalState:
        """Decode the journal (recovering past any torn tail)."""
        return read_journal(self.journal_path)

    def open_writer(self, fsync: bool = True) -> JournalWriter:
        """Open the journal for appending, truncating a torn tail first."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        return JournalWriter(self.journal_path, fsync=fsync)

    @staticmethod
    def validate_manifest(
        recorded: Mapping[str, Any] | None,
        current: Mapping[str, Any],
        ignore: Iterable[str] = (),
    ) -> None:
        """Compare the journaled manifest against the current run's.

        Args:
            recorded: manifest decoded from the journal.
            current: manifest built from the current inputs and config.
            ignore: top-level keys exempt from comparison (e.g. ``"seed"``
                when the caller adopts the journaled seed).

        Raises:
            ManifestMismatchError: on any difference, naming every
                mismatching key.
        """
        if recorded is None:
            raise ManifestMismatchError(
                "journal has no manifest record; cannot validate resume"
            )
        skipped = set(ignore)
        mismatches: list[str] = []
        for key in sorted(set(recorded) | set(current)):
            if key in skipped:
                continue
            if recorded.get(key) != current.get(key):
                mismatches.append(
                    f"{key}: journal={recorded.get(key)!r} "
                    f"current={current.get(key)!r}"
                )
        if mismatches:
            raise ManifestMismatchError(
                "journal manifest does not match the current run: "
                + "; ".join(mismatches)
            )
