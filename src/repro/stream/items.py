"""Stream items exchanged between operators.

Items are small immutable messages; bulk data travels as numpy arrays held
by reference (operators must not mutate received arrays).  The engine also
uses a private end-of-stream sentinel which never reaches user code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.model import ClusterModel, WeightedCentroidSet, as_points

__all__ = ["DataChunk", "CentroidMessage", "ModelMessage", "Watermark"]


@dataclass(frozen=True)
class DataChunk:
    """A memory-sized partition of one grid cell's points.

    Attributes:
        cell_id: identifier of the grid cell the chunk belongs to.
        partition: index of this partition within the cell.
        points: ``(m, d)`` float64 array of data points.
        n_partitions: total partitions of the cell, when known (lets the
            merge operator detect completeness per cell); 0 if unknown.
    """

    cell_id: str
    partition: int
    points: np.ndarray
    n_partitions: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", as_points(self.points))
        if self.partition < 0:
            raise ValueError(f"partition must be >= 0, got {self.partition}")

    @property
    def n_points(self) -> int:
        """Number of points in the chunk."""
        return self.points.shape[0]


@dataclass(frozen=True)
class CentroidMessage:
    """Weighted centroids of one partition, sent to the merge operator.

    ``kernel_counters`` carries the partial step's kernel instrumentation
    as a plain JSON-safe dict (see
    :meth:`repro.core.kernels.KernelCounters.as_dict`) so it survives
    pickling to process-backend workers and journal replay; ``None`` when
    the producing run recorded none (e.g. a partition replayed from a
    journal written before the field existed).
    """

    cell_id: str
    partition: int
    summary: WeightedCentroidSet
    n_partitions: int = 0
    partial_seconds: float = 0.0
    partial_iterations: int = 0
    kernel_counters: dict | None = None


@dataclass(frozen=True)
class ModelMessage:
    """Final cluster model of one grid cell (merge operator output)."""

    cell_id: str
    model: ClusterModel


@dataclass(frozen=True)
class Watermark:
    """Control message: all chunks of ``cell_id`` have been emitted.

    Sources emit a watermark after the last chunk of each cell so stateful
    consumers (the merge operator) can finalise a cell without waiting for
    the whole stream to end.  ``payload`` carries source-specific metadata
    such as the original point count.
    """

    cell_id: str
    n_partitions: int
    payload: dict[str, Any] = field(default_factory=dict)
