"""Declarative query builder over the stream engine.

Conquest exposes clustering as a *query*: "queries are specified as a
logical operator tree, the query optimizer creates a query execution
plan including the physical operator implementations and parallelization
of the operators" (paper Section 4).  :class:`Query` is that interface:

.. code-block:: python

    from repro.stream.query import Query
    result = (
        Query.scan_buckets("/data/buckets")
        .partition_by_memory()
        .cluster(k=40, restarts=10)
        .merge(k=40)
        .explain()   # optional
        .execute()
    )

Each builder call appends a logical stage; ``execute`` compiles the
stage list into a :class:`~repro.stream.graph.DataflowGraph`, plans it
against the resource envelope and runs it.  ``explain`` prints the
logical tree and the physical plan (clone counts) without executing —
the EXPLAIN facility every query engine owes its users.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kernels import resolve_kernel
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.stream.checkpoint import (
    CheckpointError,
    JournalState,
    JournalWriter,
    RecoveryManager,
    bucket_inventory,
)
from repro.stream.coreset import CoresetTreeSink, PrefixQuery
from repro.stream.executor import ExecutionResult, Executor
from repro.stream.faults import FaultPlan
from repro.stream.file_source import FAIL, BucketFileSource
from repro.stream.graph import DataflowGraph
from repro.stream.kmeans_ops import (
    GridCellChunkSource,
    MergeKMeansSink,
    PartialKMeansOperator,
)
from repro.stream.metrics import (
    CheckpointStats,
    ExecutionMetrics,
    OperatorMetrics,
)
from repro.stream.mp import SHARDS, validate_backend
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager
from repro.stream.supervision import RetryPolicy, SupervisionPolicy, Supervisor

__all__ = ["QueryError", "QueryResult", "Query"]


class QueryError(Exception):
    """The query is structurally invalid (missing or duplicated stages)."""


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one executed query.

    Attributes:
        models: final cluster model per cell id.
        execution: engine-level result (metrics, queues).
        prefix_queries: scheduled mid-stream clustering answers, in issue
            order (empty unless :meth:`Query.with_prefix_queries` was
            used).
        final_queries: each cell's prefix-query answer at end of stream
            (empty unless prefix queries were enabled).
    """

    models: dict[str, Any]
    execution: ExecutionResult
    prefix_queries: list[PrefixQuery] = field(default_factory=list)
    final_queries: dict[str, PrefixQuery] = field(default_factory=dict)


@dataclass
class _QueryState:
    """Accumulated logical stages."""

    source_kind: str | None = None
    source_args: dict[str, Any] = field(default_factory=dict)
    n_chunks: int | None = None
    by_memory: bool = False
    cluster_args: dict[str, Any] | None = None
    merge_args: dict[str, Any] | None = None
    resources: ResourceManager | None = None
    partial_clones: int | None = None
    seed: int | None = None
    supervision: dict[str, SupervisionPolicy] = field(default_factory=dict)
    retry_policy: RetryPolicy | None = None
    checkpoint_dir: str | None = None
    resume: bool = False
    checkpoint_fsync: bool = True
    on_corrupt: str = FAIL
    quarantine_dir: str | None = None
    stall_timeout: float | None = None
    backend: str | None = None
    shards: int | None = None
    shard_config: Any = None
    kernel: str | None = None
    exact: bool | None = None
    prefix_queries: bool = False
    prefix_query_every: int | None = None
    prefix_query_window: int | None = None


class Query:
    """Immutable-ish builder for partial/merge clustering queries.

    Build with the ``scan_*`` constructors, chain stage methods, finish
    with :meth:`execute`.  Stages may appear once each; ``cluster`` and a
    source are mandatory, ``merge`` defaults to the cluster stage's k.
    """

    def __init__(self, state: _QueryState) -> None:
        self._state = state

    # -- constructors --------------------------------------------------------

    @staticmethod
    def scan_cells(cells: Mapping[str, np.ndarray]) -> "Query":
        """Start from in-memory cells (mapping cell id -> points)."""
        if not cells:
            raise QueryError("scan_cells requires a non-empty mapping")
        state = _QueryState(source_kind="cells", source_args={"cells": dict(cells)})
        return Query(state)

    @staticmethod
    def scan_buckets(directory: str) -> "Query":
        """Start from a directory of ``.gbk`` bucket files."""
        state = _QueryState(
            source_kind="buckets", source_args={"directory": directory}
        )
        return Query(state)

    # -- stages ----------------------------------------------------------------

    def partition(self, n_chunks: int) -> "Query":
        """Split every cell into a fixed number of chunks."""
        if n_chunks < 1:
            raise QueryError(f"n_chunks must be >= 1, got {n_chunks}")
        if self._state.n_chunks is not None or self._state.by_memory:
            raise QueryError("partitioning specified twice")
        self._state.n_chunks = n_chunks
        return self

    def partition_by_memory(self) -> "Query":
        """Derive chunk counts from the resource envelope's memory budget."""
        if self._state.n_chunks is not None or self._state.by_memory:
            raise QueryError("partitioning specified twice")
        self._state.by_memory = True
        return self

    def cluster(
        self,
        k: int,
        restarts: int = 10,
        seeding: str = "random",
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
    ) -> "Query":
        """Add the partial k-means stage."""
        if self._state.cluster_args is not None:
            raise QueryError("cluster stage specified twice")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._state.cluster_args = {
            "k": k,
            "restarts": restarts,
            "seeding": seeding,
            "criterion": criterion,
            "max_iter": max_iter,
        }
        return self

    def merge(
        self,
        k: int | None = None,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
    ) -> "Query":
        """Add the merge stage (defaults to the cluster stage's k)."""
        if self._state.merge_args is not None:
            raise QueryError("merge stage specified twice")
        self._state.merge_args = {
            "k": k,
            "criterion": criterion,
            "max_iter": max_iter,
        }
        return self

    def with_resources(self, resources: ResourceManager) -> "Query":
        """Set the resource envelope (memory budget, worker slots)."""
        self._state.resources = resources
        return self

    def with_partial_clones(self, clones: int) -> "Query":
        """Pin the number of partial-operator clones."""
        if clones < 1:
            raise QueryError(f"clones must be >= 1, got {clones}")
        self._state.partial_clones = clones
        return self

    def with_seed(self, seed: int) -> "Query":
        """Make chunking and seeding deterministic."""
        self._state.seed = seed
        return self

    def with_backend(self, backend: str, workers: int | None = None) -> "Query":
        """Choose the execution backend for the partial stage.

        Args:
            backend: ``"threads"`` (default engine behaviour) or
                ``"processes"`` — partial clones run in worker processes
                fed over shared memory.  For a fixed seed the results are
                bit-identical across backends.
            workers: shorthand for :meth:`with_partial_clones` (one
                worker process per clone).
        """
        validated = validate_backend(backend)
        if validated == SHARDS:
            raise QueryError(
                "the 'shards' backend is not plan-based; use "
                "Query.with_shards(n) instead of with_backend('shards')"
            )
        if self._state.shards is not None:
            raise QueryError("with_backend conflicts with with_shards(); set one")
        self._state.backend = validated
        if workers is not None:
            if self._state.partial_clones is not None:
                raise QueryError(
                    "workers conflicts with with_partial_clones(); set one"
                )
            if workers < 1:
                raise QueryError(f"workers must be >= 1, got {workers}")
            self._state.partial_clones = workers
        return self

    def with_shards(self, shards: int, config: Any = None) -> "Query":
        """Run the query on the fault-tolerant shard-per-cell runtime.

        Instead of compiling a plan, :meth:`execute` hands the cells to
        :func:`repro.stream.shard.run_sharded`: ``shards`` worker
        processes each own a subset of the cells, journal their progress
        and survive worker loss (crash, silence, stall) with
        bit-identical recovery.  See :mod:`repro.stream.shard`.

        Shard runs are bit-identical to other shard runs with the same
        seed (regardless of ``shards`` or injected worker faults), but
        chunk cells with per-cell RNGs, so they are not bit-comparable
        with thread/process runs.

        Args:
            shards: worker processes to spawn.
            config: optional :class:`~repro.stream.shard.ShardConfig`
                carrying the remaining tuning (transport, heartbeats,
                reassignment budget); its ``n_workers`` is overridden by
                ``shards``.

        Raises:
            QueryError: if ``shards < 1`` or a backend was already set.
        """
        if shards < 1:
            raise QueryError(f"shards must be >= 1, got {shards}")
        if self._state.backend is not None:
            raise QueryError("with_shards conflicts with with_backend(); set one")
        self._state.shards = shards
        self._state.shard_config = config
        return self

    def with_kernel(self, kernel: str, exact: bool | None = None) -> "Query":
        """Choose the Lloyd assignment kernel for all k-means stages.

        Args:
            kernel: ``"dense"`` (reference), ``"hamerly"`` (single lower
                bound pruning), ``"elkan"`` (group bounds, the high-k
                winner) or ``"blas"`` (float32 GEMM, requires
                ``exact=False``).  Exact kernels are bit-identical in
                every output, so the choice is a pure performance knob —
                which is also why the checkpoint manifest does not record
                it: a journaled run may resume under a different exact
                kernel and still produce the same bits.
            exact: pass ``False`` to opt into the ``blas`` tier, which
                waives bit-identity for a documented MSE tolerance
                (:func:`repro.core.kernels.blas_mse_tolerance`).  Resuming
                a journal under ``exact=False`` forfeits the bit-identity
                resume guarantee.
        """
        try:
            # Full selection semantics (two tiers, deprecated aliases,
            # env interplay) live in resolve_kernel; validate through it
            # so Query can never accept a kernel execute() would reject.
            resolve_kernel(kernel, exact=exact)
        except ValueError as error:
            raise QueryError(str(error)) from None
        self._state.kernel = kernel
        self._state.exact = exact
        return self

    def with_prefix_queries(
        self, every: int | None = None, window: int | None = None
    ) -> "Query":
        """Maintain a coreset tree per cell for mid-stream clustering.

        Swaps the merge sink for a
        :class:`~repro.stream.coreset.CoresetTreeSink`: final models stay
        bit-identical (the tree rides alongside the exact one-shot
        merge), but the run additionally answers "what do the clusters
        look like right now?" in milliseconds from cached prefix merges.

        Args:
            every: issue (and log) a prefix query each time a cell's
                contiguous partition prefix crosses a multiple of this
                many partitions; ``None`` builds the tree without
                scheduled queries (``QueryResult.final_queries`` is still
                filled).
            window: when set, scheduled queries cluster only the last
                this-many chunks ("sliding window") instead of the whole
                prefix.
        """
        if every is not None and every < 1:
            raise QueryError(f"every must be >= 1, got {every}")
        if window is not None and window < 1:
            raise QueryError(f"window must be >= 1, got {window}")
        self._state.prefix_queries = True
        self._state.prefix_query_every = every
        self._state.prefix_query_window = window
        return self

    def with_supervision(
        self,
        policies: Mapping[str, SupervisionPolicy] | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> "Query":
        """Attach failure-handling policies to the query's operators.

        Args:
            policies: mapping from logical operator name (``"partial"``)
                to a :class:`SupervisionPolicy`; unlisted operators stay
                fail-fast.
            retry_policy: default per-item :class:`RetryPolicy` for every
                transform in the plan.
        """
        if policies:
            self._state.supervision.update(policies)
        if retry_policy is not None:
            self._state.retry_policy = retry_policy
        return self

    def checkpoint(
        self, run_dir: str | Path, resume: bool = False, fsync: bool = True
    ) -> "Query":
        """Journal the run into ``run_dir`` so a killed run can resume.

        Every completed partition summary and finalised cell model is
        appended (fsync'd, CRC-framed) to ``run_dir/journal.rjl``.  With
        ``resume=True`` an existing journal is validated against the
        current inputs and configuration, its completed work is replayed,
        and only unfinished partitions are recomputed — the final models
        are bit-identical to an uninterrupted run.

        Args:
            run_dir: checkpoint directory (created on demand).
            resume: continue an existing journal instead of refusing it.
            fsync: fsync every record (tests may turn this off for speed).
        """
        self._state.checkpoint_dir = str(run_dir)
        self._state.resume = resume
        self._state.checkpoint_fsync = fsync
        return self

    def on_corrupt(
        self, policy: str, quarantine_dir: str | Path | None = None
    ) -> "Query":
        """Set the corrupted-bucket policy for the bucket scan.

        Args:
            policy: ``"fail"`` (default behaviour) aborts the plan on the
                first corrupted bucket; ``"quarantine"`` moves the file
                into a ``quarantine/`` subdirectory, records the loss in
                the execution metrics and keeps scanning.
            quarantine_dir: where quarantined files go (default:
                ``<buckets>/quarantine``).
        """
        self._state.on_corrupt = policy
        if quarantine_dir is not None:
            self._state.quarantine_dir = str(quarantine_dir)
        return self

    def with_watchdog(self, stall_timeout: float) -> "Query":
        """Arm the executor's hung-operator watchdog.

        When no queue or operator makes progress for ``stall_timeout``
        seconds the run fails with
        :class:`~repro.stream.errors.OperatorStalled` and a stall
        diagnosis (thread stacks, queue depths) lands in the metrics.
        """
        if stall_timeout <= 0:
            raise QueryError(
                f"stall_timeout must be positive, got {stall_timeout}"
            )
        self._state.stall_timeout = stall_timeout
        return self

    # -- compilation ------------------------------------------------------------

    def _validate(self) -> None:
        if self._state.source_kind is None:
            raise QueryError("query has no source stage")
        if self._state.cluster_args is None:
            raise QueryError("query has no cluster stage")
        if self._state.n_chunks is None and not self._state.by_memory:
            raise QueryError(
                "query has no partitioning stage "
                "(call partition(n) or partition_by_memory())"
            )

    def _resources(self) -> ResourceManager:
        return (
            self._state.resources
            if self._state.resources is not None
            else ResourceManager()
        )

    def _build_graph(
        self,
        journal: JournalWriter | None = None,
        skip_cells: Iterable[str] = (),
        skip_partitions: Iterable[tuple[str, int]] = (),
    ) -> DataflowGraph:
        self._validate()
        state = self._state
        resources = self._resources()
        cluster = dict(state.cluster_args or {})
        merge = dict(state.merge_args or {"k": None, "criterion": None,
                                          "max_iter": cluster["max_iter"]})
        merge_k = merge["k"] if merge["k"] is not None else cluster["k"]

        graph = DataflowGraph()
        if state.source_kind == "cells":
            source = GridCellChunkSource(
                state.source_args["cells"],
                n_chunks=state.n_chunks,
                resources=resources if state.by_memory else None,
                seed=state.seed,
            )
            evaluate_on = state.source_args["cells"]
        else:
            source = BucketFileSource(
                state.source_args["directory"],
                resources=resources if state.by_memory else None,
                n_chunks=state.n_chunks,
                on_corrupt=state.on_corrupt,
                quarantine_dir=state.quarantine_dir,
                skip_cells=skip_cells,
                skip_partitions=skip_partitions,
                name="scan",
            )
            evaluate_on = None

        seed_sequence = (
            np.random.SeedSequence(state.seed) if state.seed is not None else None
        )
        partial = PartialKMeansOperator(
            k=cluster["k"],
            restarts=cluster["restarts"],
            seeding=cluster["seeding"],
            criterion=cluster["criterion"],
            max_iter=cluster["max_iter"],
            kernel=state.kernel,
            exact=state.exact,
            seed_sequence=seed_sequence,
        )
        if state.prefix_queries:
            sink: MergeKMeansSink = CoresetTreeSink(
                k=merge_k,
                criterion=merge["criterion"],
                max_iter=merge["max_iter"],
                kernel=state.kernel,
                exact=state.exact,
                evaluate_on=evaluate_on,
                journal=journal,
                query_every=state.prefix_query_every,
                query_window=state.prefix_query_window,
            )
        else:
            sink = MergeKMeansSink(
                k=merge_k,
                criterion=merge["criterion"],
                max_iter=merge["max_iter"],
                kernel=state.kernel,
                exact=state.exact,
                evaluate_on=evaluate_on,
                journal=journal,
            )
        graph.add(source, cost_hint=1.0)
        graph.add(partial, cost_hint=16.0)
        graph.add(sink, cost_hint=1.0)
        graph.connect(source.name, "partial")
        graph.connect("partial", "merge")
        for name, policy in state.supervision.items():
            graph.set_supervision(name, policy)
        return graph

    # -- terminal operations --------------------------------------------------

    def explain(self, printer=print) -> "Query":
        """Print the logical stages and the compiled physical plan."""
        self._validate()
        state = self._state
        cluster = state.cluster_args or {}
        partition_text = (
            f"partition_by_memory(budget="
            f"{self._resources().memory_budget_bytes} B)"
            if state.by_memory
            else f"partition(n_chunks={state.n_chunks})"
        )
        merge = state.merge_args or {}
        merge_k = merge.get("k") or cluster.get("k")
        printer("logical plan:")
        printer(f"  scan[{state.source_kind}]")
        printer(f"  -> {partition_text}")
        printer(
            f"  -> partial_kmeans(k={cluster.get('k')}, "
            f"restarts={cluster.get('restarts')}, "
            f"kernel={state.kernel or 'dense'})"
        )
        printer(f"  -> merge_kmeans(k={merge_k})")
        graph = self._build_graph()
        overrides = (
            {"partial": state.partial_clones} if state.partial_clones else None
        )
        plan = Planner(self._resources()).plan(graph, clone_overrides=overrides)
        printer(plan.describe())
        return self

    def execute(self, fault_plan: FaultPlan | None = None) -> QueryResult:
        """Compile, plan and run the query.

        Args:
            fault_plan: optional seeded chaos engine; targeted operators
                are wrapped with deterministic fault injection (tests).

        Returns:
            A :class:`QueryResult` with per-cell models and metrics.
        """
        self._validate()
        if self._state.shards is not None:
            return self._shard_execute(fault_plan)
        if self._state.checkpoint_dir is not None:
            return self._checkpointed_execute(fault_plan)
        graph = self._build_graph()
        outcome = self._run_plan(graph, fault_plan)
        return self._to_result(graph, outcome)

    def _shard_execute(self, fault_plan: FaultPlan | None) -> QueryResult:
        """Route the query to the shard-per-cell runtime."""
        from dataclasses import replace

        from repro.data.gridio import read_bucket_file
        from repro.stream.shard import ShardConfig, run_sharded

        state = self._state
        if state.checkpoint_dir is not None:
            raise QueryError(
                "checkpoint() is not supported with with_shards(): the "
                "shard runtime journals per cell internally"
            )
        if state.prefix_queries:
            raise QueryError(
                "with_prefix_queries() is not supported with with_shards()"
            )
        if state.source_kind == "cells":
            cells = state.source_args["cells"]
        else:
            directory = Path(state.source_args["directory"])
            paths = (
                [directory]
                if directory.is_file()
                else sorted(directory.glob("*.gbk"))
            )
            if not paths:
                raise QueryError(f"no .gbk bucket files under {directory}")
            cells = {}
            for path in paths:
                bucket = read_bucket_file(path)
                cells[bucket.cell_id.key] = bucket.points
        cluster = dict(state.cluster_args or {})
        merge = dict(state.merge_args or {})
        config = (
            state.shard_config
            if state.shard_config is not None
            else ShardConfig()
        )
        overrides: dict[str, Any] = {"n_workers": state.shards}
        if state.retry_policy is not None:
            overrides["reassign_policy"] = state.retry_policy
        if state.stall_timeout is not None:
            overrides["stall_timeout"] = state.stall_timeout
        config = replace(config, **overrides)
        models, metrics = run_sharded(
            cells,
            cluster["k"],
            restarts=cluster["restarts"],
            seeding=cluster["seeding"],
            n_chunks=state.n_chunks,
            resources=self._resources(),
            seed=state.seed,
            merge_k=merge.get("k"),
            criterion=cluster["criterion"],
            max_iter=cluster["max_iter"],
            kernel=state.kernel,
            exact=state.exact,
            config=config,
            fault_plan=fault_plan,
        )
        execution = ExecutionResult(value=models, metrics=metrics)
        return QueryResult(models=models, execution=execution)

    def _offline_tree_sink(self, journal_state: JournalState) -> CoresetTreeSink:
        """Rebuild per-cell coreset trees from a complete journal.

        Used when a resume finds the journaled run already finished: no
        stream runs, but the journaled partition summaries (plus the
        adopted ``tree_node`` merges) reconstruct every tree, replaying
        the scheduled query log and the final per-cell queries with the
        same bits the original run produced.
        """
        state = self._state
        cluster = dict(state.cluster_args or {})
        merge = dict(state.merge_args or {"k": None, "criterion": None,
                                          "max_iter": cluster["max_iter"]})
        merge_k = merge["k"] if merge["k"] is not None else cluster["k"]
        sink = CoresetTreeSink(
            k=merge_k,
            criterion=merge["criterion"],
            max_iter=merge["max_iter"],
            kernel=state.kernel,
            exact=state.exact,
            query_every=state.prefix_query_every,
            query_window=state.prefix_query_window,
        )
        sink.preload_tree_nodes(journal_state.tree_nodes)
        for cell_id in sorted(journal_state.partitions):
            by_partition = journal_state.partitions[cell_id]
            sink.preload_tree_messages(
                by_partition[index] for index in sorted(by_partition)
            )
        for cell_id, tree in sorted(sink.trees().items()):
            if tree.n_inserted:
                sink.final_queries[cell_id] = sink.query_now(cell_id)
        return sink

    def _to_result(
        self, graph: DataflowGraph, outcome: ExecutionResult
    ) -> QueryResult:
        """Assemble the result, lifting prefix-query logs off the sink."""
        sink = graph.operator("merge")
        if isinstance(sink, CoresetTreeSink):
            return QueryResult(
                models=outcome.value,
                execution=outcome,
                prefix_queries=list(sink.prefix_queries),
                final_queries=dict(sink.final_queries),
            )
        return QueryResult(models=outcome.value, execution=outcome)

    def _run_plan(
        self, graph: DataflowGraph, fault_plan: FaultPlan | None
    ) -> ExecutionResult:
        overrides = (
            {"partial": self._state.partial_clones}
            if self._state.partial_clones
            else None
        )
        plan = Planner(self._resources()).plan(
            graph,
            clone_overrides=overrides,
            fault_plan=fault_plan,
            stall_timeout=self._state.stall_timeout,
            backend=self._state.backend,
        )
        supervisor = Supervisor(retry_policy=self._state.retry_policy)
        return Executor(supervisor=supervisor).run(plan)

    def _manifest(self) -> dict[str, Any]:
        """JSON-safe description of the run's inputs and configuration.

        Corrupt bucket files are left out of the inventory: under the
        quarantine policy they are moved aside mid-run, so a resume must
        see the same inventory an uninterrupted run would have processed.
        The directory path itself is also omitted — the inventory
        identifies the inputs by content, not location.  The Lloyd kernel
        is deliberately not recorded either: exact kernels are
        bit-identical, so resuming a journal under a different exact
        kernel is valid (the ``blas`` tier waives this guarantee).
        """
        state = self._state
        cluster = dict(state.cluster_args or {})
        merge = dict(state.merge_args or {})
        directory = Path(state.source_args["directory"])
        paths = (
            [directory] if directory.is_file() else sorted(directory.glob("*.gbk"))
        )
        inventory = [
            entry for entry in bucket_inventory(paths) if "error" not in entry
        ]
        resources = self._resources()
        return {
            "source": "buckets",
            "inventory": inventory,
            "n_chunks": state.n_chunks,
            "by_memory": state.by_memory,
            "memory_budget": (
                resources.memory_budget_bytes if state.by_memory else None
            ),
            "k": cluster.get("k"),
            "restarts": cluster.get("restarts"),
            "seeding": cluster.get("seeding"),
            "max_iter": cluster.get("max_iter"),
            "criterion": repr(cluster.get("criterion")),
            "merge_k": merge.get("k") or cluster.get("k"),
            "merge_max_iter": merge.get("max_iter", cluster.get("max_iter")),
            "merge_criterion": repr(merge.get("criterion")),
            "seed": state.seed,
        }

    def _checkpointed_execute(
        self, fault_plan: FaultPlan | None
    ) -> QueryResult:
        state = self._state
        if state.source_kind != "buckets":
            raise QueryError("checkpoint() requires a scan_buckets source")
        recovery = RecoveryManager(state.checkpoint_dir)
        started = time.perf_counter()
        journal_state: JournalState | None = None
        if recovery.journal_exists():
            if not state.resume:
                raise CheckpointError(
                    f"{recovery.journal_path} already exists; pass "
                    "checkpoint(..., resume=True) to continue it or use a "
                    "fresh run directory"
                )
            journal_state = recovery.load()
        resumed = journal_state is not None
        if resumed and state.seed is None:
            recorded = (journal_state.manifest or {}).get("seed")
            if recorded is not None:
                state.seed = int(recorded)
        if state.seed is None:
            # A journaled run must be reproducible: without a fixed seed
            # the recomputed partitions could never match the journaled
            # ones, so pick one now and record it in the manifest.
            state.seed = int(np.random.SeedSequence().entropy)
        manifest = self._manifest()
        if resumed:
            RecoveryManager.validate_manifest(journal_state.manifest, manifest)
        recovery_seconds = time.perf_counter() - started

        if resumed and journal_state.complete:
            # Nothing to do: the journaled run finished.  Hand back its
            # models without touching a single bucket.
            metrics = ExecutionMetrics()
            metrics.checkpoint = CheckpointStats(
                journal_path=str(recovery.journal_path),
                partitions_replayed=sum(
                    len(parts) for parts in journal_state.partitions.values()
                ),
                cells_replayed=len(journal_state.cells),
                journal_bytes=recovery.journal_path.stat().st_size,
                recovery_seconds=recovery_seconds,
                resumed=True,
            )
            models = dict(journal_state.cells)
            prefix_queries: list[PrefixQuery] = []
            final_queries: dict[str, PrefixQuery] = {}
            if state.prefix_queries:
                # The run asked for prefix queries; answer them from the
                # journal alone.  Journaled partitions rebuild each tree
                # (adopting journaled node merges), which replays the
                # scheduled log per cell and the final query per cell
                # bit-identically to the original run.
                sink = self._offline_tree_sink(journal_state)
                prefix_queries = list(sink.prefix_queries)
                final_queries = dict(sink.final_queries)
                tree_stats = sink.tree_stats
                if tree_stats:
                    # ExecutionMetrics.tree_stats aggregates over
                    # operators; give the offline replay a merge-op entry.
                    replay_op = OperatorMetrics(name="merge")
                    replay_op.tree_stats.update(tree_stats)
                    metrics.operators.append(replay_op)
            return QueryResult(
                models=models,
                execution=ExecutionResult(value=models, metrics=metrics),
                prefix_queries=prefix_queries,
                final_queries=final_queries,
            )

        skip_cells: set[str] = set()
        skip_partitions: set[tuple[str, int]] = set()
        replay_messages: list[Any] = []
        if resumed:
            skip_cells = journal_state.completed_cells()
            replay_messages = journal_state.replayable_messages()
            skip_partitions = {
                (cell, partition)
                for cell, by_partition in journal_state.partitions.items()
                if cell not in skip_cells
                for partition in by_partition
            }

        writer = recovery.open_writer(fsync=state.checkpoint_fsync)
        try:
            if not resumed:
                writer.append_manifest(manifest)
            graph = self._build_graph(
                journal=writer,
                skip_cells=skip_cells,
                skip_partitions=skip_partitions,
            )
            sink = graph.operator("merge")
            assert isinstance(sink, MergeKMeansSink)
            if resumed:
                if isinstance(sink, CoresetTreeSink):
                    # Adopt journaled tree merges first so the replayed
                    # partitions rebuild every tree without recomputing
                    # the internal merges.
                    sink.preload_tree_nodes(journal_state.tree_nodes)
                for cell_id, model in journal_state.cells.items():
                    sink.preload_model(cell_id, model)
                if isinstance(sink, CoresetTreeSink):
                    # Cells with a journaled final model are excluded from
                    # replayable_messages(), but their trees must still
                    # exist for prefix queries: rebuild them from the
                    # journaled partitions (tree only — the merge state
                    # already adopted the final models above).  Cells that
                    # merely have every partition journaled arrive via the
                    # replay below instead.
                    for cell_id in sorted(journal_state.cells):
                        by_partition = journal_state.partitions.get(cell_id)
                        if by_partition:
                            sink.preload_tree_messages(
                                by_partition[index]
                                for index in sorted(by_partition)
                            )
                sink.preload(replay_messages)
            outcome = self._run_plan(graph, fault_plan)
            writer.append_complete()
            outcome.metrics.checkpoint = CheckpointStats(
                journal_path=str(recovery.journal_path),
                partitions_replayed=len(replay_messages),
                partitions_recomputed=writer.partition_records,
                cells_replayed=len(journal_state.cells) if resumed else 0,
                journal_bytes=writer.bytes_written(),
                recovery_seconds=recovery_seconds,
                resumed=resumed,
            )
        finally:
            writer.close()
        return self._to_result(graph, outcome)
