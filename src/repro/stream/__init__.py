"""Conquest-style data-stream engine.

The substrate the paper's prototype ran on: pipelined operators connected
by bounded smart queues, compiled from a logical dataflow graph into a
physical plan whose parallelizable operators are cloned according to the
available resources.

Public surface:

* :class:`~repro.stream.graph.DataflowGraph` — logical queries.
* :class:`~repro.stream.planner.Planner` /
  :class:`~repro.stream.executor.Executor` — compile and run.
* :class:`~repro.stream.scheduler.ResourceManager` — memory/worker envelope.
* :mod:`~repro.stream.kmeans_ops` — the paper's partial/merge operators.
"""

from repro.stream.adaptive import AdaptationEvent, AdaptiveExecutor
from repro.stream.checkpoint import (
    CheckpointError,
    JournalFormatError,
    JournalState,
    JournalWriter,
    ManifestMismatchError,
    RecoveryManager,
    read_journal,
)
from repro.stream.coreset import (
    CoresetNode,
    CoresetTree,
    CoresetTreeError,
    CoresetTreeSink,
    PrefixQuery,
)
from repro.stream.distributed import (
    ClusterSpec,
    DistributedSimulation,
    MachineSpec,
    NetworkSpec,
    SimEvent,
    SimReport,
    calibrate_ops_per_second,
    paper_testbed,
)
from repro.stream.errors import (
    ExecutionError,
    GraphValidationError,
    InjectedFault,
    OperatorError,
    OperatorStalled,
    OperatorTimeout,
    QueueClosedError,
    QueueTimeout,
    ShardError,
    ShardWorkerLost,
    StreamError,
    WorkerCrashed,
)
from repro.stream.executor import ExecutionResult, Executor
from repro.stream.faults import FaultPlan, FaultSpec, InjectionEvent
from repro.stream.file_source import BucketFileSource
from repro.stream.graph import DataflowGraph
from repro.stream.items import CentroidMessage, DataChunk, ModelMessage, Watermark
from repro.stream.kmeans_ops import (
    GridCellChunkSource,
    MergeKMeansSink,
    PartialKMeansOperator,
    PartialKMeansSpec,
    build_partial_merge_graph,
    run_partial_merge_stream,
)
from repro.stream.metrics import (
    CheckpointStats,
    ExecutionMetrics,
    OperatorMetrics,
    RecoveryEvent,
    ShardWorkerStats,
    StallEvent,
    WorkerProcessStats,
)
from repro.stream.mp import (
    PROCESSES,
    SHARDS,
    THREADS,
    OperatorSpec,
    ProcessBackedTransform,
    resolve_backend,
    start_worker,
    validate_backend,
)
from repro.stream.operators import FunctionTransform, Operator, Sink, Source, Transform
from repro.stream.planner import PhysicalOperator, PhysicalPlan, Planner
from repro.stream.query import Query, QueryError, QueryResult
from repro.stream.shard import CellTask, ShardConfig, ShardCoordinator, run_sharded
from repro.stream.queues import END_OF_STREAM, QueueStats, SmartQueue
from repro.stream.supervision import (
    RetryPolicy,
    SupervisionPolicy,
    Supervisor,
)
from repro.stream.tracing import dump_metrics_json, metrics_to_dict, render_gantt
from repro.stream.scheduler import DEFAULT_MEMORY_BUDGET, ResourceManager

__all__ = [
    "AdaptationEvent",
    "AdaptiveExecutor",
    "ClusterSpec",
    "DistributedSimulation",
    "MachineSpec",
    "NetworkSpec",
    "SimEvent",
    "SimReport",
    "calibrate_ops_per_second",
    "paper_testbed",
    "StreamError",
    "GraphValidationError",
    "QueueClosedError",
    "QueueTimeout",
    "WorkerCrashed",
    "OperatorError",
    "ExecutionError",
    "InjectedFault",
    "OperatorTimeout",
    "OperatorStalled",
    "ShardError",
    "ShardWorkerLost",
    "CheckpointError",
    "JournalFormatError",
    "JournalState",
    "JournalWriter",
    "ManifestMismatchError",
    "RecoveryManager",
    "read_journal",
    "ExecutionResult",
    "Executor",
    "FaultPlan",
    "FaultSpec",
    "InjectionEvent",
    "RetryPolicy",
    "SupervisionPolicy",
    "Supervisor",
    "BucketFileSource",
    "DataflowGraph",
    "CentroidMessage",
    "DataChunk",
    "ModelMessage",
    "Watermark",
    "CoresetNode",
    "CoresetTree",
    "CoresetTreeError",
    "CoresetTreeSink",
    "PrefixQuery",
    "GridCellChunkSource",
    "MergeKMeansSink",
    "PartialKMeansOperator",
    "PartialKMeansSpec",
    "build_partial_merge_graph",
    "run_partial_merge_stream",
    "ExecutionMetrics",
    "OperatorMetrics",
    "CheckpointStats",
    "RecoveryEvent",
    "ShardWorkerStats",
    "StallEvent",
    "WorkerProcessStats",
    "PROCESSES",
    "SHARDS",
    "THREADS",
    "OperatorSpec",
    "ProcessBackedTransform",
    "resolve_backend",
    "start_worker",
    "validate_backend",
    "FunctionTransform",
    "Operator",
    "Sink",
    "Source",
    "Transform",
    "PhysicalOperator",
    "PhysicalPlan",
    "Planner",
    "Query",
    "QueryError",
    "QueryResult",
    "CellTask",
    "ShardConfig",
    "ShardCoordinator",
    "run_sharded",
    "END_OF_STREAM",
    "QueueStats",
    "SmartQueue",
    "DEFAULT_MEMORY_BUDGET",
    "ResourceManager",
    "dump_metrics_json",
    "metrics_to_dict",
    "render_gantt",
]
