"""Coreset merge tree: millisecond clustering queries mid-stream.

The partial/merge pipeline only yields a cell's model when its final
watermark arrives; answering "what do the clusters look like *right
now*?" would otherwise cost a full re-merge over every buffered
partition.  Following Zhang, Tangwongsan & Tirthapura ("Streaming
k-Means Clustering with Fast Queries", see PAPERS.md), this module
maintains a per-cell **coreset tree** over the arriving weighted-centroid
partitions:

* every :class:`~repro.stream.items.CentroidMessage` becomes a leaf;
* whenever two subtrees of equal height exist they are eagerly merged
  (binary-counter discipline), each internal node caching the *reduced*
  ``k``-centroid summary of its dyadic partition range — so the live
  merge frontier is always the O(log P) binary decomposition of the
  inserted prefix;
* a **prefix query** pools the O(log P) frontier summaries and runs one
  tiny weighted k-means over ≤ ``k·log P`` centroids instead of the
  ``k·P`` a full re-merge touches — and repeated queries at the same
  prefix are answered from a result cache without any k-means at all;
* a **window query** ("cluster the last N chunks") re-merges only the
  O(log N) maximal tree nodes covering the window, descending into
  cached children where a frontier node straddles the window boundary.

Two exactness tiers coexist deliberately:

* **final models are exact** — :class:`CoresetTreeSink` subclasses
  :class:`~repro.stream.kmeans_ops.MergeKMeansSink`, so a completed
  cell's model is produced by the identical one-shot collective merge
  over the raw partition summaries, bit-identical to a run without the
  tree;
* **mid-stream queries are coreset approximations** — hierarchical
  composition of cached node merges.  Their weight mass is conserved
  exactly; their SSE is benchmarked against the exact model in
  ``benchmarks/test_bench_prefix_query.py`` (``BENCH_prefix.json``).

Determinism: leaves enter the tree in **partition order** (out-of-order
arrivals from cloned partial operators are stashed until the gap fills),
and every node merge is the deterministic largest-weight-seeded
:func:`~repro.core.merge.merge_kmeans` — so the tree, and every query
answer, is a pure function of the partition summaries.  That makes
thread- and process-backend runs bit-identical, and lets a crash-resume
rebuild the tree exactly from the journal's ``partition`` records
(adopting journaled ``tree_node`` records instead of recomputing the
merges).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kernels import merge_counter_dicts
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.merge import merge_kmeans
from repro.core.model import WeightedCentroidSet
from repro.stream.errors import StreamError
from repro.stream.items import CentroidMessage
from repro.stream.kmeans_ops import MergeKMeansSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stream.checkpoint import JournalWriter

__all__ = [
    "CoresetTreeError",
    "CoresetNode",
    "PrefixQuery",
    "CoresetTree",
    "CoresetTreeSink",
]


class CoresetTreeError(StreamError):
    """A coreset-tree query cannot be answered (empty tree, bad window)."""


@dataclass
class CoresetNode:
    """One node of the coreset tree.

    A node covers the dyadic partition range ``[start, start + count)``.
    Leaves (``count == 1``) hold a partition's raw weighted centroids;
    internal nodes hold the reduced ``k``-centroid merge of their two
    children.  Children are retained so window queries can descend below
    the live frontier; every retained summary is at most ``k`` centroids,
    so the whole tree stays O(P·k·d) floats for P partitions while the
    live frontier (:attr:`CoresetTree.roots`) stays O(log P) nodes.

    Attributes:
        start: first partition index covered.
        count: number of partitions covered (a power of two).
        height: ``log2(count)`` — 0 for leaves.
        summary: the node's weighted centroid summary.
        left: left child (``None`` for leaves).
        right: right child (``None`` for leaves).
        seconds: wall-clock spent computing this node's merge (0 for
            leaves and for nodes adopted from a journal).
        preloaded: whether the summary was adopted from journaled
            ``tree_node`` records instead of being recomputed.
    """

    start: int
    count: int
    height: int
    summary: WeightedCentroidSet
    left: "CoresetNode | None" = None
    right: "CoresetNode | None" = None
    seconds: float = 0.0
    preloaded: bool = False

    @property
    def end(self) -> int:
        """One past the last partition index covered."""
        return self.start + self.count

    @property
    def total_weight(self) -> float:
        """Weight mass summarised by this node."""
        return self.summary.total_weight


@dataclass(frozen=True)
class PrefixQuery:
    """Answer to one mid-stream clustering query.

    Attributes:
        cell_id: the queried grid cell (filled in by the sink; empty for
            queries issued directly against a :class:`CoresetTree`).
        start: first partition index covered by the answer.
        upto: one past the last partition index covered; a prefix query
            covers ``[0, upto)``, a window query ``[start, upto)``.
        model: the clustering — at most ``k`` weighted centroids whose
            weight mass equals the total mass of the covered partitions.
        nodes_reused: cached tree nodes pooled to form the answer.
        merge_iterations: Lloyd iterations the answering merge ran (0
            when the pooled frontier already had ≤ ``k`` centroids, or
            when the answer came from the query cache).
        cached: whether the answer was served from the query-result cache
            without running any k-means.
        seconds: wall-clock spent answering.
    """

    cell_id: str
    start: int
    upto: int
    model: WeightedCentroidSet
    nodes_reused: int
    merge_iterations: int
    cached: bool
    seconds: float

    @property
    def partitions(self) -> int:
        """Number of partitions the answer covers."""
        return self.upto - self.start


class CoresetTree:
    """Binary-counter coreset tree over one cell's partition stream.

    Args:
        k: centroids per node summary and per query answer.
        criterion: convergence criterion for node/query merges (paper
            default when ``None``).
        max_iter: Lloyd iteration cap for node/query merges.
        kernel: assignment backend for all merges (exact kernels are
            bit-identical, so this is a pure performance knob).
        exact: ``False`` opts into the tolerance-close ``blas`` tier.
        node_sink: optional callback ``(start, count, summary)`` invoked
            for every *computed* internal merge — the journaling hook.
        preloaded: optional mapping ``(start, count) -> summary`` of
            journaled node summaries; matching internal merges are
            adopted instead of recomputed (crash-resume fast path).
    """

    def __init__(
        self,
        k: int,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        kernel: str | None = None,
        exact: bool | None = None,
        node_sink: Callable[[int, int, WeightedCentroidSet], None] | None = None,
        preloaded: Mapping[tuple[int, int], WeightedCentroidSet] | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.criterion = criterion
        self.max_iter = max_iter
        self.kernel = kernel
        self.exact = exact
        self._node_sink = node_sink
        self._preloaded = dict(preloaded or {})
        self._roots: list[CoresetNode] = []
        self._stash: dict[int, CentroidMessage] = {}
        self._next = 0
        self._query_cache: dict[
            tuple[int, int], tuple[WeightedCentroidSet, int, int]
        ] = {}
        #: Internal merges computed by this tree instance.
        self.node_merges = 0
        #: Internal merges adopted from journaled ``tree_node`` records.
        self.nodes_preloaded = 0
        #: Queries answered (including cache hits).
        self.queries = 0
        #: Queries answered from the result cache without any k-means.
        self.query_cache_hits = 0
        #: Wall-clock spent answering queries.
        self.query_seconds = 0.0
        #: Kernel instrumentation aggregated over node and query merges.
        self.kernel_counters: dict = {}

    # -- growth --------------------------------------------------------------

    @property
    def n_inserted(self) -> int:
        """Partitions merged into the tree (the contiguous prefix length)."""
        return self._next

    @property
    def n_stashed(self) -> int:
        """Out-of-order partitions waiting for the gap before them."""
        return len(self._stash)

    @property
    def depth(self) -> int:
        """Height of the tallest frontier node (0 for an empty tree)."""
        return max((root.height for root in self._roots), default=0)

    @property
    def roots(self) -> list[CoresetNode]:
        """Live frontier: the binary decomposition of ``[0, n_inserted)``."""
        return list(self._roots)

    def nodes(self) -> Iterator[CoresetNode]:
        """Every node in the tree (frontier plus retained descendants)."""
        stack = list(self._roots)
        while stack:
            node = stack.pop()
            yield node
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    @property
    def n_nodes(self) -> int:
        """Total nodes retained (leaves plus internal)."""
        return sum(1 for _ in self.nodes())

    def offer(self, message: CentroidMessage) -> int:
        """Stash ``message`` and drain the contiguous partition prefix.

        Leaves enter the tree strictly in partition order — an
        out-of-order arrival waits until every earlier partition has
        arrived, which is what makes the tree a pure function of the
        partition summaries regardless of clone scheduling or backend.
        Duplicate partitions (a journal replay racing a recompute would
        be a bug upstream) are rejected.

        Returns:
            Number of partitions drained into the tree by this offer.
        """
        index = message.partition
        if index < self._next or index in self._stash:
            raise ValueError(
                f"duplicate partition {index} offered to coreset tree "
                f"(prefix already at {self._next})"
            )
        self._stash[index] = message
        drained = 0
        while self._next in self._stash:
            self._push_leaf(self._stash.pop(self._next))
            self._next += 1
            drained += 1
        return drained

    def _push_leaf(self, message: CentroidMessage) -> None:
        self._roots.append(
            CoresetNode(
                start=message.partition,
                count=1,
                height=0,
                summary=message.summary,
            )
        )
        # Binary counter: merging equal-height neighbours keeps the
        # frontier at one node per set bit of the prefix length.
        while (
            len(self._roots) >= 2
            and self._roots[-1].count == self._roots[-2].count
        ):
            right = self._roots.pop()
            left = self._roots.pop()
            self._roots.append(self._merge_pair(left, right))

    def _merge_pair(self, left: CoresetNode, right: CoresetNode) -> CoresetNode:
        start, count = left.start, left.count + right.count
        adopted = self._preloaded.get((start, count))
        began = time.perf_counter()
        if adopted is not None:
            summary = adopted
            self.nodes_preloaded += 1
        else:
            result = merge_kmeans(
                [left.summary, right.summary],
                self.k,
                criterion=self.criterion,
                max_iter=self.max_iter,
                kernel=self.kernel,
                exact=self.exact,
            )
            summary = result.model
            self.node_merges += 1
            if result.counters is not None and result.counters.assign_calls:
                merge_counter_dicts(
                    self.kernel_counters, result.counters.as_dict()
                )
            if self._node_sink is not None:
                self._node_sink(start, count, summary)
        return CoresetNode(
            start=start,
            count=count,
            height=left.height + 1,
            summary=summary,
            left=left,
            right=right,
            seconds=time.perf_counter() - began,
            preloaded=adopted is not None,
        )

    # -- queries -------------------------------------------------------------

    def _resolve_upto(self, upto: int | None) -> int:
        if self._next == 0:
            raise CoresetTreeError(
                "coreset tree is empty: no contiguous partition prefix yet"
            )
        if upto is None:
            return self._next
        if not 1 <= upto <= self._next:
            raise CoresetTreeError(
                f"prefix length {upto} out of range [1, {self._next}]"
            )
        return upto

    def query_prefix(self, upto: int | None = None) -> PrefixQuery:
        """Cluster the prefix ``[0, upto)`` (default: all inserted).

        Cost: one weighted k-means over the pooled O(log P) maximal
        nodes covering the prefix (≤ ``k·log P`` centroids); a repeat
        query at the same prefix is a cache hit and runs no k-means at
        all.  Because retained children let the tree cover *historical*
        prefixes, ``query_prefix(upto=m)`` is bit-identical to the query
        of a fresh tree holding only the first ``m`` partitions.

        Raises:
            CoresetTreeError: no partition inserted yet, or ``upto``
                exceeds the inserted prefix.
        """
        return self._query_range(0, self._resolve_upto(upto))

    def query_window(
        self, last_n: int, upto: int | None = None
    ) -> PrefixQuery:
        """Cluster the last ``last_n`` partitions of the prefix ``[0, upto)``.

        Covers ``[max(0, upto - last_n), upto)`` with the O(log N)
        maximal tree nodes inside the window, descending into retained
        children where a node straddles the window boundary.

        Raises:
            CoresetTreeError: empty tree, ``last_n < 1`` or ``upto`` out
                of range.
        """
        if last_n < 1:
            raise CoresetTreeError(f"window must be >= 1 chunk, got {last_n}")
        end = self._resolve_upto(upto)
        return self._query_range(max(0, end - last_n), end)

    def _query_range(self, a: int, b: int) -> PrefixQuery:
        began = time.perf_counter()
        self.queries += 1
        cached = self._query_cache.get((a, b))
        if cached is not None:
            model, nodes_reused, iterations = cached
            self.query_cache_hits += 1
            seconds = time.perf_counter() - began
            self.query_seconds += seconds
            return PrefixQuery(
                cell_id="",
                start=a,
                upto=b,
                model=model,
                nodes_reused=nodes_reused,
                merge_iterations=iterations,
                cached=True,
                seconds=seconds,
            )
        nodes = self._cover(a, b)
        result = merge_kmeans(
            [node.summary for node in nodes],
            self.k,
            criterion=self.criterion,
            max_iter=self.max_iter,
            kernel=self.kernel,
            exact=self.exact,
        )
        if result.counters is not None and result.counters.assign_calls:
            merge_counter_dicts(self.kernel_counters, result.counters.as_dict())
        model = result.model
        self._query_cache[(a, b)] = (model, len(nodes), result.iterations)
        seconds = time.perf_counter() - began
        self.query_seconds += seconds
        return PrefixQuery(
            cell_id="",
            start=a,
            upto=b,
            model=model,
            nodes_reused=len(nodes),
            merge_iterations=result.iterations,
            cached=False,
            seconds=seconds,
        )

    def _cover(self, a: int, b: int) -> list[CoresetNode]:
        """Maximal nodes covering ``[a, b)``, in partition order."""
        covering: list[CoresetNode] = []
        for root in self._roots:
            self._cover_node(root, a, b, covering)
        return covering

    def _cover_node(
        self, node: CoresetNode, a: int, b: int, out: list[CoresetNode]
    ) -> None:
        if node.start >= b or node.end <= a:
            return
        if a <= node.start and node.end <= b:
            out.append(node)
            return
        # Partial overlap: leaves are atomic (count == 1, so they are
        # always fully inside or outside a partition-aligned range) and
        # internal nodes retain their children, so descent always works.
        assert node.left is not None and node.right is not None
        self._cover_node(node.left, a, b, out)
        self._cover_node(node.right, a, b, out)


class CoresetTreeSink(MergeKMeansSink):
    """Merge sink that additionally maintains a coreset tree per cell.

    Final models are **exactly** those of the parent
    :class:`~repro.stream.kmeans_ops.MergeKMeansSink` — the tree rides
    alongside the one-shot collective merge, it never replaces it — so
    swapping this sink in changes no result bit.  What it adds:

    * :meth:`query_now` / :meth:`query_last` — millisecond clustering of
      any cell's stream prefix (or trailing window) at any point;
    * a scheduled query log (``query_every``): a prefix query is issued
      every time a cell's contiguous prefix grows past a multiple of
      ``query_every`` partitions, recorded in :attr:`prefix_queries`
      (these are the latencies ``BENCH_prefix.json`` studies);
    * journaled ``tree_node`` records (when a journal is attached), so a
      crash-resume rebuilds every tree bit-identically without redoing
      the internal merges;
    * :attr:`tree_stats` — depth/node/merge/cache counters the executor
      copies into the run's :class:`~repro.stream.metrics.ExecutionMetrics`.

    Args:
        query_every: issue (and log) a prefix query each time a cell's
            inserted prefix crosses a multiple of this many partitions;
            ``None`` disables scheduled queries (ad-hoc queries still
            work).
        query_window: when set, scheduled queries cluster only the last
            this-many chunks instead of the whole prefix.

    Other arguments match :class:`~repro.stream.kmeans_ops.MergeKMeansSink`.
    """

    def __init__(
        self,
        k: int,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        kernel: str | None = None,
        exact: bool | None = None,
        evaluate_on: Mapping[str, np.ndarray] | None = None,
        journal: "JournalWriter | None" = None,
        query_every: int | None = None,
        query_window: int | None = None,
        name: str = "merge",
    ) -> None:
        super().__init__(
            k=k,
            criterion=criterion,
            max_iter=max_iter,
            kernel=kernel,
            exact=exact,
            evaluate_on=evaluate_on,
            journal=journal,
            name=name,
        )
        if query_every is not None and query_every < 1:
            raise ValueError(f"query_every must be >= 1, got {query_every}")
        if query_window is not None and query_window < 1:
            raise ValueError(f"query_window must be >= 1, got {query_window}")
        self.query_every = query_every
        self.query_window = query_window
        self._trees: dict[str, CoresetTree] = {}
        self._preloaded_nodes: dict[
            str, dict[tuple[int, int], WeightedCentroidSet]
        ] = {}
        self._last_scheduled: dict[str, int] = {}
        #: Scheduled query log, in issue order.
        self.prefix_queries: list[PrefixQuery] = []
        #: Final prefix query per cell, filled by :meth:`result`.
        self.final_queries: dict[str, PrefixQuery] = {}

    # -- tree plumbing -------------------------------------------------------

    def tree(self, cell_id: str) -> CoresetTree:
        """The cell's coreset tree (created on first use)."""
        tree = self._trees.get(cell_id)
        if tree is None:
            node_sink = None
            if self._journal is not None:
                journal = self._journal

                def node_sink(start, count, summary, _cell=cell_id):
                    journal.append_tree_node(_cell, start, count, summary)

            tree = CoresetTree(
                k=self.k,
                criterion=self.criterion,
                max_iter=self.max_iter,
                kernel=self.kernel,
                exact=self.exact,
                node_sink=node_sink,
                preloaded=self._preloaded_nodes.get(cell_id),
            )
            self._trees[cell_id] = tree
        return tree

    def trees(self) -> dict[str, CoresetTree]:
        """All per-cell trees built so far."""
        return dict(self._trees)

    def preload_tree_nodes(
        self,
        nodes_by_cell: Mapping[
            str, Mapping[tuple[int, int], WeightedCentroidSet]
        ],
    ) -> None:
        """Adopt journaled node summaries (call before any insertion)."""
        for cell_id, nodes in nodes_by_cell.items():
            self._preloaded_nodes.setdefault(cell_id, {}).update(nodes)

    def consume(self, item) -> None:
        super().consume(item)
        if isinstance(item, CentroidMessage):
            self._insert(item)

    def preload(self, messages: Iterable[CentroidMessage]) -> None:
        """Replay journaled partitions into merge state *and* the tree."""
        messages = list(messages)
        for message in messages:
            self._insert(message)
        super().preload(messages)

    def preload_tree_messages(
        self, messages: Iterable[CentroidMessage]
    ) -> None:
        """Rebuild a completed cell's tree from journaled partitions.

        Unlike :meth:`preload` this feeds only the tree: the cell's final
        model was already adopted via ``preload_model``, so the merge
        state must not see the partitions again.
        """
        for message in messages:
            self._insert(message)

    def _insert(self, message: CentroidMessage) -> None:
        tree = self.tree(message.cell_id)
        if tree.offer(message) and self.query_every is not None:
            self._maybe_scheduled_query(message.cell_id, tree)

    def _maybe_scheduled_query(self, cell_id: str, tree: CoresetTree) -> None:
        # One query per crossed multiple of query_every, issued at exactly
        # that prefix length: a stash drain can advance the prefix past
        # several multiples at once (cloned partials deliver out of
        # order), and querying the historical prefixes keeps the log a
        # pure function of the partition summaries — identical across
        # arrival orders and backends.
        assert self.query_every is not None
        upto = tree.n_inserted
        due = self._last_scheduled.get(cell_id, 0) + self.query_every
        while due <= upto:
            if self.query_window is not None:
                answer = tree.query_window(self.query_window, upto=due)
            else:
                answer = tree.query_prefix(upto=due)
            self.prefix_queries.append(replace(answer, cell_id=cell_id))
            self._last_scheduled[cell_id] = due
            due += self.query_every

    # -- queries -------------------------------------------------------------

    def _require_tree(self, cell_id: str) -> CoresetTree:
        tree = self._trees.get(cell_id)
        if tree is None or tree.n_inserted == 0:
            raise CoresetTreeError(
                f"no coreset tree for cell {cell_id!r} "
                "(no contiguous partition prefix has arrived)"
            )
        return tree

    def query_now(self, cell_id: str) -> PrefixQuery:
        """Cluster ``cell_id``'s inserted stream prefix right now."""
        answer = self._require_tree(cell_id).query_prefix()
        return replace(answer, cell_id=cell_id)

    def query_last(self, cell_id: str, last_n: int) -> PrefixQuery:
        """Cluster the last ``last_n`` inserted chunks of ``cell_id``."""
        answer = self._require_tree(cell_id).query_window(last_n)
        return replace(answer, cell_id=cell_id)

    # -- results and accounting ----------------------------------------------

    def result(self):
        models = super().result()
        for cell_id in sorted(self._trees):
            tree = self._trees[cell_id]
            if tree.n_inserted:
                self.final_queries[cell_id] = self.query_now(cell_id)
            if tree.kernel_counters:
                merge_counter_dicts(
                    self.kernel_counters.setdefault("coreset", {}),
                    tree.kernel_counters,
                )
        return models

    @property
    def tree_stats(self) -> dict:
        """Aggregated tree accounting (copied into execution metrics)."""
        if not self._trees:
            return {}
        trees = self._trees.values()
        return {
            "cells": len(self._trees),
            "partitions": sum(tree.n_inserted for tree in trees),
            "nodes": sum(tree.n_nodes for tree in trees),
            "max_depth": max(tree.depth for tree in trees),
            "node_merges": sum(tree.node_merges for tree in trees),
            "nodes_preloaded": sum(tree.nodes_preloaded for tree in trees),
            "queries": sum(tree.queries for tree in trees),
            "query_cache_hits": sum(tree.query_cache_hits for tree in trees),
            "query_seconds": sum(tree.query_seconds for tree in trees),
            "scheduled_queries": len(self.prefix_queries),
        }
