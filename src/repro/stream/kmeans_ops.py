"""Partial/merge k-means as stream operators.

This module wires the :mod:`repro.core` kernels into the stream engine the
way the paper's prototype wired them into Conquest:

* :class:`GridCellChunkSource` — the scan operator; emits each grid cell's
  points as randomly assigned, memory-sized :class:`DataChunk` items.
* :class:`PartialKMeansOperator` — cloneable transform; clusters one chunk
  into a :class:`CentroidMessage` of weighted centroids.
* :class:`MergeKMeansSink` — the consumer; pools each cell's weighted
  centroids and runs the collective merge k-means, finalising a cell as
  soon as its last partition arrives.

:func:`run_partial_merge_stream` assembles the graph, plans it against a
resource envelope (which decides partial clone counts) and executes it.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kernels import merge_counter_dicts
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.merge import merge_kmeans
from repro.core.model import ClusterModel, as_points
from repro.core.partial import partial_kmeans
from repro.core.pipeline import split_into_chunks
from repro.core.quality import mse as evaluate_mse
from repro.stream.executor import ExecutionResult, Executor
from repro.stream.faults import FaultPlan
from repro.stream.graph import DataflowGraph
from repro.stream.items import CentroidMessage, DataChunk, Watermark
from repro.stream.mp import SHARDS, resolve_backend
from repro.stream.operators import Sink, Source, Transform
from repro.stream.planner import Planner
from repro.stream.scheduler import ResourceManager
from repro.stream.supervision import RetryPolicy, SupervisionPolicy, Supervisor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (checkpoint uses items)
    from repro.stream.checkpoint import JournalWriter

__all__ = [
    "GridCellChunkSource",
    "PartialKMeansOperator",
    "PartialKMeansSpec",
    "MergeKMeansSink",
    "build_partial_merge_graph",
    "run_partial_merge_stream",
]


class GridCellChunkSource(Source):
    """Scan operator: streams grid cells as random equal-sized chunks.

    Models the paper's scan step: all points of a cell "arrive
    sequentially, and in random order"; the source slices them into the
    number of partitions dictated by the memory budget (or an explicit
    ``n_chunks``).

    Args:
        cells: mapping from cell id to its ``(n, d)`` point array.
        n_chunks: fixed partition count per cell; ``None`` derives it from
            ``resources`` (the adaptive behaviour the paper argues for).
        resources: memory envelope used when ``n_chunks`` is ``None``.
        seed: RNG seed controlling the random chunk assignment.
        name: operator name.
    """

    def __init__(
        self,
        cells: Mapping[str, np.ndarray],
        n_chunks: int | None = None,
        resources: ResourceManager | None = None,
        seed: int | None = None,
        name: str = "scan",
    ) -> None:
        super().__init__(name)
        if not cells:
            raise ValueError("cells mapping must not be empty")
        if n_chunks is None and resources is None:
            raise ValueError("provide either n_chunks or resources")
        self._cells = {
            cell: self._coerce(points) for cell, points in cells.items()
        }
        self._n_chunks = n_chunks
        self._resources = resources
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def _coerce(points: np.ndarray) -> np.ndarray:
        """Validate one cell's points, allowing the zero-point cell."""
        arr = np.asarray(points, dtype=np.float64)
        if arr.size == 0:
            dim = arr.shape[1] if arr.ndim == 2 else 1
            return np.zeros((0, max(1, dim)), dtype=np.float64)
        return as_points(arr)

    def generate(self) -> Iterator[DataChunk | Watermark]:
        for cell_id, points in self._cells.items():
            if points.shape[0] == 0:
                # A cell with no points produces no chunks, but it must
                # still appear in the results: announce it with a
                # zero-partition watermark so the merge sink records an
                # empty model instead of the cell silently vanishing.
                yield Watermark(
                    cell_id,
                    n_partitions=0,
                    payload={"dim": int(points.shape[1]), "n_points": 0},
                )
                continue
            if self._n_chunks is not None:
                chunks_wanted = self._n_chunks
            else:
                assert self._resources is not None
                chunks_wanted = self._resources.partitions_for(
                    points.shape[0], points.shape[1]
                )
            chunks_wanted = min(chunks_wanted, points.shape[0])
            chunks = split_into_chunks(points, chunks_wanted, self._rng)
            for index, chunk in enumerate(chunks):
                yield DataChunk(
                    cell_id=cell_id,
                    partition=index,
                    points=chunk,
                    n_partitions=len(chunks),
                )


class PartialKMeansOperator(Transform):
    """Cloneable transform running partial k-means on each chunk.

    Every chunk's RNG is derived from the base seed and the chunk's
    identity ``(cell_id, partition)`` — never from processing order — so
    a partition's weighted centroids depend only on the seed and the
    chunk's points.  That makes parallel plans reproducible for a fixed
    seed *regardless of clone count or scheduling*, and it is what lets a
    journal resume (:mod:`repro.stream.checkpoint`) skip completed
    partitions and still produce a bit-identical final model.  Clones
    share the base seed sequence for the same reason.
    """

    def __init__(
        self,
        k: int,
        restarts: int = 10,
        seeding: str = "random",
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        kernel: str | None = None,
        exact: bool | None = None,
        seed_sequence: np.random.SeedSequence | None = None,
        name: str = "partial",
    ) -> None:
        super().__init__(name)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.restarts = restarts
        self.seeding = seeding
        self.criterion = criterion
        self.max_iter = max_iter
        self.kernel = kernel
        self.exact = exact
        self._seed_sequence = (
            seed_sequence if seed_sequence is not None else np.random.SeedSequence()
        )

    def clone(self) -> "PartialKMeansOperator":
        return PartialKMeansOperator(
            k=self.k,
            restarts=self.restarts,
            seeding=self.seeding,
            criterion=self.criterion,
            max_iter=self.max_iter,
            kernel=self.kernel,
            exact=self.exact,
            seed_sequence=self._seed_sequence,
            name=self.name,
        )

    def _rng_for_chunk(self, cell_id: str, partition: int) -> np.random.Generator:
        """Chunk-identity RNG: a pure function of (seed, cell, partition)."""
        digest = hashlib.blake2b(cell_id.encode("utf-8"), digest_size=8).digest()
        base = self._seed_sequence
        derived = np.random.SeedSequence(
            entropy=base.entropy,
            spawn_key=tuple(base.spawn_key)
            + (
                int.from_bytes(digest[:4], "little"),
                int.from_bytes(digest[4:], "little"),
                partition,
            ),
        )
        return np.random.default_rng(derived)

    def process(
        self, item: DataChunk | Watermark
    ) -> Iterator[CentroidMessage | Watermark]:
        if isinstance(item, Watermark):
            # Control messages pass through untouched; the merge sink
            # correlates them with the per-cell message count, so clone
            # reordering cannot finalise a cell early.
            yield item
            return
        result = partial_kmeans(
            item.points,
            self.k,
            self.restarts,
            self._rng_for_chunk(item.cell_id, item.partition),
            source=f"{item.cell_id}/P{item.partition}",
            seeding=self.seeding,
            criterion=self.criterion,
            max_iter=self.max_iter,
            kernel=self.kernel,
            exact=self.exact,
        )
        yield CentroidMessage(
            cell_id=item.cell_id,
            partition=item.partition,
            summary=result.summary,
            n_partitions=item.n_partitions,
            partial_seconds=result.seconds,
            partial_iterations=result.iterations,
            kernel_counters=(
                result.counters.as_dict() if result.counters else None
            ),
        )

    def to_spec(self) -> "PartialKMeansSpec":
        """Picklable recipe for the process backend (rebuilds this clone)."""
        base = self._seed_sequence
        return PartialKMeansSpec(
            k=self.k,
            restarts=self.restarts,
            seeding=self.seeding,
            criterion=self.criterion,
            max_iter=self.max_iter,
            kernel=self.kernel,
            exact=self.exact,
            entropy=base.entropy,
            spawn_key=tuple(base.spawn_key),
            name=self.name,
        )


@dataclass(frozen=True)
class PartialKMeansSpec:
    """Picklable recipe rebuilding a :class:`PartialKMeansOperator`.

    The process backend ships this spec to the worker instead of the
    operator itself.  ``entropy``/``spawn_key`` reconstruct the shared
    seed sequence exactly, so a worker-built clone derives the same
    chunk-identity RNG streams as the in-process original — which is why
    thread- and process-backend runs of the same plan are bit-identical.
    """

    k: int
    restarts: int
    seeding: str
    criterion: ConvergenceCriterion | None
    max_iter: int
    entropy: int
    spawn_key: tuple[int, ...]
    name: str
    kernel: str | None = None
    exact: bool | None = None

    def build(self) -> PartialKMeansOperator:
        return PartialKMeansOperator(
            k=self.k,
            restarts=self.restarts,
            seeding=self.seeding,
            criterion=self.criterion,
            max_iter=self.max_iter,
            kernel=self.kernel,
            exact=self.exact,
            seed_sequence=np.random.SeedSequence(
                entropy=self.entropy, spawn_key=self.spawn_key
            ),
            name=self.name,
        )


class MergeKMeansSink(Sink):
    """Terminal consumer: collective merge k-means per grid cell.

    A cell is finalised eagerly once all of its partitions have arrived
    (count known from the messages); any cells still pending at end of
    stream are finalised in :meth:`result`.

    Every final model's ``extra`` dict carries ``merge_iterations`` (int)
    and ``partial_iterations`` (list of int, in partition order).  A cell
    finalised with partitions missing (``degrade`` drops upstream)
    additionally carries ``incomplete`` (True), ``expected_partitions``
    (int) and ``missing_partitions`` (sorted list of int); a declared
    empty cell carries ``empty_cell`` (True) instead.  All values are
    JSON-safe, so the shape survives a journal round-trip — subclasses
    (:class:`~repro.stream.coreset.CoresetTreeSink`) share this contract.

    Args:
        k: centroids in each final cell model.
        evaluate_on: optional mapping of cell id to raw points; when given,
            each final model's MSE is recomputed against the raw data so
            results are directly comparable with the serial baseline.
        journal: optional run journal
            (:class:`~repro.stream.checkpoint.JournalWriter`); every
            streamed partition summary is journaled on arrival and every
            finalised cell model on completion, which is what makes a
            killed run resumable.
    """

    def __init__(
        self,
        k: int,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        kernel: str | None = None,
        exact: bool | None = None,
        evaluate_on: Mapping[str, np.ndarray] | None = None,
        journal: "JournalWriter | None" = None,
        name: str = "merge",
    ) -> None:
        super().__init__(name)
        self.k = k
        self.criterion = criterion
        self.max_iter = max_iter
        self.kernel = kernel
        self.exact = exact
        self._evaluate_on = dict(evaluate_on or {})
        self._journal = journal
        self._pending: dict[str, list[CentroidMessage]] = {}
        self._expected: dict[str, int] = {}
        self._models: dict[str, ClusterModel] = {}
        #: Cells finalised with partitions missing (a ``degrade`` drop
        #: upstream), in finalisation order; the executor copies this
        #: into the sink's :class:`~repro.stream.metrics.OperatorMetrics`.
        self.incomplete_cells: list[str] = []
        #: Kernel instrumentation aggregated across the run, keyed by
        #: pipeline stage (``"partial"`` counters arrive on the centroid
        #: messages — surviving the process backend for free — and
        #: ``"merge"`` counters come from the sink's own merge runs).
        #: The executor copies this into the sink's ``OperatorMetrics``.
        self.kernel_counters: dict[str, dict] = {}

    def preload(self, messages: Iterable[CentroidMessage]) -> None:
        """Replay journaled partition summaries without re-journaling them.

        Used on resume: completed partitions flow straight into the merge
        state, and cells whose last partition was already journaled are
        finalised immediately.
        """
        for message in messages:
            bucket = self._pending.setdefault(message.cell_id, [])
            bucket.append(message)
            if message.n_partitions:
                self._expected[message.cell_id] = message.n_partitions
        for cell_id in list(self._pending):
            self._maybe_finalize(cell_id)

    def preload_model(self, cell_id: str, model: ClusterModel) -> None:
        """Adopt an already-finalised cell model from the journal."""
        self._models[cell_id] = model

    def consume(self, item: CentroidMessage | Watermark) -> None:
        if isinstance(item, Watermark):
            # A source that could not pre-count partitions announces the
            # final count here.  Finalisation still waits for every
            # partition's message, so watermarks overtaking in-flight
            # chunks (possible with cloned partial operators) are safe.
            self._expected[item.cell_id] = item.n_partitions
            if item.n_partitions == 0:
                # A declared-empty cell: no chunks will ever arrive, so
                # record an explicit empty model for it now.
                model = ClusterModel.empty(
                    int(item.payload.get("dim", 1)),
                    method="partial/merge[stream]",
                    extra={"empty_cell": True},
                )
                self._models[item.cell_id] = model
                if self._journal is not None:
                    self._journal.append_cell(item.cell_id, model)
                return
            self._maybe_finalize(item.cell_id)
            return
        if self._journal is not None:
            self._journal.append_partition(item)
        bucket = self._pending.setdefault(item.cell_id, [])
        bucket.append(item)
        if item.n_partitions:
            self._expected[item.cell_id] = item.n_partitions
        self._maybe_finalize(item.cell_id)

    def _maybe_finalize(self, cell_id: str) -> None:
        expected = self._expected.get(cell_id)
        bucket = self._pending.get(cell_id)
        if expected and bucket and len(bucket) == expected:
            self._finalize(cell_id)

    def result(self) -> dict[str, ClusterModel]:
        for cell_id in list(self._pending):
            self._finalize(cell_id)
        return dict(self._models)

    def _finalize(self, cell_id: str) -> None:
        messages = self._pending.pop(cell_id, [])
        if not messages:
            return
        messages.sort(key=lambda m: m.partition)
        start = time.perf_counter()
        merged = merge_kmeans(
            [m.summary for m in messages],
            self.k,
            criterion=self.criterion,
            max_iter=self.max_iter,
            kernel=self.kernel,
            exact=self.exact,
        )
        total = time.perf_counter() - start
        for message in messages:
            if message.kernel_counters:
                merge_counter_dicts(
                    self.kernel_counters.setdefault("partial", {}),
                    message.kernel_counters,
                )
        if merged.counters is not None and merged.counters.assign_calls:
            merge_counter_dicts(
                self.kernel_counters.setdefault("merge", {}),
                merged.counters.as_dict(),
            )
        raw = self._evaluate_on.get(cell_id)
        final_mse = (
            evaluate_mse(raw, merged.model.centroids) if raw is not None else merged.mse
        )
        partial_seconds = sum(m.partial_seconds for m in messages)
        extra: dict = {
            "merge_iterations": merged.iterations,
            "partial_iterations": [m.partial_iterations for m in messages],
        }
        expected = self._expected.get(cell_id, 0)
        if expected and len(messages) != expected:
            # Finalising short: partitions were dropped upstream (degrade
            # policy).  The model is still usable, but the loss must be
            # visible — both on the model and in the execution metrics.
            # Shape contract (shared with CoresetTreeSink, asserted by
            # tests and JSON-journal-safe): ``incomplete`` is True,
            # ``expected_partitions`` is an int, ``missing_partitions`` is
            # a sorted list of ints.
            present = {m.partition for m in messages}
            extra["incomplete"] = True
            extra["expected_partitions"] = int(expected)
            extra["missing_partitions"] = sorted(
                int(p) for p in set(range(expected)) - present
            )
            self.incomplete_cells.append(cell_id)
        model = ClusterModel(
            centroids=merged.model.centroids,
            weights=merged.model.weights,
            mse=final_mse,
            method="partial/merge[stream]",
            partitions=len(messages),
            partial_seconds=partial_seconds,
            merge_seconds=merged.seconds,
            total_seconds=partial_seconds + total,
            extra=extra,
        )
        self._models[cell_id] = model
        if self._journal is not None:
            self._journal.append_cell(cell_id, model)


def build_partial_merge_graph(
    cells: Mapping[str, np.ndarray],
    k: int,
    restarts: int = 10,
    n_chunks: int | None = None,
    resources: ResourceManager | None = None,
    seed: int | None = None,
    evaluate_against_raw: bool = True,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    kernel: str | None = None,
    exact: bool | None = None,
) -> DataflowGraph:
    """Assemble the scan → partial → merge dataflow for ``cells``."""
    graph = DataflowGraph()
    source = GridCellChunkSource(
        cells, n_chunks=n_chunks, resources=resources, seed=seed
    )
    seed_sequence = np.random.SeedSequence(seed) if seed is not None else None
    partial = PartialKMeansOperator(
        k=k,
        restarts=restarts,
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
        seed_sequence=seed_sequence,
    )
    merge = MergeKMeansSink(
        k=k,
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
        evaluate_on=cells if evaluate_against_raw else None,
    )
    graph.add(source, cost_hint=1.0)
    # The paper: partial k-means "is by far the most expensive computation".
    graph.add(partial, cost_hint=16.0)
    graph.add(merge, cost_hint=1.0)
    graph.connect("scan", "partial")
    graph.connect("partial", "merge")
    return graph


def run_partial_merge_stream(
    cells: Mapping[str, np.ndarray],
    k: int,
    restarts: int = 10,
    n_chunks: int | None = None,
    resources: ResourceManager | None = None,
    partial_clones: int | None = None,
    seed: int | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    fault_plan: FaultPlan | None = None,
    supervision: Mapping[str, SupervisionPolicy] | None = None,
    retry_policy: RetryPolicy | None = None,
    backend: str | None = None,
    workers: int | None = None,
    kernel: str | None = None,
    exact: bool | None = None,
) -> tuple[dict[str, ClusterModel], ExecutionResult]:
    """Cluster every grid cell with the streamed partial/merge pipeline.

    Args:
        cells: mapping from cell id to its points.
        k: centroids per cell.
        restarts: random-seed restarts per partition.
        n_chunks: fixed partitions per cell; ``None`` derives them from
            the memory budget.
        resources: resource envelope for planning (default host envelope).
        partial_clones: pin the number of partial-operator clones (the
            speed-up experiment's knob); ``None`` lets the planner decide.
        seed: RNG seed for chunking and seeding.
        criterion: convergence criterion for all k-means stages.
        max_iter: Lloyd iteration cap for all stages.
        fault_plan: optional seeded chaos engine (testing); targeted
            operators are wrapped with deterministic fault injection.
        supervision: per-logical-operator failure policies (e.g.
            ``{"partial": SupervisionPolicy.restart(1)}``); unlisted
            operators fail fast.
        retry_policy: default per-item retry policy for all transforms.
        backend: run partial-k-means clones on ``"threads"`` or
            ``"processes"`` (worker processes fed over shared memory);
            ``None`` defers to the ``REPRO_STREAM_BACKEND`` environment
            variable, then ``"threads"``.  Results are bit-identical
            across backends for a fixed seed.  ``"shards"`` routes the
            whole run to the fault-tolerant shard-per-cell runtime
            (:func:`repro.stream.shard.run_sharded`) instead of the
            plan-based engine — shard runs are bit-identical to other
            shard runs with the same seed, but chunk cells with per-cell
            RNGs, so they are not bit-comparable with thread/process
            runs.
        workers: shorthand for ``partial_clones`` aimed at the process
            backend (one worker process per clone); ignored when
            ``partial_clones`` is given explicitly.
        kernel: Lloyd assignment backend for the partial and merge stages
            (``"dense"``/``"hamerly"``/``"elkan"``/``"blas"``); ``None``
            consults the ``REPRO_KMEANS_KERNEL`` environment variable.
            Exact kernels are bit-identical, so the flag never changes
            results — counters in the execution metrics show what it
            saved.
        exact: ``False`` opts into the tolerance-close ``blas`` tier,
            which waives bit-identity for speed (see
            :func:`repro.core.kernels.blas_mse_tolerance`).

    Returns:
        ``(models, execution_result)`` where ``models`` maps cell id to
        its final :class:`ClusterModel`.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if partial_clones is None and workers is not None:
        partial_clones = workers
    envelope = resources if resources is not None else ResourceManager()
    if resolve_backend(backend) == SHARDS:
        # Lazy import: shard pulls in multiprocessing.connection and is
        # only needed on this path.
        from repro.stream.shard import ShardConfig, run_sharded

        shard_config = ShardConfig(n_workers=partial_clones or 2)
        if retry_policy is not None:
            shard_config = replace(shard_config, reassign_policy=retry_policy)
        models, metrics = run_sharded(
            cells,
            k,
            restarts=restarts,
            seeding="random",
            n_chunks=n_chunks,
            resources=envelope,
            seed=seed,
            criterion=criterion,
            max_iter=max_iter,
            kernel=kernel,
            exact=exact,
            config=shard_config,
            fault_plan=fault_plan,
        )
        return models, ExecutionResult(value=models, metrics=metrics)
    graph = build_partial_merge_graph(
        cells,
        k,
        restarts=restarts,
        n_chunks=n_chunks,
        resources=envelope,
        seed=seed,
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
    )
    for name, policy in (supervision or {}).items():
        graph.set_supervision(name, policy)
    overrides = {"partial": partial_clones} if partial_clones else None
    plan = Planner(envelope).plan(
        graph, clone_overrides=overrides, fault_plan=fault_plan, backend=backend
    )
    supervisor = Supervisor(retry_policy=retry_policy)
    outcome = Executor(supervisor=supervisor).run(plan)
    return outcome.value, outcome
