"""Scan operator over grid-bucket files.

:class:`BucketFileSource` is the disk-backed counterpart of
:class:`~repro.stream.kmeans_ops.GridCellChunkSource`: it reads each
``.gbk`` bucket file in a directory with the one-pass streaming reader and
emits memory-sized :class:`~repro.stream.items.DataChunk` items — the
whole cell is never resident, which is the paper's point.

The chunk size is derived from the header (point count and
dimensionality) and the resource envelope, so the same source adapts from
250-point to million-point cells without configuration.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.data.gridio import read_bucket_header, stream_bucket_points
from repro.stream.items import DataChunk
from repro.stream.operators import Source
from repro.stream.scheduler import ResourceManager

__all__ = ["BucketFileSource"]


class BucketFileSource(Source):
    """Stream grid-bucket files as memory-sized data chunks.

    Args:
        directory: directory containing ``.gbk`` bucket files.
        resources: memory envelope; decides the chunk size per cell.
        n_chunks: fixed chunk count per cell, overriding the memory
            derivation (used to replay the paper's 5/10-split setup from
            disk).
        name: operator name.

    Raises:
        ValueError: if the directory contains no bucket files.
    """

    def __init__(
        self,
        directory: str | Path,
        resources: ResourceManager | None = None,
        n_chunks: int | None = None,
        name: str = "scan-files",
    ) -> None:
        super().__init__(name)
        self._paths = sorted(Path(directory).glob("*.gbk"))
        if not self._paths:
            raise ValueError(f"no .gbk bucket files under {directory}")
        if n_chunks is not None and n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        self._resources = resources if resources is not None else ResourceManager()
        self._n_chunks = n_chunks

    def generate(self) -> Iterator[DataChunk]:
        for path in self._paths:
            cell_id, n_points, dim = read_bucket_header(path)
            if self._n_chunks is not None:
                n_chunks = min(self._n_chunks, n_points)
                chunk_points = -(-n_points // n_chunks)
            else:
                chunk_points = self._resources.max_points_per_partition(dim)
                n_chunks = -(-n_points // chunk_points)
            for partition, chunk in enumerate(
                stream_bucket_points(path, chunk_points)
            ):
                yield DataChunk(
                    cell_id=cell_id.key,
                    partition=partition,
                    points=chunk,
                    n_partitions=n_chunks,
                )
