"""Scan operator over grid-bucket files.

:class:`BucketFileSource` is the disk-backed counterpart of
:class:`~repro.stream.kmeans_ops.GridCellChunkSource`: it reads each
``.gbk`` bucket file in a directory with the one-pass streaming reader and
emits memory-sized :class:`~repro.stream.items.DataChunk` items — the
whole cell is never resident, which is the paper's point.

The chunk size is derived from the header (point count and
dimensionality) and the resource envelope, so the same source adapts from
250-point to million-point cells without configuration.

Robustness knobs:

* ``on_corrupt`` — what a :class:`~repro.data.gridio.GridBucketFormatError`
  in one bucket does to the directory scan.  ``"fail"`` (default) aborts
  the plan, the historical behaviour; ``"quarantine"`` moves the offending
  file into a ``quarantine/`` subdirectory, records the loss (surfaced in
  execution metrics) and keeps scanning — one bad bucket no longer costs
  the other thousand.
* ``skip_cells`` / ``skip_partitions`` — resume support for the run
  journal (:mod:`repro.stream.checkpoint`): fully-journaled buckets are
  never re-read (header only), and individually journaled partitions of a
  partially-complete bucket are read (the one-pass CRC still covers the
  file) but not re-emitted.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Collection, Iterator

from repro.data.gridio import (
    GridBucketFormatError,
    read_bucket_header,
    stream_bucket_points,
)
from repro.stream.items import DataChunk
from repro.stream.operators import Source
from repro.stream.scheduler import ResourceManager

__all__ = ["BucketFileSource", "FAIL", "QUARANTINE", "QUARANTINE_DIRNAME"]

FAIL = "fail"
QUARANTINE = "quarantine"
_POLICIES = (FAIL, QUARANTINE)

#: Subdirectory corrupted buckets are moved into under ``quarantine`` policy.
QUARANTINE_DIRNAME = "quarantine"


class BucketFileSource(Source):
    """Stream grid-bucket files as memory-sized data chunks.

    Args:
        directory: directory containing ``.gbk`` bucket files, or a
            single ``.gbk`` file.
        resources: memory envelope; decides the chunk size per cell.
        n_chunks: fixed chunk count per cell, overriding the memory
            derivation (used to replay the paper's 5/10-split setup from
            disk).
        on_corrupt: ``"fail"`` aborts the scan on the first corrupted
            bucket; ``"quarantine"`` moves it aside and keeps going.
        quarantine_dir: where quarantined files go (default:
            ``<directory>/quarantine``).
        skip_cells: cell keys whose buckets are not re-read (their
            summaries are replayed from a run journal).
        skip_partitions: ``(cell_key, partition)`` pairs that are read
            but not re-emitted (journal resume of partial cells).
        name: operator name.

    Raises:
        ValueError: if the directory contains no bucket files or the
            corruption policy is unknown.
    """

    def __init__(
        self,
        directory: str | Path,
        resources: ResourceManager | None = None,
        n_chunks: int | None = None,
        on_corrupt: str = FAIL,
        quarantine_dir: str | Path | None = None,
        skip_cells: Collection[str] = (),
        skip_partitions: Collection[tuple[str, int]] = (),
        name: str = "scan-files",
    ) -> None:
        super().__init__(name)
        root = Path(directory)
        if root.is_file():
            self._paths = [root]
            default_quarantine = root.parent / QUARANTINE_DIRNAME
        else:
            self._paths = sorted(root.glob("*.gbk"))
            default_quarantine = root / QUARANTINE_DIRNAME
        if not self._paths:
            raise ValueError(f"no .gbk bucket files under {directory}")
        if n_chunks is not None and n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        if on_corrupt not in _POLICIES:
            raise ValueError(
                f"unknown corruption policy {on_corrupt!r}; use {_POLICIES}"
            )
        self._resources = resources if resources is not None else ResourceManager()
        self._n_chunks = n_chunks
        self._on_corrupt = on_corrupt
        self._quarantine_dir = (
            Path(quarantine_dir) if quarantine_dir is not None else default_quarantine
        )
        self._skip_cells = frozenset(skip_cells)
        self._skip_partitions = frozenset(skip_partitions)
        #: ``"filename: reason"`` per quarantined bucket, in scan order;
        #: the executor copies this into the operator's metrics.
        self.quarantined: list[str] = []

    def _quarantine(self, path: Path, error: GridBucketFormatError) -> None:
        self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        # Same-basename buckets from different directories must not
        # clobber each other: uniquify with a numeric suffix.
        target = self._quarantine_dir / path.name
        attempt = 0
        while target.exists():
            attempt += 1
            target = self._quarantine_dir / f"{path.stem}.{attempt}{path.suffix}"
        shutil.move(str(path), str(target))
        self.quarantined.append(f"{path.name}: {error}")

    def generate(self) -> Iterator[DataChunk]:
        for path in self._paths:
            try:
                cell_id, n_points, dim = read_bucket_header(path)
            except GridBucketFormatError as exc:
                if self._on_corrupt == FAIL:
                    raise
                self._quarantine(path, exc)
                continue
            if cell_id.key in self._skip_cells:
                continue
            if self._n_chunks is not None:
                n_chunks = min(self._n_chunks, n_points)
                chunk_points = -(-n_points // n_chunks)
            else:
                chunk_points = self._resources.max_points_per_partition(dim)
                n_chunks = -(-n_points // chunk_points)
            try:
                for partition, chunk in enumerate(
                    stream_bucket_points(path, chunk_points)
                ):
                    if (cell_id.key, partition) in self._skip_partitions:
                        continue
                    yield DataChunk(
                        cell_id=cell_id.key,
                        partition=partition,
                        points=chunk,
                        n_partitions=n_chunks,
                    )
            except GridBucketFormatError as exc:
                # Mid-stream corruption (the end-of-file CRC): chunks
                # already emitted stay in flight; the merge sink finalises
                # the cell from whatever partitions arrive, and the loss
                # is recorded here.
                if self._on_corrupt == FAIL:
                    raise
                self._quarantine(path, exc)
