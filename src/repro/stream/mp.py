"""Process-parallel execution backend with shared-memory chunk transfer.

The paper's Figure 8 speed-up comes from cloning the partial k-means
operator across *machines*; the thread backend approximates that only as
far as numpy releases the GIL, so the Lloyd loop's pure-Python overhead
serialises clones.  This module supplies real process parallelism while
keeping the engine's dataflow untouched:

* Each process-backed physical transform keeps its executor thread, but
  that thread becomes a *dispatcher*: it feeds items to a dedicated
  worker process and relays the results into the output queue.  Sources,
  sinks and queues stay in-process, so the journal, merge state and
  backpressure semantics are identical to the thread backend.
* Bulk point arrays cross the process boundary through
  :mod:`multiprocessing.shared_memory`: the dispatcher copies a chunk's
  points into a segment and sends a small header (name, shape, dtype)
  over the pipe — point payloads are never pickled.  Centroid summaries
  coming back are tiny (``k × (d+1)`` floats) and travel pickled.
* Workers rebuild their operator from a picklable **spec**: an operator
  opts into the backend by implementing ``to_spec()`` returning an
  object with a ``build()`` method.  A spec-built clone must make
  ``process`` a pure function of the item and the spec (true for
  :class:`~repro.stream.kmeans_ops.PartialKMeansOperator`, whose
  chunk-identity RNG depends only on the seed and ``(cell, partition)``),
  which is exactly what makes process runs bit-identical to thread runs.

Operators without a spec — and operators supervised with the ``restart``
policy, whose snapshot/replay recovery needs an in-process instance —
transparently keep running on their thread.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing import shared_memory
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.stream.errors import WorkerCrashed
from repro.stream.items import DataChunk
from repro.stream.metrics import WorkerProcessStats
from repro.stream.operators import Transform

__all__ = [
    "THREADS",
    "PROCESSES",
    "SHARDS",
    "BACKEND_ENV_VAR",
    "OperatorSpec",
    "ProcessBackedTransform",
    "WorkerHandle",
    "default_mp_context",
    "resolve_backend",
    "start_worker",
    "supports_process_backend",
    "validate_backend",
]

THREADS = "threads"
PROCESSES = "processes"
SHARDS = "shards"
_BACKENDS = (THREADS, PROCESSES, SHARDS)

#: Environment override for the default backend; lets CI smoke the whole
#: stream test suite on the process backend without touching call sites.
BACKEND_ENV_VAR = "REPRO_STREAM_BACKEND"

#: Environment override for the multiprocessing start method.
MP_CONTEXT_ENV_VAR = "REPRO_MP_CONTEXT"


def validate_backend(backend: str) -> str:
    """Return ``backend`` if known, else raise ``ValueError``."""
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; use one of {_BACKENDS}"
        )
    return backend


def resolve_backend(*candidates: str | None) -> str:
    """Effective backend: first explicit candidate, then the environment.

    Args:
        candidates: backend names in priority order; ``None`` entries are
            skipped (e.g. ``resolve_backend(plan.backend, self.backend)``).

    Returns:
        ``"threads"``, ``"processes"`` or ``"shards"``; falls back to
        the :data:`BACKEND_ENV_VAR` environment variable and finally to
        ``"threads"``.

    Raises:
        ValueError: when a candidate — or the environment variable — is
            not a known backend name.  A typo'd ``REPRO_STREAM_BACKEND``
            must fail loudly, not silently run on the default backend.
    """
    for candidate in candidates:
        if candidate is not None:
            return validate_backend(candidate)
    env = os.environ.get(BACKEND_ENV_VAR)
    if env is not None and env.strip():
        value = env.strip()
        if value not in _BACKENDS:
            raise ValueError(
                f"unknown execution backend {value!r} in "
                f"{BACKEND_ENV_VAR}; use one of {_BACKENDS}"
            )
        return value
    return THREADS


def default_mp_context() -> str:
    """Start method for worker processes.

    ``fork`` where available (workers start in milliseconds and the spec
    round-trips through the pipe anyway, so nothing relies on inherited
    state); ``spawn`` elsewhere.  Overridable via :data:`MP_CONTEXT_ENV_VAR`.
    """
    env = os.environ.get(MP_CONTEXT_ENV_VAR)
    if env:
        return env
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@runtime_checkable
class OperatorSpec(Protocol):
    """Picklable recipe rebuilding one transform inside a worker process."""

    def build(self) -> Transform:
        """Construct the operator the worker will run."""
        ...


def supports_process_backend(operator: Any) -> bool:
    """Whether an operator can be offloaded (implements ``to_spec``)."""
    return callable(getattr(operator, "to_spec", None))


# -- shared-memory chunk transfer -------------------------------------------


def _chunk_to_shm(chunk: DataChunk) -> tuple[dict, shared_memory.SharedMemory]:
    """Copy a chunk's points into a fresh shared-memory segment.

    Returns the pipe-sized header (identity + segment name + dtype/shape
    handshake) and the segment, whose lifetime the caller owns: unlink
    only after the worker has replied, i.e. attached and finished.
    """
    points = chunk.points
    segment = shared_memory.SharedMemory(create=True, size=max(1, points.nbytes))
    target = np.ndarray(points.shape, dtype=points.dtype, buffer=segment.buf)
    target[...] = points
    header = {
        "cell_id": chunk.cell_id,
        "partition": chunk.partition,
        "n_partitions": chunk.n_partitions,
        "shm_name": segment.name,
        "shape": tuple(points.shape),
        "dtype": points.dtype.str,
    }
    return header, segment


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    CPython < 3.13 registers a segment with the resource tracker even on
    attach (bpo-39959).  The parent owns segment lifetime, so the worker
    must not take part in tracker bookkeeping at all: under the fork
    start method the tracker process is shared, and a worker-side
    registration/unregistration races the parent's own unlink (the
    tracker logs a KeyError for whichever unregister lands second).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - track= keyword is 3.13+
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _chunk_from_shm(header: dict) -> DataChunk:
    """Rebuild a chunk in the worker from its shared-memory header.

    The points are copied into worker-private memory so the parent can
    unlink the segment the moment the reply arrives.
    """
    segment = _attach_untracked(header["shm_name"])
    try:
        view = np.ndarray(
            header["shape"], dtype=np.dtype(header["dtype"]), buffer=segment.buf
        )
        points = np.array(view)
    finally:
        segment.close()
    return DataChunk(
        cell_id=header["cell_id"],
        partition=header["partition"],
        points=points,
        n_partitions=header["n_partitions"],
    )


# -- worker process ----------------------------------------------------------


def _encode_exception(exc: BaseException) -> tuple[bytes | None, str]:
    """Pickle an exception for the pipe, keeping the traceback as text."""
    text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        payload = pickle.dumps(exc)
    except Exception:
        payload = None
    return payload, text


def _decode_exception(
    worker_name: str, encoded: tuple[bytes | None, str]
) -> BaseException:
    """Rebuild a worker-side exception; fall back to :class:`WorkerCrashed`."""
    payload, text = encoded
    if payload is not None:
        try:
            return pickle.loads(payload)
        except Exception:
            pass
    return WorkerCrashed(
        worker_name, f"operator raised an untransferable error:\n{text}"
    )


def _worker_main(conn) -> None:
    """Worker process loop: build the operator, answer task messages.

    Protocol (all messages are tuples; first element is the kind):

    * ``("init", spec)`` → ``("ready", pid)`` or ``("initerr", error)``
    * ``("chunk", header)`` → ``("ok", outputs, seconds)`` /
      ``("err", error, seconds)`` — points arrive via shared memory
    * ``("item", item)`` → same replies — pickled control items
    * ``("stop",)`` → ``("bye",)`` and exit
    """
    operator: Transform | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "init":
            try:
                operator = message[1].build()
            except BaseException as exc:  # noqa: BLE001 - reported to parent
                conn.send(("initerr", _encode_exception(exc)))
                return
            conn.send(("ready", os.getpid()))
        elif kind in ("chunk", "item"):
            started = time.perf_counter()
            try:
                if kind == "chunk":
                    item: Any = _chunk_from_shm(message[1])
                else:
                    item = message[1]
                assert operator is not None, "task before init"
                outputs = list(operator.process(item))
                conn.send(("ok", outputs, time.perf_counter() - started))
            except BaseException as exc:  # noqa: BLE001 - reported to parent
                conn.send(
                    ("err", _encode_exception(exc), time.perf_counter() - started)
                )
        elif kind == "stop":
            conn.send(("bye",))
            conn.close()
            return


@dataclass
class WorkerHandle:
    """Parent-side handle on one worker process.

    One handle serves one physical operator instance; its dispatcher
    thread is the only caller, so submissions are synchronous and need no
    locking.

    Attributes:
        name: physical operator name the worker serves.
        process: the :class:`multiprocessing.Process`.
        conn: parent end of the task pipe.
        stats: live accounting (shared with the execution metrics).
    """

    name: str
    process: Any
    conn: Any
    stats: WorkerProcessStats = field(default=None)  # type: ignore[assignment]

    def submit(self, item: Any) -> list:
        """Run ``item`` through the worker's operator; return its outputs.

        Data chunks travel via shared memory; anything else is pickled.

        Raises:
            WorkerCrashed: the worker died mid-task or its error could
                not be transferred.
            BaseException: whatever the remote operator raised, rebuilt
                locally (so retry/supervision policies see the original
                exception type).
        """
        if isinstance(item, DataChunk):
            header, segment = _chunk_to_shm(item)
            try:
                self.conn.send(("chunk", header))
                self.stats.shm_bytes += item.points.nbytes
                return self._receive()
            finally:
                segment.close()
                segment.unlink()
        self.conn.send(("item", item))
        return self._receive()

    def _receive(self) -> list:
        try:
            reply = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashed(
                self.name, f"worker process died mid-task ({exc!r})"
            ) from exc
        if reply[0] == "ok":
            _, outputs, seconds = reply
            self.stats.items += 1
            self.stats.busy_seconds += seconds
            return outputs
        _, encoded, seconds = reply
        self.stats.busy_seconds += seconds
        raise _decode_exception(self.name, encoded)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the worker, escalating to ``terminate`` if it lingers."""
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def start_worker(
    spec: OperatorSpec, name: str, mp_context: str | None = None
) -> WorkerHandle:
    """Start one worker process and build ``spec``'s operator inside it.

    Args:
        spec: picklable operator spec (``build()`` runs in the worker).
        name: physical operator name, used for labels and diagnostics.
        mp_context: multiprocessing start method; default
            :func:`default_mp_context`.

    Returns:
        A ready :class:`WorkerHandle` (the worker has confirmed its
        operator was built).

    Raises:
        WorkerCrashed: the worker died before confirming readiness.
        BaseException: ``spec.build()`` raised in the worker; rebuilt here.
    """
    ctx = get_context(mp_context or default_mp_context())
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(
        target=_worker_main,
        args=(child_conn,),
        name=f"stream-worker-{name}",
        daemon=True,
    )
    started = time.perf_counter()
    process.start()
    child_conn.close()
    handle = WorkerHandle(name=name, process=process, conn=parent_conn)
    try:
        parent_conn.send(("init", spec))
        reply = parent_conn.recv()
    except (EOFError, OSError) as exc:
        handle.shutdown(timeout=1.0)
        raise WorkerCrashed(
            name, f"worker process died during startup ({exc!r})"
        ) from exc
    if reply[0] != "ready":
        handle.shutdown(timeout=1.0)
        raise _decode_exception(name, reply[1])
    handle.stats = WorkerProcessStats(
        name=name, pid=reply[1], spawn_seconds=time.perf_counter() - started
    )
    return handle


class ProcessBackedTransform(Transform):
    """Dispatcher-side proxy running a spec-built clone in a worker.

    Data chunks are shipped to the worker; control items (watermarks) and
    the end-of-stream flush run on the in-process operator, preserving
    ordering within this physical instance.  Retry attributes are
    mirrored from the wrapped operator so the executor's supervision
    machinery (retry, degrade) applies unchanged — a retry simply
    re-submits the item to the worker.
    """

    def __init__(self, inner: Transform, worker: WorkerHandle) -> None:
        super().__init__(inner.name)
        self.inner = inner
        self.worker = worker
        self.max_retries = inner.max_retries
        self.retryable_errors = inner.retryable_errors
        self.retry_policy = inner.retry_policy

    def process(self, item: Any) -> list:
        if isinstance(item, DataChunk):
            return self.worker.submit(item)
        return list(self.inner.process(item))

    def finish(self) -> list:
        return list(self.inner.finish())
