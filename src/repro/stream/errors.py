"""Exception hierarchy for the stream engine."""

from __future__ import annotations

__all__ = [
    "StreamError",
    "GraphValidationError",
    "QueueClosedError",
    "QueueTimeout",
    "OperatorError",
    "ExecutionError",
    "InjectedFault",
    "OperatorTimeout",
    "OperatorStalled",
    "WorkerCrashed",
    "ShardError",
    "ShardWorkerLost",
]


class StreamError(Exception):
    """Base class for all stream-engine errors."""


class GraphValidationError(StreamError):
    """A logical dataflow graph is malformed (cycle, dangling edge, ...)."""


class QueueClosedError(StreamError):
    """A producer attempted to put into a queue whose consumers are gone."""


class QueueTimeout(QueueClosedError):
    """A queue ``put``/``get`` deadline expired while the caller was blocked.

    Subclasses :class:`QueueClosedError` so existing handlers keep
    working, but lets supervision code distinguish backpressure or
    starvation timeouts (the queue is still healthy) from a plan abort
    (the queue is poisoned).
    """


class WorkerCrashed(StreamError):
    """A process-backend worker died or returned an untransferable error.

    Raised on the parent side when the worker's pipe breaks mid-task
    (the process was killed or segfaulted) or when the worker's operator
    raised an exception that could not be pickled back; the remote
    traceback text is preserved in the message.

    Attributes:
        worker_name: physical operator name the worker served.
    """

    def __init__(self, worker_name: str, message: str) -> None:
        super().__init__(f"worker {worker_name!r}: {message}")
        self.worker_name = worker_name


class ShardError(StreamError):
    """The shard coordinator/worker runtime failed unrecoverably.

    Raised when the coordinator itself cannot continue: no surviving
    worker to reassign to and respawn disabled, an unusable run
    directory, or a protocol violation.  *Recoverable* worker failures
    never raise — they are handled by reassignment and, past the retry
    budget, by the per-cell ``incomplete`` degrade tier.
    """


class ShardWorkerLost(ShardError):
    """A shard worker died or went silent (for diagnostics / reporting).

    Attributes:
        worker_name: the lost worker (``"worker#1"``).
        reason: ``"dead-pid"``, ``"missed-heartbeats"`` or ``"stalled"``.
    """

    def __init__(self, worker_name: str, reason: str) -> None:
        super().__init__(f"shard worker {worker_name!r} lost: {reason}")
        self.worker_name = worker_name
        self.reason = reason


class OperatorError(StreamError):
    """An operator raised during processing; wraps the original cause.

    Attributes:
        operator_name: name of the failing physical operator instance.
    """

    def __init__(self, operator_name: str, cause: BaseException) -> None:
        super().__init__(f"operator {operator_name!r} failed: {cause!r}")
        self.operator_name = operator_name
        self.__cause__ = cause


class InjectedFault(StreamError):
    """A fault deliberately raised by the chaos engine (:mod:`faults`).

    Simulates an operator crash.  Deliberately *not* retryable by the
    default :class:`~repro.stream.supervision.RetryPolicy`: a crash kills
    the operator instance, so recovery is the supervisor's job (restart or
    degrade), not the per-item retry loop's.

    Attributes:
        target: physical operator name the fault was injected into.
        item_index: zero-based index of the item being handled.
    """

    def __init__(self, target: str, item_index: int, message: str) -> None:
        super().__init__(
            f"injected fault in {target!r} at item {item_index}: {message}"
        )
        self.target = target
        self.item_index = item_index


class OperatorTimeout(StreamError):
    """A single ``process`` invocation exceeded the retry policy's timeout.

    Attributes:
        operator_name: physical operator whose call timed out.
        timeout: the per-attempt deadline in seconds.
    """

    def __init__(self, operator_name: str, timeout: float) -> None:
        super().__init__(
            f"operator {operator_name!r}: process() exceeded {timeout:.3f}s"
        )
        self.operator_name = operator_name
        self.timeout = timeout


class OperatorStalled(StreamError):
    """The executor's watchdog found an operator making no queue progress.

    Raised on the watchdog's behalf (the hung thread itself cannot raise)
    after the stall deadline passes with no item movement anywhere in the
    plan; the stall diagnosis (thread stacks, queue depths) is recorded in
    the execution metrics.

    Attributes:
        operator_name: the stalled physical operator (or ``"plan"`` when
            no single suspect could be identified).
        stall_seconds: how long progress counters were flat.
    """

    def __init__(self, operator_name: str, stall_seconds: float) -> None:
        super().__init__(
            f"operator {operator_name!r} made no progress for "
            f"{stall_seconds:.1f}s (watchdog deadline)"
        )
        self.operator_name = operator_name
        self.stall_seconds = stall_seconds


class ExecutionError(StreamError):
    """Execution of a physical plan failed; carries all operator errors.

    Attributes:
        failures: the individual :class:`OperatorError` instances.
        metrics: the partial execution metrics gathered before the plan
            died (``None`` when unavailable).  Watchdog stall diagnoses
            live here — the run that needed them never returns normally.
    """

    def __init__(
        self, failures: list[OperatorError], metrics=None
    ) -> None:
        names = ", ".join(f.operator_name for f in failures)
        super().__init__(f"{len(failures)} operator(s) failed: {names}")
        self.failures = failures
        self.metrics = metrics
