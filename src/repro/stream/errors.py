"""Exception hierarchy for the stream engine."""

from __future__ import annotations

__all__ = [
    "StreamError",
    "GraphValidationError",
    "QueueClosedError",
    "OperatorError",
    "ExecutionError",
]


class StreamError(Exception):
    """Base class for all stream-engine errors."""


class GraphValidationError(StreamError):
    """A logical dataflow graph is malformed (cycle, dangling edge, ...)."""


class QueueClosedError(StreamError):
    """A producer attempted to put into a queue whose consumers are gone."""


class OperatorError(StreamError):
    """An operator raised during processing; wraps the original cause.

    Attributes:
        operator_name: name of the failing physical operator instance.
    """

    def __init__(self, operator_name: str, cause: BaseException) -> None:
        super().__init__(f"operator {operator_name!r} failed: {cause!r}")
        self.operator_name = operator_name
        self.__cause__ = cause


class ExecutionError(StreamError):
    """Execution of a physical plan failed; carries all operator errors.

    Attributes:
        failures: the individual :class:`OperatorError` instances.
    """

    def __init__(self, failures: list[OperatorError]) -> None:
        names = ", ".join(f.operator_name for f in failures)
        super().__init__(f"{len(failures)} operator(s) failed: {names}")
        self.failures = failures
