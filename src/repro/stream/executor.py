"""Threaded executor for physical plans.

Runs every physical operator on its own thread; operators communicate only
through their smart queues, so the whole plan executes in the pipelined
fashion the paper describes.  Failure handling is layered:

* per-item retries — each transform runs under a
  :class:`~repro.stream.supervision.RetryPolicy` (exponential backoff,
  deterministic jitter, optional per-attempt timeout),
* supervision — when retries are exhausted the operator's
  :class:`~repro.stream.supervision.SupervisionPolicy` decides: abort the
  plan (``fail-fast``), replace the instance and replay its buffered
  input (``restart``), or drop the item and record the loss
  (``degrade``),
* plan failure — an unrecovered error aborts all queues (unblocking
  everyone) and surfaces as an :class:`ExecutionError` carrying every
  operator failure.

A plan compiled with ``stall_timeout`` additionally runs a **watchdog**
thread: when no queue or operator counter moves for the deadline while
worker threads are still alive, the watchdog records a stall diagnosis
(per-thread Python stacks, queue depths, the stalled operators' effective
supervision policies) into the execution metrics, then escalates by
failing the plan with :class:`~repro.stream.errors.OperatorStalled` —
a hung thread cannot raise for itself, so the watchdog raises on its
behalf and the run fails loudly instead of hanging for hours.  The stuck
thread itself is abandoned (daemon), exactly like a per-attempt
:class:`~repro.stream.errors.OperatorTimeout`.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from dataclasses import dataclass, replace
from typing import Any

from repro.stream.errors import (
    ExecutionError,
    OperatorError,
    OperatorStalled,
    QueueClosedError,
)
from repro.stream.metrics import (
    ExecutionMetrics,
    OperatorMetrics,
    StallEvent,
    stopwatch,
)
from repro.stream.mp import (
    PROCESSES,
    SHARDS,
    ProcessBackedTransform,
    WorkerHandle,
    resolve_backend,
    start_worker,
    supports_process_backend,
    validate_backend,
)
from repro.stream.operators import Sink, Source, Transform
from repro.stream.planner import PhysicalOperator, PhysicalPlan
from repro.stream.queues import END_OF_STREAM
from repro.stream.supervision import (
    SupervisedTransform,
    SupervisionPolicy,
    Supervisor,
)

__all__ = ["ExecutionResult", "Executor"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one physical plan.

    Attributes:
        value: the sink's result.
        metrics: aggregated execution metrics.
    """

    value: Any
    metrics: ExecutionMetrics


class Executor:
    """Executes physical plans on threads, optionally backed by processes.

    Args:
        supervisor: per-operator supervision policies and the default
            retry policy; ``None`` means fail-fast everywhere with the
            legacy per-transform retry shorthand (the pre-supervision
            behaviour).  Policies attached to the logical graph (via
            ``DataflowGraph.add(..., supervision=...)``) override the
            supervisor's entries.
        stall_timeout: arm the hung-operator watchdog with this deadline
            (seconds); ``None`` leaves it off unless the plan sets one.
        backend: ``"threads"`` runs every operator on a thread (default);
            ``"processes"`` offloads spec-enabled cloneable transforms to
            worker processes fed over shared memory (sources, sinks and
            queues stay in-process).  ``None`` defers to the plan's
            backend, then the ``REPRO_STREAM_BACKEND`` environment
            variable, then ``"threads"``.
        mp_context: multiprocessing start method for worker processes
            (``"fork"``/``"spawn"``); ``None`` picks the platform default.

    Example:
        >>> executor = Executor()                      # doctest: +SKIP
        >>> result = executor.run(planner.plan(graph)) # doctest: +SKIP
    """

    #: Seconds granted to healthy threads to drain after a stall abort.
    _STALL_GRACE = 2.0

    def __init__(
        self,
        supervisor: Supervisor | None = None,
        stall_timeout: float | None = None,
        backend: str | None = None,
        mp_context: str | None = None,
    ) -> None:
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be positive, got {stall_timeout}")
        self.supervisor = supervisor if supervisor is not None else Supervisor()
        self.stall_timeout = stall_timeout
        self.backend = validate_backend(backend) if backend is not None else None
        self.mp_context = mp_context

    def run(self, plan: PhysicalPlan) -> ExecutionResult:
        """Execute ``plan`` to completion.

        Returns:
            An :class:`ExecutionResult` with the sink value and metrics.

        Raises:
            ValueError: the plan has no operators (nothing was planned —
                a structural mistake, not an execution failure).
            ExecutionError: if any operator failed; all other operators
                are unblocked and joined before raising.  A watchdog
                stall surfaces as an
                :class:`~repro.stream.errors.OperatorStalled` failure.
        """
        if not plan.operators:
            raise ValueError("plan has no operators")
        backend = resolve_backend(plan.backend, self.backend)
        if backend == SHARDS:
            raise ValueError(
                "the 'shards' backend is not plan-based; use "
                "repro.stream.shard.run_sharded, "
                "run_partial_merge_stream(backend='shards') or "
                "Query.with_shards(n) instead of the Executor"
            )
        stall_timeout = (
            plan.stall_timeout if plan.stall_timeout is not None else self.stall_timeout
        )
        failures: list[OperatorError] = []
        failures_lock = threading.Lock()
        all_metrics: list[OperatorMetrics] = []
        stalls: list[StallEvent] = []
        sink_box: dict[str, Any] = {}

        def record_failure(err: OperatorError) -> None:
            with failures_lock:
                failures.append(err)
            for queue in plan.queues.values():
                queue.abort()

        # Worker processes start before any operator thread: forking a
        # single-threaded parent is safe, forking a running pool is not.
        workers: list[WorkerHandle] = []
        try:
            operators = list(plan.operators)
            if backend == PROCESSES:
                operators = self._offload_to_processes(plan, operators, workers)

            threads = []
            started = time.perf_counter()
            for physical in operators:
                metrics = OperatorMetrics(name=physical.name)
                all_metrics.append(metrics)
                thread = threading.Thread(
                    target=self._run_operator,
                    args=(physical, metrics, record_failure, sink_box, plan),
                    name=f"stream-{physical.name}",
                    daemon=True,
                )
                threads.append(thread)
            for thread in threads:
                thread.start()
            if stall_timeout is None:
                for thread in threads:
                    thread.join()
            else:
                self._join_with_watchdog(
                    plan,
                    threads,
                    all_metrics,
                    stall_timeout,
                    stalls,
                    record_failure,
                )
            wall = time.perf_counter() - started
        finally:
            for worker in workers:
                worker.shutdown()

        metrics = ExecutionMetrics(
            wall_seconds=wall,
            operators=all_metrics,
            queues={q.name: q.stats for q in plan.queues.values()},
            injected_faults=(
                plan.fault_plan.injected_count()
                if plan.fault_plan is not None
                else 0
            ),
            stalls=stalls,
            backend=backend,
            workers=[worker.stats for worker in workers],
        )
        if failures:
            raise ExecutionError(failures, metrics=metrics)
        return ExecutionResult(value=sink_box.get("result"), metrics=metrics)

    def _offload_to_processes(
        self,
        plan: PhysicalPlan,
        operators: list[PhysicalOperator],
        workers: list[WorkerHandle],
    ) -> list[PhysicalOperator]:
        """Rebind spec-enabled transforms to dedicated worker processes.

        One worker per physical instance, so the planner's clone decision
        is also the process-parallelism decision.  Operators without a
        spec — and transforms supervised with ``restart``, whose
        snapshot/replay recovery needs the in-process instance — keep
        running on their thread.  Started workers are appended to
        ``workers`` as they come up so the caller can clean up even when
        a later worker fails to start.
        """
        offloaded: list[PhysicalOperator] = []
        for physical in operators:
            operator = physical.operator
            if (
                isinstance(operator, Transform)
                and supports_process_backend(operator)
                and self._policy_for(plan, physical.logical_name).mode != "restart"
            ):
                worker = start_worker(
                    operator.to_spec(),
                    name=physical.name,
                    mp_context=self.mp_context,
                )
                workers.append(worker)
                physical = replace(
                    physical,
                    operator=ProcessBackedTransform(operator, worker),
                )
            offloaded.append(physical)
        return offloaded

    # -- watchdog -----------------------------------------------------------

    @staticmethod
    def _progress_counter(
        plan: PhysicalPlan, all_metrics: list[OperatorMetrics]
    ) -> int:
        """Monotone counter that moves whenever any item moves anywhere."""
        total = 0
        for queue in plan.queues.values():
            total += queue.stats.puts + queue.stats.gets
        for metrics in all_metrics:
            total += metrics.items_in + metrics.items_out
        return total

    def _join_with_watchdog(
        self,
        plan: PhysicalPlan,
        threads: list[threading.Thread],
        all_metrics: list[OperatorMetrics],
        stall_timeout: float,
        stalls: list[StallEvent],
        record_failure,
    ) -> None:
        """Join worker threads while monitoring plan-wide progress.

        When no queue or operator counter moves for ``stall_timeout``
        seconds while workers are still alive, a diagnosis is recorded,
        the plan is failed with :class:`OperatorStalled` per suspect, and
        remaining threads get a short grace period before the stuck ones
        are abandoned (they are daemons).
        """
        poll = min(stall_timeout / 4.0, 0.25)
        last_progress = self._progress_counter(plan, all_metrics)
        last_change = time.monotonic()
        while True:
            alive = [t for t in threads if t.is_alive()]
            if not alive:
                return
            for thread in alive:
                thread.join(poll / max(1, len(alive)))
            progress = self._progress_counter(plan, all_metrics)
            now = time.monotonic()
            if progress != last_progress:
                last_progress = progress
                last_change = now
                continue
            waited = now - last_change
            if waited < stall_timeout:
                continue
            event = self._diagnose_stall(plan, threads, waited)
            stalls.append(event)
            targets = event.suspects or ("plan",)
            for name in targets:
                record_failure(
                    OperatorError(name, OperatorStalled(name, waited))
                )
            deadline = time.monotonic() + self._STALL_GRACE
            for thread in threads:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    thread.join(remaining)
            return

    def _diagnose_stall(
        self, plan: PhysicalPlan, threads: list[threading.Thread], waited: float
    ) -> StallEvent:
        """Capture thread stacks, queue depths and suspect operators."""
        frames = sys._current_frames()
        stacks: dict[str, str] = {}
        suspects: list[str] = []
        by_ident = {thread.ident: thread for thread in threads}
        physical_by_thread = {
            f"stream-{op.name}": op for op in plan.operators
        }
        for ident, frame in frames.items():
            thread = by_ident.get(ident)
            if thread is None or not thread.is_alive():
                continue
            stack_text = "".join(traceback.format_stack(frame))
            stacks[thread.name] = stack_text
            # Blocked-on-queue threads are victims of the stall, not its
            # cause; a thread stuck *inside* an operator call is a suspect.
            blocked_on_queue = any(
                frame_line.name in ("get", "put", "wait")
                and "queues.py" in frame_line.filename
                or frame_line.name == "wait"
                and "threading" in frame_line.filename
                for frame_line in traceback.extract_stack(frame)[-3:]
            )
            physical = physical_by_thread.get(thread.name)
            if physical is not None and not blocked_on_queue:
                suspects.append(physical.name)
        policies = {}
        for name in suspects:
            physical = next(
                (op for op in plan.operators if op.name == name), None
            )
            if physical is not None:
                policies[name] = self._policy_for(
                    plan, physical.logical_name
                ).mode
        return StallEvent(
            waited_seconds=waited,
            suspects=tuple(sorted(suspects)),
            policies=policies,
            queue_depths={
                queue.name: len(queue) for queue in plan.queues.values()
            },
            thread_stacks=stacks,
        )

    def _policy_for(
        self, plan: PhysicalPlan, logical_name: str
    ) -> SupervisionPolicy:
        """Graph-attached policy first, then the supervisor's mapping."""
        if logical_name in plan.supervision:
            return plan.supervision[logical_name]
        return self.supervisor.policy_for(logical_name)

    def _run_operator(
        self,
        physical: PhysicalOperator,
        metrics: OperatorMetrics,
        record_failure,
        sink_box: dict[str, Any],
        plan: PhysicalPlan,
    ) -> None:
        metrics.started_at = time.perf_counter()
        try:
            operator = physical.operator
            if isinstance(operator, Source):
                self._run_source(physical, metrics)
            elif isinstance(operator, Sink):
                self._run_sink(physical, metrics, sink_box)
            elif isinstance(operator, Transform):
                self._run_transform(physical, metrics, plan)
            else:  # pragma: no cover - planner never wires bare Operators
                raise TypeError(f"cannot execute {operator!r}")
        except QueueClosedError:
            # The plan was aborted by another operator's failure; exit
            # quietly, the original error is already recorded.
            pass
        except BaseException as exc:  # noqa: BLE001 - must not kill the pool
            record_failure(OperatorError(physical.name, exc))
        finally:
            metrics.finished_at = time.perf_counter()

    def _run_source(
        self, physical: PhysicalOperator, metrics: OperatorMetrics
    ) -> None:
        assert physical.output_queue is not None
        source = physical.operator
        assert isinstance(source, Source)
        try:
            with stopwatch(metrics):
                iterator = iter(source.generate())
            while True:
                with stopwatch(metrics):
                    try:
                        item = next(iterator)
                    except StopIteration:
                        break
                physical.output_queue.put(item)
                metrics.items_out += 1
        finally:
            base = getattr(source, "inner", source)
            quarantined = getattr(base, "quarantined", None)
            if quarantined:
                metrics.quarantined_files.extend(quarantined)
            physical.output_queue.producer_done()

    def _run_transform(
        self,
        physical: PhysicalOperator,
        metrics: OperatorMetrics,
        plan: PhysicalPlan,
    ) -> None:
        assert physical.input_queue is not None
        assert physical.output_queue is not None
        transform = physical.operator
        assert isinstance(transform, Transform)
        runner = SupervisedTransform(
            transform=transform,
            policy=self._policy_for(plan, physical.logical_name),
            retry=self.supervisor.retry_policy_for(transform),
            metrics=metrics,
            name=physical.name,
        )
        try:
            while True:
                item = physical.input_queue.get()
                if item is END_OF_STREAM:
                    break
                metrics.items_in += 1
                with stopwatch(metrics):
                    outputs = runner.process(item)
                for output in outputs:
                    physical.output_queue.put(output)
                    metrics.items_out += 1
            with stopwatch(metrics):
                flush = runner.finish()
            for output in flush:
                physical.output_queue.put(output)
                metrics.items_out += 1
        finally:
            physical.output_queue.producer_done()

    def _run_sink(
        self,
        physical: PhysicalOperator,
        metrics: OperatorMetrics,
        sink_box: dict[str, Any],
    ) -> None:
        assert physical.input_queue is not None
        sink = physical.operator
        assert isinstance(sink, Sink)
        while True:
            item = physical.input_queue.get()
            if item is END_OF_STREAM:
                break
            metrics.items_in += 1
            with stopwatch(metrics):
                sink.consume(item)
        with stopwatch(metrics):
            sink_box["result"] = sink.result()
        incomplete = getattr(sink, "incomplete_cells", None)
        if incomplete:
            metrics.incomplete_cells.extend(incomplete)
        kernel_counters = getattr(sink, "kernel_counters", None)
        if kernel_counters:
            metrics.kernel_counters.update(kernel_counters)
        tree_stats = getattr(sink, "tree_stats", None)
        if tree_stats:
            metrics.tree_stats.update(tree_stats)
