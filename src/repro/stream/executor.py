"""Threaded executor for physical plans.

Runs every physical operator on its own thread; operators communicate only
through their smart queues, so the whole plan executes in the pipelined
fashion the paper describes.  Failure handling is layered:

* per-item retries — each transform runs under a
  :class:`~repro.stream.supervision.RetryPolicy` (exponential backoff,
  deterministic jitter, optional per-attempt timeout),
* supervision — when retries are exhausted the operator's
  :class:`~repro.stream.supervision.SupervisionPolicy` decides: abort the
  plan (``fail-fast``), replace the instance and replay its buffered
  input (``restart``), or drop the item and record the loss
  (``degrade``),
* plan failure — an unrecovered error aborts all queues (unblocking
  everyone) and surfaces as an :class:`ExecutionError` carrying every
  operator failure.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.stream.errors import ExecutionError, OperatorError, QueueClosedError
from repro.stream.metrics import ExecutionMetrics, OperatorMetrics, stopwatch
from repro.stream.operators import Sink, Source, Transform
from repro.stream.planner import PhysicalOperator, PhysicalPlan
from repro.stream.queues import END_OF_STREAM
from repro.stream.supervision import (
    SupervisedTransform,
    SupervisionPolicy,
    Supervisor,
)

__all__ = ["ExecutionResult", "Executor"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one physical plan.

    Attributes:
        value: the sink's result.
        metrics: aggregated execution metrics.
    """

    value: Any
    metrics: ExecutionMetrics


class Executor:
    """Executes physical plans on threads.

    Args:
        supervisor: per-operator supervision policies and the default
            retry policy; ``None`` means fail-fast everywhere with the
            legacy per-transform retry shorthand (the pre-supervision
            behaviour).  Policies attached to the logical graph (via
            ``DataflowGraph.add(..., supervision=...)``) override the
            supervisor's entries.

    Example:
        >>> executor = Executor()                      # doctest: +SKIP
        >>> result = executor.run(planner.plan(graph)) # doctest: +SKIP
    """

    def __init__(self, supervisor: Supervisor | None = None) -> None:
        self.supervisor = supervisor if supervisor is not None else Supervisor()

    def run(self, plan: PhysicalPlan) -> ExecutionResult:
        """Execute ``plan`` to completion.

        Returns:
            An :class:`ExecutionResult` with the sink value and metrics.

        Raises:
            ExecutionError: if any operator failed; all other operators
                are unblocked and joined before raising.
        """
        if not plan.operators:
            raise ExecutionError([])
        failures: list[OperatorError] = []
        failures_lock = threading.Lock()
        all_metrics: list[OperatorMetrics] = []
        sink_box: dict[str, Any] = {}

        def record_failure(err: OperatorError) -> None:
            with failures_lock:
                failures.append(err)
            for queue in plan.queues.values():
                queue.abort()

        threads = []
        started = time.perf_counter()
        for physical in plan.operators:
            metrics = OperatorMetrics(name=physical.name)
            all_metrics.append(metrics)
            thread = threading.Thread(
                target=self._run_operator,
                args=(physical, metrics, record_failure, sink_box, plan),
                name=f"stream-{physical.name}",
                daemon=True,
            )
            threads.append(thread)
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        metrics = ExecutionMetrics(
            wall_seconds=wall,
            operators=all_metrics,
            queues={q.name: q.stats for q in plan.queues.values()},
            injected_faults=(
                plan.fault_plan.injected_count()
                if plan.fault_plan is not None
                else 0
            ),
        )
        if failures:
            raise ExecutionError(failures)
        return ExecutionResult(value=sink_box.get("result"), metrics=metrics)

    def _policy_for(
        self, plan: PhysicalPlan, logical_name: str
    ) -> SupervisionPolicy:
        """Graph-attached policy first, then the supervisor's mapping."""
        if logical_name in plan.supervision:
            return plan.supervision[logical_name]
        return self.supervisor.policy_for(logical_name)

    def _run_operator(
        self,
        physical: PhysicalOperator,
        metrics: OperatorMetrics,
        record_failure,
        sink_box: dict[str, Any],
        plan: PhysicalPlan,
    ) -> None:
        metrics.started_at = time.perf_counter()
        try:
            operator = physical.operator
            if isinstance(operator, Source):
                self._run_source(physical, metrics)
            elif isinstance(operator, Sink):
                self._run_sink(physical, metrics, sink_box)
            elif isinstance(operator, Transform):
                self._run_transform(physical, metrics, plan)
            else:  # pragma: no cover - planner never wires bare Operators
                raise TypeError(f"cannot execute {operator!r}")
        except QueueClosedError:
            # The plan was aborted by another operator's failure; exit
            # quietly, the original error is already recorded.
            pass
        except BaseException as exc:  # noqa: BLE001 - must not kill the pool
            record_failure(OperatorError(physical.name, exc))
        finally:
            metrics.finished_at = time.perf_counter()

    def _run_source(
        self, physical: PhysicalOperator, metrics: OperatorMetrics
    ) -> None:
        assert physical.output_queue is not None
        source = physical.operator
        assert isinstance(source, Source)
        try:
            with stopwatch(metrics):
                iterator = iter(source.generate())
            while True:
                with stopwatch(metrics):
                    try:
                        item = next(iterator)
                    except StopIteration:
                        break
                physical.output_queue.put(item)
                metrics.items_out += 1
        finally:
            physical.output_queue.producer_done()

    def _run_transform(
        self,
        physical: PhysicalOperator,
        metrics: OperatorMetrics,
        plan: PhysicalPlan,
    ) -> None:
        assert physical.input_queue is not None
        assert physical.output_queue is not None
        transform = physical.operator
        assert isinstance(transform, Transform)
        runner = SupervisedTransform(
            transform=transform,
            policy=self._policy_for(plan, physical.logical_name),
            retry=self.supervisor.retry_policy_for(transform),
            metrics=metrics,
            name=physical.name,
        )
        try:
            while True:
                item = physical.input_queue.get()
                if item is END_OF_STREAM:
                    break
                metrics.items_in += 1
                with stopwatch(metrics):
                    outputs = runner.process(item)
                for output in outputs:
                    physical.output_queue.put(output)
                    metrics.items_out += 1
            with stopwatch(metrics):
                flush = runner.finish()
            for output in flush:
                physical.output_queue.put(output)
                metrics.items_out += 1
        finally:
            physical.output_queue.producer_done()

    def _run_sink(
        self,
        physical: PhysicalOperator,
        metrics: OperatorMetrics,
        sink_box: dict[str, Any],
    ) -> None:
        assert physical.input_queue is not None
        sink = physical.operator
        assert isinstance(sink, Sink)
        while True:
            item = physical.input_queue.get()
            if item is END_OF_STREAM:
                break
            metrics.items_in += 1
            with stopwatch(metrics):
                sink.consume(item)
        with stopwatch(metrics):
            sink_box["result"] = sink.result()
