"""Fault-tolerant shard-per-cell coordinator/worker runtime.

The paper's deployment story is a shared-nothing cluster: partial k-means
runs *near the data* and only tiny weighted-centroid summaries travel.
:mod:`repro.stream.distributed` simulates that deployment; this module is
the real runtime.  A coordinator partitions the grid **by cell** across
worker processes, each worker runs the full partial/merge pipeline for
its cells against its own ``.rjl`` journal
(:mod:`repro.stream.checkpoint`), and liveness flows back over heartbeat
messages.

Failure model
-------------

The coordinator declares a worker lost for one of three reasons:

* ``dead-pid`` — the worker process exited (its pipe hit EOF or its
  process sentinel fired),
* ``missed-heartbeats`` — no heartbeat arrived within
  ``heartbeat_timeout`` (a wedged or partitioned worker),
* ``stalled`` — heartbeats arrive but the worker's progress counter has
  been flat for ``stall_timeout`` (watchdog escalation: alive but stuck).

Recovery reassigns the lost worker's unfinished cells to the surviving
worker with the fewest pending cells (spawning a replacement when nobody
survives and ``respawn`` is on).  The new owner *replays* every prior
epoch's journal for the cell — completed partition summaries are adopted
bit-for-bit (the journal stores little-endian float64 bytes) and only the
missing partitions are recomputed.  Because each partition's RNG is a
pure function of ``(seed, cell_id, partition)`` (the same derivation as
:class:`~repro.stream.kmeans_ops.PartialKMeansOperator`), the final
per-cell models are **bit-identical to a fault-free shard run** no matter
which worker finishes the cell or how many times it moved.

Reassignment attempts per cell are bounded by a
:class:`~repro.stream.supervision.RetryPolicy`; a cell that exhausts its
budget enters the degrade tier: the coordinator salvages whatever
partitions the journals hold, merges them into a model carrying the
standard ``incomplete`` extras (the
:class:`~repro.stream.kmeans_ops.MergeKMeansSink` contract), and the run
completes with the loss visible in the metrics instead of failing.

Chunking note: a shard worker derives one chunk-assignment RNG *per cell*
from ``(seed, cell_id)``, so a cell's random partition split is identical
on any worker.  The plan-based backends instead thread one RNG across
cells in scan order, so shard runs are bit-comparable with other shard
runs (same seed), not with thread/process runs.

Transport is ``"pipe"`` (default, :func:`multiprocessing.Pipe`) or
``"tcp"`` (:class:`multiprocessing.connection.Listener` on loopback, with
an authkey) — the protocol is identical, so multi-host deployment is a
config change, not a rewrite.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import re
import signal
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.merge import merge_kmeans
from repro.core.model import ClusterModel, as_points
from repro.core.partial import partial_kmeans
from repro.core.pipeline import split_into_chunks
from repro.core.quality import mse as evaluate_mse
from repro.stream.checkpoint import (
    JournalFormatError,
    JournalWriter,
    read_journal,
)
from repro.stream.errors import ShardError, ShardWorkerLost
from repro.stream.faults import FaultPlan, FaultSpec
from repro.stream.items import CentroidMessage
from repro.stream.metrics import (
    ExecutionMetrics,
    OperatorMetrics,
    RecoveryEvent,
    ShardWorkerStats,
)
from repro.stream.mp import SHARDS, default_mp_context
from repro.stream.scheduler import ResourceManager
from repro.stream.supervision import RetryPolicy

__all__ = [
    "ShardConfig",
    "CellTask",
    "ShardCoordinator",
    "run_sharded",
    "cell_journal_path",
    "SHARD_METHOD",
]

#: ``ClusterModel.method`` recorded by shard runs.
SHARD_METHOD = "partial/merge[shard]"

#: Spawn-key sentinel for the per-cell chunk-assignment RNG.  Partition
#: RNGs use the partition index in the same slot; real partition counts
#: never reach 2**32 - 1, so the streams cannot collide.
_CHUNK_RNG_SENTINEL = 2**32 - 1

#: How long the coordinator waits for a worker to exit after ``stop``.
_SHUTDOWN_GRACE = 2.0


def _cell_digest(cell_id: str) -> bytes:
    return hashlib.blake2b(cell_id.encode("utf-8"), digest_size=8).digest()


def _derived_rng(
    entropy: int, spawn_key: tuple[int, ...], cell_id: str, slot: int
) -> np.random.Generator:
    """The chunk-identity RNG derivation shared with the plan backends.

    A pure function of ``(seed, cell, slot)`` — never of worker identity
    or scheduling — which is what makes journal replay bit-identical.
    """
    digest = _cell_digest(cell_id)
    derived = np.random.SeedSequence(
        entropy=entropy,
        spawn_key=tuple(spawn_key)
        + (
            int.from_bytes(digest[:4], "little"),
            int.from_bytes(digest[4:], "little"),
            slot,
        ),
    )
    return np.random.default_rng(derived)


def cell_journal_path(run_dir: str | Path, cell_id: str, epoch: int) -> Path:
    """Journal file for one ``(cell, epoch)`` shard assignment.

    Each assignment epoch writes a *fresh* file: a deposed (possibly
    zombie) owner can never interleave appends with the new owner, and a
    torn tail left by a mid-write kill stays confined to its epoch.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", cell_id)
    tag = _cell_digest(cell_id)[:4].hex()
    return Path(run_dir) / "cells" / f"{safe}-{tag}.e{epoch}.rjl"


@dataclass(frozen=True)
class ShardConfig:
    """Tuning for the shard runtime.

    Attributes:
        n_workers: worker processes to spawn.
        transport: ``"pipe"`` (default) or ``"tcp"`` (loopback socket via
            :class:`multiprocessing.connection.Listener`; the multi-host
            deployment path).
        heartbeat_interval: seconds between worker heartbeats.
        heartbeat_timeout: silence longer than this declares the worker
            lost (``missed-heartbeats``).
        stall_timeout: heartbeats flowing but zero progress for this long
            escalates to ``stalled``; ``None`` disables the escalation.
        reassign_policy: bounds reassignment attempts per cell
            (``1 + max_retries`` total assignments) and shapes the
            backoff before each reassignment (:meth:`RetryPolicy.
            delay_before`).
        respawn: spawn a replacement worker when a loss leaves no
            survivor (replacements never receive fault specs — a killed
            worker's injection budget is considered spent).
        fsync: fsync every journal record.  Off by default: the shard
            failure model is worker *process* death, which the page cache
            survives; turn on to also survive host power loss.
        run_dir: where per-cell journals live; ``None`` uses a temporary
            directory removed when the run finishes.
    """

    n_workers: int = 2
    transport: str = "pipe"
    heartbeat_interval: float = 0.1
    heartbeat_timeout: float = 1.0
    stall_timeout: float | None = 30.0
    reassign_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=2)
    )
    respawn: bool = True
    fsync: bool = False
    run_dir: str | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.transport not in ("pipe", "tcp"):
            raise ValueError(
                f"unknown transport {self.transport!r}; use 'pipe' or 'tcp'"
            )
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive when given")


@dataclass(frozen=True)
class CellTask:
    """One cell assignment shipped to a worker.

    Everything a worker needs to produce the cell's final model without
    talking to anyone: the points, the clustering configuration, the seed
    material, its own epoch journal path and the prior epochs to replay.
    """

    cell_id: str
    epoch: int
    points: np.ndarray
    n_chunks: int
    k: int
    merge_k: int
    restarts: int
    seeding: str
    criterion: ConvergenceCriterion | None
    max_iter: int
    kernel: str | None
    exact: bool | None
    entropy: int
    spawn_key: tuple[int, ...]
    journal_path: str
    prior_journals: tuple[str, ...]
    fsync: bool


# -- worker side ------------------------------------------------------------


class _WorkerChaos:
    """Worker-local deterministic fault injection for the shard kinds.

    Replicates :meth:`FaultPlan.should_inject`'s counter-hash decision
    (same ``(seed, spec index, target, item index)`` key) so a shard-kind
    spec fires at exactly the same partition no matter how the run is
    scheduled.  Budgets are tracked locally — a killed worker cannot
    phone home.
    """

    def __init__(
        self,
        seed: int,
        indexed_specs: list[tuple[int, FaultSpec]],
        target: str,
        drop_heartbeats: threading.Event,
    ) -> None:
        self._seed = seed
        self._specs = list(indexed_specs)
        self._target = target
        self._drop = drop_heartbeats
        self._spent: dict[int, int] = {}
        self._counter = 0

    def on_partition(self) -> None:
        """Called once per partition the worker handles (its item unit)."""
        index = self._counter
        self._counter += 1
        for spec_index, spec in self._specs:
            triggered = spec.at_index is not None and index == spec.at_index
            if not triggered and spec.probability > 0.0:
                key = f"{self._seed}:{spec_index}:{self._target}:{index}"
                digest = hashlib.blake2b(
                    key.encode(), digest_size=8
                ).digest()
                chance = int.from_bytes(digest, "big") / 2.0**64
                triggered = chance < spec.probability
            if not triggered:
                continue
            spent = self._spent.get(spec_index, 0)
            budget = spec.budget
            if budget is not None and spent >= budget:
                continue
            self._spent[spec_index] = spent + 1
            if spec.kind == "heartbeat-drop":
                self._drop.set()
            elif spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)


def _replay_prior_journals(
    task: CellTask,
) -> tuple[dict[int, CentroidMessage], ClusterModel | None, int]:
    """Union completed partitions (and any final model) from prior epochs.

    Torn tails (a mid-write kill's signature) are tolerated by
    :func:`read_journal`; unreadable files are skipped — replay is an
    optimisation, correctness comes from recomputation.
    """
    partitions: dict[int, CentroidMessage] = {}
    model: ClusterModel | None = None
    records = 0
    for raw in task.prior_journals:
        path = Path(raw)
        if not path.exists():
            continue
        try:
            state = read_journal(path)
        except (JournalFormatError, OSError):
            continue
        records += state.records
        for index, message in state.partitions.get(task.cell_id, {}).items():
            partitions.setdefault(index, message)
        if model is None and task.cell_id in state.cells:
            model = state.cells[task.cell_id]
    return partitions, model, records


def _run_cell_task(
    task: CellTask, progress: list[int], chaos: _WorkerChaos
) -> tuple[ClusterModel, dict[str, Any]]:
    """Execute one cell's partial/merge pipeline, journaling as we go."""
    points = as_points(task.points) if task.points.size else task.points
    info: dict[str, Any] = {
        "partitions_computed": 0,
        "partitions_replayed": 0,
        "replayed_records": 0,
    }
    if points.shape[0] == 0:
        dim = points.shape[1] if points.ndim == 2 else 1
        model = ClusterModel.empty(
            max(1, dim), method=SHARD_METHOD, extra={"empty_cell": True}
        )
        with JournalWriter(task.journal_path, fsync=task.fsync) as writer:
            writer.append_cell(task.cell_id, model)
        return model, info

    replayed, prior_model, records = _replay_prior_journals(task)
    info["replayed_records"] = records
    if prior_model is not None:
        # A previous owner already finalised the cell (it died between
        # journaling the model and reporting it).  Adopt the bits.
        with JournalWriter(task.journal_path, fsync=task.fsync) as writer:
            writer.append_cell(task.cell_id, prior_model)
        return prior_model, info

    n_chunks = min(task.n_chunks, points.shape[0])
    chunk_rng = _derived_rng(
        task.entropy, task.spawn_key, task.cell_id, _CHUNK_RNG_SENTINEL
    )
    chunks = split_into_chunks(points, n_chunks, chunk_rng)

    messages: list[CentroidMessage] = []
    with JournalWriter(task.journal_path, fsync=task.fsync) as writer:
        for index, chunk in enumerate(chunks):
            chaos.on_partition()
            message = replayed.get(index)
            if message is not None:
                info["partitions_replayed"] += 1
            else:
                rng = _derived_rng(
                    task.entropy, task.spawn_key, task.cell_id, index
                )
                result = partial_kmeans(
                    chunk,
                    task.k,
                    task.restarts,
                    rng,
                    source=f"{task.cell_id}/P{index}",
                    seeding=task.seeding,
                    criterion=task.criterion,
                    max_iter=task.max_iter,
                    kernel=task.kernel,
                    exact=task.exact,
                )
                message = CentroidMessage(
                    cell_id=task.cell_id,
                    partition=index,
                    summary=result.summary,
                    n_partitions=len(chunks),
                    partial_seconds=result.seconds,
                    partial_iterations=result.iterations,
                    kernel_counters=(
                        result.counters.as_dict() if result.counters else None
                    ),
                )
                info["partitions_computed"] += 1
            writer.append_partition(message)
            messages.append(message)
            progress[0] += 1

        model = _merge_messages(
            task.cell_id,
            messages,
            expected=len(chunks),
            merge_k=task.merge_k,
            criterion=task.criterion,
            max_iter=task.max_iter,
            kernel=task.kernel,
            exact=task.exact,
            evaluate_on=points,
        )
        writer.append_cell(task.cell_id, model)
    return model, info


def _merge_messages(
    cell_id: str,
    messages: list[CentroidMessage],
    expected: int,
    merge_k: int,
    criterion: ConvergenceCriterion | None,
    max_iter: int,
    kernel: str | None,
    evaluate_on: np.ndarray | None,
    exact: bool | None = None,
) -> ClusterModel:
    """Collective merge over one cell's partition summaries.

    The same arithmetic as :meth:`MergeKMeansSink._finalize` (including
    the ``incomplete`` extras contract when partitions are missing), so
    shard models carry the shape the rest of the codebase expects.
    """
    ordered = sorted(messages, key=lambda m: m.partition)
    start = time.perf_counter()
    merged = merge_kmeans(
        [m.summary for m in ordered],
        merge_k,
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
    )
    total = time.perf_counter() - start
    final_mse = (
        evaluate_mse(evaluate_on, merged.model.centroids)
        if evaluate_on is not None
        else merged.mse
    )
    partial_seconds = sum(m.partial_seconds for m in ordered)
    extra: dict = {
        "merge_iterations": merged.iterations,
        "partial_iterations": [m.partial_iterations for m in ordered],
    }
    if expected and len(ordered) != expected:
        present = {m.partition for m in ordered}
        extra["incomplete"] = True
        extra["expected_partitions"] = int(expected)
        extra["missing_partitions"] = sorted(
            int(p) for p in set(range(expected)) - present
        )
    return ClusterModel(
        centroids=merged.model.centroids,
        weights=merged.model.weights,
        mse=final_mse,
        method=SHARD_METHOD,
        partitions=len(ordered),
        partial_seconds=partial_seconds,
        merge_seconds=merged.seconds,
        total_seconds=partial_seconds + total,
        extra=extra,
    )


def _shard_worker_main(
    name: str,
    transport: str,
    endpoint: Any,
    authkey: bytes | None,
    heartbeat_interval: float,
    indexed_specs: list[tuple[int, FaultSpec]],
    plan_seed: int,
) -> None:
    """Worker process entry point: connect, heartbeat, serve cell tasks."""
    if transport == "tcp":
        conn = connection.Client(endpoint, authkey=authkey)
    else:
        conn = endpoint
    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        # A coordinator that died mid-run makes sends fail; the worker
        # just exits, there is nobody left to report to.
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, EOFError, OSError):
                os._exit(0)

    drop_heartbeats = threading.Event()
    stop_heartbeats = threading.Event()
    progress = [0]
    chaos = _WorkerChaos(plan_seed, indexed_specs, name, drop_heartbeats)

    def heartbeat_loop() -> None:
        seq = 0
        while not stop_heartbeats.wait(heartbeat_interval):
            if drop_heartbeats.is_set():
                continue
            seq += 1
            send(("heartbeat", name, seq, progress[0]))

    send(("hello", name, os.getpid()))
    beater = threading.Thread(
        target=heartbeat_loop, name=f"{name}-heartbeat", daemon=True
    )
    beater.start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                send(("bye", name))
                break
            if message[0] != "assign":  # pragma: no cover - protocol guard
                continue
            task: CellTask = message[1]
            try:
                model, info = _run_cell_task(task, progress, chaos)
            except Exception:
                send(
                    (
                        "cell_failed",
                        name,
                        task.cell_id,
                        task.epoch,
                        traceback.format_exc(),
                    )
                )
            else:
                send(("cell_done", name, task.cell_id, task.epoch, model, info))
    finally:
        stop_heartbeats.set()


# -- coordinator side -------------------------------------------------------


@dataclass
class _WorkerSlot:
    """Coordinator-side state for one worker slot."""

    name: str
    process: multiprocessing.process.BaseProcess
    conn: connection.Connection
    stats: ShardWorkerStats
    alive: bool = True
    last_heartbeat: float = 0.0
    last_progress: int = 0
    last_progress_change: float = 0.0
    pending: set = field(default_factory=set)


@dataclass
class _CellState:
    """Coordinator-side state for one cell."""

    cell_id: str
    points: np.ndarray
    n_chunks: int
    epoch: int = 0
    attempts: int = 0
    owner: str | None = None
    model: ClusterModel | None = None
    degraded: bool = False
    journals: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.model is not None


class _RecoveryTracker:
    """Tracks one loss from detection until its last cell is terminal."""

    def __init__(self, worker_name: str, reason: str, detected_at: float):
        self.worker_name = worker_name
        self.reason = reason
        self.detected_at = detected_at
        self.cells: set[str] = set()
        self.cells_reassigned = 0
        self.cells_degraded = 0
        self.replayed_records = 0
        self.finished_at: float | None = None

    def cell_terminal(self, cell_id: str, now: float) -> bool:
        """Mark one tracked cell terminal; True when the event completes."""
        self.cells.discard(cell_id)
        if not self.cells and self.finished_at is None:
            self.finished_at = now
            return True
        return False

    def to_event(self) -> RecoveryEvent:
        end = (
            self.finished_at
            if self.finished_at is not None
            else time.monotonic()
        )
        return RecoveryEvent(
            worker_name=self.worker_name,
            reason=self.reason,
            cells_reassigned=self.cells_reassigned,
            cells_degraded=self.cells_degraded,
            replayed_records=self.replayed_records,
            recovery_seconds=max(0.0, end - self.detected_at),
        )


class ShardCoordinator:
    """Drives one sharded partial/merge run end to end.

    Use :func:`run_sharded` unless you need to hold the coordinator
    itself (tests do, to poke at worker state).

    Args:
        cells: mapping from cell id to its ``(n, d)`` points.
        k: centroids per partition (and per final model unless
            ``merge_k`` differs).
        config: runtime tuning; ``None`` uses defaults.
        fault_plan: optional chaos engine; ``kill``/``heartbeat-drop``
            specs targeting worker names are shipped to the workers and
            fire deterministically (see :meth:`FaultPlan.shard_specs`).
    """

    def __init__(
        self,
        cells: Mapping[str, np.ndarray],
        k: int,
        restarts: int = 1,
        seeding: str = "kmeans||",
        n_chunks: int | None = None,
        resources: ResourceManager | None = None,
        seed: int | None = None,
        merge_k: int | None = None,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        kernel: str | None = None,
        exact: bool | None = None,
        config: ShardConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if not cells:
            raise ValueError("cells mapping must not be empty")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.config = config if config is not None else ShardConfig()
        self.fault_plan = fault_plan
        self._resources = (
            resources if resources is not None else ResourceManager()
        )
        self._seed_sequence = np.random.SeedSequence(seed)
        self._k = k
        self._merge_k = merge_k if merge_k is not None else k
        self._restarts = restarts
        self._seeding = seeding
        self._criterion = criterion
        self._max_iter = max_iter
        self._kernel = kernel
        self._exact = exact
        self._n_chunks = n_chunks
        self._tempdir: tempfile.TemporaryDirectory | None = None
        if self.config.run_dir is not None:
            self._run_dir = Path(self.config.run_dir)
        else:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-shard-")
            self._run_dir = Path(self._tempdir.name)
        self._ctx = multiprocessing.get_context(default_mp_context())
        self._listener: connection.Listener | None = None
        self._authkey = os.urandom(16)
        self._workers: dict[str, _WorkerSlot] = {}
        self._next_worker_index = 0
        self._cells: dict[str, _CellState] = {}
        for cell_id in sorted(cells):
            points = self._coerce(cells[cell_id])
            self._cells[cell_id] = _CellState(
                cell_id=cell_id,
                points=points,
                n_chunks=self._chunks_for(points),
            )
        self._trackers: list[_RecoveryTracker] = []
        self.metrics = ExecutionMetrics(backend=SHARDS)
        self._coordinator_op = OperatorMetrics(name="coordinator")
        self.metrics.operators.append(self._coordinator_op)

    @staticmethod
    def _coerce(points: np.ndarray) -> np.ndarray:
        arr = np.asarray(points, dtype=np.float64)
        if arr.size == 0:
            dim = arr.shape[1] if arr.ndim == 2 else 1
            return np.zeros((0, max(1, dim)), dtype=np.float64)
        return as_points(arr)

    def _chunks_for(self, points: np.ndarray) -> int:
        if points.shape[0] == 0:
            return 0
        if self._n_chunks is not None:
            return min(self._n_chunks, points.shape[0])
        return min(
            self._resources.partitions_for(points.shape[0], points.shape[1]),
            points.shape[0],
        )

    # -- worker lifecycle ---------------------------------------------------

    def _spawn_worker(self, with_faults: bool = True) -> _WorkerSlot:
        name = f"worker#{self._next_worker_index}"
        self._next_worker_index += 1
        indexed_specs: list[tuple[int, FaultSpec]] = []
        if with_faults and self.fault_plan is not None:
            indexed_specs = self.fault_plan.shard_specs(name)
        plan_seed = self.fault_plan.seed if self.fault_plan is not None else 0
        if self.config.transport == "tcp":
            if self._listener is None:
                self._listener = connection.Listener(
                    ("127.0.0.1", 0), authkey=self._authkey
                )
            endpoint = self._listener.address
        else:
            parent_conn, endpoint = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                name,
                self.config.transport,
                endpoint,
                self._authkey if self.config.transport == "tcp" else None,
                self.config.heartbeat_interval,
                indexed_specs,
                plan_seed,
            ),
            name=f"repro-shard-{name}",
            daemon=True,
        )
        process.start()
        if self.config.transport == "tcp":
            conn = self._listener.accept()
        else:
            endpoint.close()  # the child's end belongs to the child
            conn = parent_conn
        now = time.monotonic()
        slot = _WorkerSlot(
            name=name,
            process=process,
            conn=conn,
            stats=ShardWorkerStats(name=name, pid=process.pid or 0),
            last_heartbeat=now,
            last_progress_change=now,
        )
        self._workers[name] = slot
        self.metrics.shards.append(slot.stats)
        return slot

    def _respawn_worker(self, dead: _WorkerSlot) -> _WorkerSlot:
        """Replace a lost worker when nobody survives to take its cells."""
        slot = self._spawn_worker(with_faults=False)
        slot.stats.respawns = dead.stats.respawns + 1
        return slot

    def _assign(self, cell: _CellState, worker: _WorkerSlot) -> None:
        cell.owner = worker.name
        cell.attempts += 1
        journal = cell_journal_path(self._run_dir, cell.cell_id, cell.epoch)
        journal.parent.mkdir(parents=True, exist_ok=True)
        task = CellTask(
            cell_id=cell.cell_id,
            epoch=cell.epoch,
            points=cell.points,
            n_chunks=cell.n_chunks,
            k=self._k,
            merge_k=self._merge_k,
            restarts=self._restarts,
            seeding=self._seeding,
            criterion=self._criterion,
            max_iter=self._max_iter,
            kernel=self._kernel,
            exact=self._exact,
            entropy=int(self._seed_sequence.entropy),
            spawn_key=tuple(self._seed_sequence.spawn_key),
            journal_path=str(journal),
            prior_journals=tuple(str(p) for p in cell.journals),
            fsync=self.config.fsync,
        )
        cell.journals.append(journal)
        worker.pending.add(cell.cell_id)
        worker.stats.cells_owned += 1
        try:
            worker.conn.send(("assign", task))
        except (BrokenPipeError, OSError):
            # The worker died between spawn/selection and this send; the
            # main loop's liveness check will reassign the cell.
            pass

    # -- failure handling ---------------------------------------------------

    def _pick_survivor(self, exclude: str) -> _WorkerSlot | None:
        candidates = [
            slot
            for slot in self._workers.values()
            if slot.alive and slot.name != exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (len(s.pending), s.name))

    def _on_worker_lost(self, worker: _WorkerSlot, reason: str) -> None:
        now = time.monotonic()
        worker.alive = False
        worker.stats.lost_reason = reason
        # Fencing: a stalled-but-alive worker must not keep appending to
        # journals its cells are about to leave behind.
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=_SHUTDOWN_GRACE)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

        tracker = _RecoveryTracker(worker.name, reason, now)
        self._trackers.append(tracker)
        rng = self.config.reassign_policy.rng_for(worker.name)
        for cell_id in sorted(worker.pending):
            cell = self._cells[cell_id]
            if cell.terminal:
                continue
            budget = 1 + self.config.reassign_policy.max_retries
            if cell.attempts >= budget:
                self._degrade_cell(cell)
                tracker.cells_degraded += 1
                continue
            delay = self.config.reassign_policy.delay_before(
                cell.attempts - 1, rng
            )
            if delay > 0:
                time.sleep(delay)
            cell.epoch += 1
            survivor = self._pick_survivor(exclude=worker.name)
            if survivor is None:
                if not self.config.respawn:
                    raise ShardError(
                        f"{ShardWorkerLost(worker.name, reason)}; no "
                        "surviving worker to reassign to and respawn is off"
                    )
                survivor = self._respawn_worker(worker)
            tracker.cells.add(cell_id)
            tracker.cells_reassigned += 1
            self._assign(cell, survivor)
        worker.pending.clear()
        if not tracker.cells:
            # Nothing needed recovery (all cells were degraded or already
            # terminal): the event is complete at detection time.
            tracker.finished_at = time.monotonic()
            self.metrics.recoveries.append(tracker.to_event())

    def _degrade_cell(self, cell: _CellState) -> None:
        """Terminal fallback: salvage journaled partitions, mark the rest.

        The degrade tier never loses journaled work — every partition any
        epoch completed is merged in — and never lies: a model missing
        partitions carries the standard ``incomplete`` extras and the
        cell is listed in the metrics.
        """
        union: dict[int, CentroidMessage] = {}
        for path in cell.journals:
            journal = Path(path)
            if not journal.exists():
                continue
            try:
                state = read_journal(journal)
            except (JournalFormatError, OSError):
                continue
            for index, message in state.partitions.get(
                cell.cell_id, {}
            ).items():
                union.setdefault(index, message)
            if cell.cell_id in state.cells:
                # A dead owner finalised the cell before it was declared
                # lost; the journaled model is complete and exact.
                cell.model = state.cells[cell.cell_id]
                return
        expected = cell.n_chunks
        if union:
            cell.model = _merge_messages(
                cell.cell_id,
                list(union.values()),
                expected=expected,
                merge_k=self._merge_k,
                criterion=self._criterion,
                max_iter=self._max_iter,
                kernel=self._kernel,
                exact=self._exact,
                evaluate_on=cell.points,
            )
            if len(union) == expected:
                # The journals held everything: a full recovery, not a
                # degrade — don't mark the cell incomplete.
                return
        else:
            dim = cell.points.shape[1] if cell.points.ndim == 2 else 1
            cell.model = ClusterModel.empty(
                max(1, dim),
                method=SHARD_METHOD,
                extra={
                    "incomplete": True,
                    "expected_partitions": int(expected),
                    "missing_partitions": list(range(expected)),
                },
            )
        cell.degraded = True
        self._coordinator_op.incomplete_cells.append(cell.cell_id)

    # -- message handling ---------------------------------------------------

    def _handle_message(self, worker: _WorkerSlot, message: tuple) -> None:
        kind = message[0]
        now = time.monotonic()
        if kind == "hello":
            worker.stats.pid = int(message[2])
            worker.last_heartbeat = now
        elif kind == "heartbeat":
            worker.stats.heartbeats += 1
            worker.last_heartbeat = now
            progress = int(message[3])
            if progress != worker.last_progress:
                worker.last_progress = progress
                worker.last_progress_change = now
        elif kind == "cell_done":
            _, _, cell_id, epoch, model, info = message
            worker.last_heartbeat = now
            worker.last_progress_change = now
            worker.pending.discard(cell_id)
            worker.stats.partitions_computed += int(
                info.get("partitions_computed", 0)
            )
            worker.stats.partitions_replayed += int(
                info.get("partitions_replayed", 0)
            )
            cell = self._cells[cell_id]
            if cell.terminal:
                return  # a stale epoch finishing late; first result wins
            cell.model = model
            worker.stats.cells_completed += 1
            self._cell_terminal(cell_id, int(info.get("replayed_records", 0)))
        elif kind == "cell_failed":
            _, _, cell_id, epoch, error_text = message
            worker.last_heartbeat = now
            worker.pending.discard(cell_id)
            cell = self._cells[cell_id]
            if cell.terminal:
                return
            # A clean in-worker failure (bad data, bug) is handled like a
            # loss of just that cell: bounded reassignment, then degrade.
            budget = 1 + self.config.reassign_policy.max_retries
            if cell.attempts >= budget:
                self._degrade_cell(cell)
                self._cell_terminal(cell_id, 0)
                return
            cell.epoch += 1
            survivor = self._pick_survivor(exclude="")
            if survivor is None:  # pragma: no cover - all workers dead
                self._degrade_cell(cell)
                self._cell_terminal(cell_id, 0)
                return
            self._assign(cell, survivor)
        elif kind == "bye":
            worker.alive = False

    def _cell_terminal(self, cell_id: str, replayed_records: int) -> None:
        now = time.monotonic()
        for tracker in self._trackers:
            if cell_id in tracker.cells:
                tracker.replayed_records += replayed_records
                if tracker.cell_terminal(cell_id, now):
                    self.metrics.recoveries.append(tracker.to_event())

    # -- liveness -----------------------------------------------------------

    def _check_liveness(self) -> None:
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if not worker.alive:
                continue
            if not worker.process.is_alive():
                self._on_worker_lost(worker, "dead-pid")
                continue
            if now - worker.last_heartbeat > self.config.heartbeat_timeout:
                self._on_worker_lost(worker, "missed-heartbeats")
                continue
            if (
                self.config.stall_timeout is not None
                and worker.pending
                and now - worker.last_progress_change
                > self.config.stall_timeout
            ):
                self._on_worker_lost(worker, "stalled")

    # -- run ----------------------------------------------------------------

    def run(self) -> dict[str, ClusterModel]:
        """Execute the sharded run; returns final models per cell."""
        started = time.perf_counter()
        try:
            for _ in range(self.config.n_workers):
                self._spawn_worker()
            # Static initial placement: sorted cells round-robin across
            # workers, so each worker's task order (and therefore each
            # fault spec's item indices) is deterministic.
            slots = sorted(self._workers.values(), key=lambda s: s.name)
            for index, cell_id in enumerate(sorted(self._cells)):
                self._assign(
                    self._cells[cell_id], slots[index % len(slots)]
                )
            self._loop()
            return {
                cell_id: state.model
                for cell_id, state in self._cells.items()
                if state.model is not None
            }
        finally:
            self._shutdown()
            self.metrics.wall_seconds = time.perf_counter() - started

    def _loop(self) -> None:
        poll = max(0.01, self.config.heartbeat_interval / 2.0)
        while any(not cell.terminal for cell in self._cells.values()):
            waitables: list[Any] = []
            by_conn: dict[Any, _WorkerSlot] = {}
            for worker in self._workers.values():
                if worker.alive:
                    waitables.append(worker.conn)
                    by_conn[worker.conn] = worker
                    waitables.append(worker.process.sentinel)
            if not waitables:
                raise ShardError(
                    "no live workers and unfinished cells remain"
                )  # pragma: no cover - losses always reassign or degrade
            ready = connection.wait(waitables, timeout=poll)
            for item in ready:
                worker = by_conn.get(item)
                if worker is None or not worker.alive:
                    continue  # a sentinel fired; liveness check handles it
                try:
                    while worker.conn.poll(0):
                        self._handle_message(worker, worker.conn.recv())
                except (EOFError, OSError):
                    self._on_worker_lost(worker, "dead-pid")
            self._check_liveness()

    def _shutdown(self) -> None:
        for worker in self._workers.values():
            if worker.alive:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE
        for worker in self._workers.values():
            remaining = max(0.0, deadline - time.monotonic())
            worker.process.join(timeout=remaining)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=_SHUTDOWN_GRACE)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None


def run_sharded(
    cells: Mapping[str, np.ndarray],
    k: int,
    restarts: int = 1,
    seeding: str = "kmeans||",
    n_chunks: int | None = None,
    resources: ResourceManager | None = None,
    seed: int | None = None,
    merge_k: int | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    kernel: str | None = None,
    exact: bool | None = None,
    config: ShardConfig | None = None,
    fault_plan: FaultPlan | None = None,
) -> tuple[dict[str, ClusterModel], ExecutionMetrics]:
    """Cluster every grid cell on the shard-per-cell runtime.

    The restart-free default — one high-quality k-means|| seed set per
    partition (Bahmani et al., "Scalable K-Means++") instead of the
    paper's ``R`` random restarts — is what makes the shard economics
    work: each cell is clustered exactly once, near its data.  Pass
    ``seeding="random", restarts=R`` to reproduce the paper's behaviour
    inside shards instead.

    Args:
        cells: mapping from cell id to its points.
        k: centroids per partition.
        restarts: seed-set restarts per partition (default 1 — see above).
        seeding: seed strategy for the partial stage.
        n_chunks: fixed partitions per cell; ``None`` derives them from
            the memory budget.
        resources: resource envelope (default host envelope).
        seed: RNG seed; shard runs with the same seed are bit-identical
            to each other regardless of worker count, schedule or
            injected worker faults.
        merge_k: centroids per final model (defaults to ``k``).
        criterion: convergence criterion for all k-means stages.
        max_iter: Lloyd iteration cap for all stages.
        kernel: Lloyd assignment backend for all stages.
        exact: ``False`` opts into the tolerance-close ``blas`` tier.
        config: runtime tuning (worker count, transport, heartbeats,
            reassignment budget, journal placement).
        fault_plan: optional chaos engine; ``kill`` / ``heartbeat-drop``
            specs targeting worker names fire inside the workers.

    Returns:
        ``(models, metrics)`` — final model per cell, plus
        :class:`ExecutionMetrics` with per-shard stats and recovery
        events.
    """
    coordinator = ShardCoordinator(
        cells,
        k,
        restarts=restarts,
        seeding=seeding,
        n_chunks=n_chunks,
        resources=resources,
        seed=seed,
        merge_k=merge_k,
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
        config=config,
        fault_plan=fault_plan,
    )
    models = coordinator.run()
    return models, coordinator.metrics
