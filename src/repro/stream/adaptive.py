"""Dynamic re-optimization: clone hot operators while the query runs.

Conquest "includes a query re-optimizer for dynamic adaptation of long
running queries" (paper Section 4; Ng, Wang, Muntz & Nittel, SSDBM'99).
The paper's prototype did not exploit it; this module implements the
mechanism so the engine is complete:

:class:`AdaptiveExecutor` runs a physical plan like the base
:class:`~repro.stream.executor.Executor`, plus a monitor thread that
samples every cloneable transform's input queue.  A queue that stays
above an occupancy threshold for several consecutive samples marks its
consumer as a bottleneck; the executor then clones that operator
*mid-run* and wires the clone to the same queues.

Safety relies on the multi-producer close protocol: for every cloneable
transform the executor reserves one producer slot on the transform's
output queue up front, and releases it only when that transform can never
be cloned again (its input queue closed and every instance finished).
Downstream consumers therefore cannot observe end-of-stream while a late
clone might still appear.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.stream.errors import ExecutionError, OperatorError
from repro.stream.executor import ExecutionResult, Executor
from repro.stream.metrics import ExecutionMetrics, OperatorMetrics
from repro.stream.operators import Transform
from repro.stream.planner import PhysicalOperator, PhysicalPlan
from repro.stream.supervision import Supervisor

__all__ = ["AdaptationEvent", "AdaptiveExecutor"]


@dataclass(frozen=True)
class AdaptationEvent:
    """One mid-run cloning decision.

    Attributes:
        at_seconds: seconds since execution start.
        logical_name: operator that was cloned.
        clone_name: physical name of the new instance.
        queue_occupancy: occupancy fraction that triggered the clone.
    """

    at_seconds: float
    logical_name: str
    clone_name: str
    queue_occupancy: float


@dataclass
class _Template:
    """Cloning state for one adaptable logical operator."""

    physical: PhysicalOperator
    instances: list[threading.Thread] = field(default_factory=list)
    hot_streak: int = 0
    clones_added: int = 0
    reserve_released: bool = False


class AdaptiveExecutor(Executor):
    """Executor with mid-run operator cloning.

    Args:
        max_extra_clones: cap on clones added per logical operator.
        occupancy_threshold: input-queue occupancy fraction considered hot.
        sample_interval: monitor sampling period in seconds.
        patience: consecutive hot samples required before cloning (guards
            against transient bursts).
        supervisor: per-operator supervision policies and default retry
            policy (see :class:`~repro.stream.executor.Executor`).
    """

    def __init__(
        self,
        max_extra_clones: int = 2,
        occupancy_threshold: float = 0.75,
        sample_interval: float = 0.01,
        patience: int = 3,
        supervisor: Supervisor | None = None,
    ) -> None:
        super().__init__(supervisor=supervisor)
        if max_extra_clones < 0:
            raise ValueError("max_extra_clones must be >= 0")
        if not 0.0 < occupancy_threshold <= 1.0:
            raise ValueError("occupancy_threshold must be in (0, 1]")
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.max_extra_clones = max_extra_clones
        self.occupancy_threshold = occupancy_threshold
        self.sample_interval = sample_interval
        self.patience = patience
        #: Events of the most recent run (read by callers and tests).
        self.events: list[AdaptationEvent] = []

    def run(self, plan: PhysicalPlan) -> ExecutionResult:
        """Execute ``plan`` with the adaptation monitor attached."""
        if not plan.operators:
            raise ExecutionError([])
        failures: list[OperatorError] = []
        lock = threading.Lock()
        all_metrics: list[OperatorMetrics] = []
        all_threads: list[threading.Thread] = []
        sink_box: dict[str, object] = {}
        events: list[AdaptationEvent] = []
        monitor_done = threading.Event()

        def record_failure(error: OperatorError) -> None:
            with lock:
                failures.append(error)
            for queue in plan.queues.values():
                queue.abort()

        def spawn(physical: PhysicalOperator) -> threading.Thread:
            metrics = OperatorMetrics(name=physical.name)
            thread = threading.Thread(
                target=self._run_operator,
                args=(physical, metrics, record_failure, sink_box, plan),
                name=f"stream-{physical.name}",
                daemon=True,
            )
            with lock:
                all_metrics.append(metrics)
                all_threads.append(thread)
            thread.start()
            return thread

        # One template per cloneable logical transform; reserve a producer
        # slot on its output queue so late clones remain legal.
        templates: dict[str, _Template] = {}
        for physical in plan.operators:
            if (
                isinstance(physical.operator, Transform)
                and physical.operator.parallelizable
                and physical.input_queue is not None
                and physical.output_queue is not None
            ):
                template = templates.setdefault(
                    physical.logical_name, _Template(physical=physical)
                )
                if template.physical is physical:
                    physical.output_queue.register_producer()

        started = time.perf_counter()
        for physical in plan.operators:
            thread = spawn(physical)
            template = templates.get(physical.logical_name)
            if template is not None:
                template.instances.append(thread)

        def release_reserve(template: _Template) -> None:
            if not template.reserve_released:
                template.reserve_released = True
                assert template.physical.output_queue is not None
                template.physical.output_queue.producer_done()

        def monitor() -> None:
            try:
                while True:
                    active = [
                        t for t in templates.values() if not t.reserve_released
                    ]
                    if not active:
                        return
                    time.sleep(self.sample_interval)
                    for template in active:
                        queue = template.physical.input_queue
                        assert queue is not None
                        instances_done = all(
                            not thread.is_alive()
                            for thread in template.instances
                        )
                        if queue.closed and instances_done:
                            # This stage can never need another clone.
                            release_reserve(template)
                            continue
                        occupancy = len(queue) / queue.capacity
                        if occupancy >= self.occupancy_threshold:
                            template.hot_streak += 1
                        else:
                            template.hot_streak = 0
                        can_clone = (
                            template.hot_streak >= self.patience
                            and template.clones_added < self.max_extra_clones
                            and not queue.closed
                        )
                        if can_clone:
                            logical = template.physical.logical_name
                            base = plan.clone_counts.get(logical, 1)
                            clone_name = (
                                f"{logical}#adaptive{base + template.clones_added}"
                            )
                            assert template.physical.output_queue is not None
                            template.physical.output_queue.register_producer()
                            clone = PhysicalOperator(
                                name=clone_name,
                                logical_name=logical,
                                operator=template.physical.operator.clone(),
                                input_queue=template.physical.input_queue,
                                output_queue=template.physical.output_queue,
                            )
                            template.instances.append(spawn(clone))
                            template.clones_added += 1
                            template.hot_streak = 0
                            events.append(
                                AdaptationEvent(
                                    at_seconds=time.perf_counter() - started,
                                    logical_name=logical,
                                    clone_name=clone_name,
                                    queue_occupancy=occupancy,
                                )
                            )
            finally:
                for template in templates.values():
                    release_reserve(template)
                monitor_done.set()

        monitor_thread = threading.Thread(
            target=monitor, name="stream-adaptive-monitor", daemon=True
        )
        monitor_thread.start()

        # Join everything; the monitor may add threads while we join.
        joined = 0
        while True:
            with lock:
                current = list(all_threads)
            for thread in current[joined:]:
                thread.join()
            joined = len(current)
            with lock:
                stable = joined == len(all_threads)
            if stable and monitor_done.is_set():
                break
            if stable:
                # All current work finished; give the monitor one tick to
                # notice and release its reserves.
                monitor_done.wait(timeout=self.sample_interval * 2)
        monitor_thread.join()

        wall = time.perf_counter() - started
        self.events = list(events)
        metrics = ExecutionMetrics(
            wall_seconds=wall,
            operators=all_metrics,
            queues={q.name: q.stats for q in plan.queues.values()},
            injected_faults=(
                plan.fault_plan.injected_count()
                if plan.fault_plan is not None
                else 0
            ),
        )
        if failures:
            raise ExecutionError(failures)
        return ExecutionResult(value=sink_box.get("result"), metrics=metrics)
