"""Logical dataflow graphs.

A dataflow query is "specified in the form of a dataflow diagram ... each
leaf node represents a collection of logical data objects, and non-leaf
nodes represent logical operations" (paper Section 3.4).  Our graphs are
converging DAGs: any number of sources, fan-in allowed (several producers
feed one consumer's queue), exactly one sink at the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stream.errors import GraphValidationError
from repro.stream.operators import Operator, Sink, Source, Transform
from repro.stream.supervision import SupervisionPolicy

__all__ = ["DataflowGraph"]


@dataclass
class _Node:
    """Internal record for one logical operator."""

    operator: Operator
    downstream: str | None = None
    upstream: list[str] = field(default_factory=list)
    #: Planner hint: relative CPU cost of this operator (1.0 = average).
    cost_hint: float = 1.0
    #: Supervision policy for this operator's physical instances.
    supervision: SupervisionPolicy | None = None


class DataflowGraph:
    """A logical operator tree plus planner hints.

    Example:
        >>> from repro.stream.graph import DataflowGraph
        >>> from repro.stream.operators import FunctionTransform
        >>> g = DataflowGraph()            # doctest: +SKIP
        >>> g.add(my_source)               # doctest: +SKIP
        >>> g.add(my_transform, cost_hint=8.0)  # doctest: +SKIP
        >>> g.add(my_sink)                 # doctest: +SKIP
        >>> g.connect("source", "transform")    # doctest: +SKIP
        >>> g.connect("transform", "sink")      # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._nodes: dict[str, _Node] = {}

    # -- construction -------------------------------------------------------

    def add(
        self,
        operator: Operator,
        cost_hint: float = 1.0,
        supervision: SupervisionPolicy | None = None,
    ) -> None:
        """Register a logical operator.

        Args:
            operator: the operator; its ``name`` must be unique.
            cost_hint: relative CPU cost used by the planner to decide
                which operators deserve clones (the paper singles out
                partial k-means as "by far the most expensive").
            supervision: optional restart/degrade policy for this
                operator's physical instances (transforms only — sources
                cannot be replayed safely and the sink assembles the
                result, so both stay fail-fast).
        """
        if operator.name in self._nodes:
            raise GraphValidationError(f"duplicate operator name {operator.name!r}")
        if cost_hint <= 0:
            raise GraphValidationError("cost_hint must be positive")
        self._nodes[operator.name] = _Node(operator=operator, cost_hint=cost_hint)
        if supervision is not None:
            self.set_supervision(operator.name, supervision)

    def set_supervision(self, name: str, policy: SupervisionPolicy) -> None:
        """Attach a supervision policy to a registered transform.

        Raises:
            GraphValidationError: unknown operator, or the operator is a
                source/sink (which must stay fail-fast).
        """
        if name not in self._nodes:
            raise GraphValidationError(f"unknown operator {name!r}")
        node = self._nodes[name]
        if not isinstance(node.operator, Transform):
            raise GraphValidationError(
                f"supervision policies apply to transforms only; "
                f"{name!r} is a {type(node.operator).__name__}"
            )
        node.supervision = policy

    def supervision_policies(self) -> dict[str, SupervisionPolicy]:
        """All attached supervision policies, keyed by logical name."""
        return {
            name: node.supervision
            for name, node in self._nodes.items()
            if node.supervision is not None
        }

    def connect(self, producer: str, consumer: str) -> None:
        """Add an edge: ``producer``'s output feeds ``consumer``'s input."""
        for name in (producer, consumer):
            if name not in self._nodes:
                raise GraphValidationError(f"unknown operator {name!r}")
        if producer == consumer:
            raise GraphValidationError(f"self-loop on {producer!r}")
        node = self._nodes[producer]
        if node.downstream is not None:
            raise GraphValidationError(
                f"operator {producer!r} already has a consumer "
                f"({node.downstream!r}); fan-out is not supported"
            )
        if isinstance(node.operator, Sink):
            raise GraphValidationError(f"sink {producer!r} cannot produce")
        if isinstance(self._nodes[consumer].operator, Source):
            raise GraphValidationError(f"source {consumer!r} cannot consume")
        node.downstream = consumer
        self._nodes[consumer].upstream.append(producer)

    # -- inspection -----------------------------------------------------------

    def operator(self, name: str) -> Operator:
        """Look up a logical operator by name."""
        return self._nodes[name].operator

    def cost_hint(self, name: str) -> float:
        """Planner cost hint of an operator."""
        return self._nodes[name].cost_hint

    def downstream_of(self, name: str) -> str | None:
        """Consumer of ``name``'s output, or ``None`` for the sink."""
        return self._nodes[name].downstream

    def upstream_of(self, name: str) -> list[str]:
        """Producers feeding ``name``'s input queue."""
        return list(self._nodes[name].upstream)

    def names(self) -> list[str]:
        """All logical operator names, in insertion order."""
        return list(self._nodes)

    def sources(self) -> list[str]:
        """Names of all source operators."""
        return [
            name
            for name, node in self._nodes.items()
            if isinstance(node.operator, Source)
        ]

    def sink(self) -> str:
        """Name of the unique sink; validates as a side effect."""
        self.validate()
        return next(
            name
            for name, node in self._nodes.items()
            if isinstance(node.operator, Sink)
        )

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check the graph is a converging DAG with one sink.

        Raises:
            GraphValidationError: describing the first defect found.
        """
        if not self._nodes:
            raise GraphValidationError("graph is empty")
        sinks = [
            name
            for name, node in self._nodes.items()
            if isinstance(node.operator, Sink)
        ]
        if len(sinks) != 1:
            raise GraphValidationError(
                f"graph must have exactly one sink, found {len(sinks)}"
            )
        sources = self.sources()
        if not sources:
            raise GraphValidationError("graph has no source")
        for name, node in self._nodes.items():
            is_source = isinstance(node.operator, Source)
            is_sink = isinstance(node.operator, Sink)
            if not is_source and not node.upstream:
                raise GraphValidationError(f"operator {name!r} has no producer")
            if not is_sink and node.downstream is None:
                raise GraphValidationError(f"operator {name!r} has no consumer")
            if isinstance(node.operator, Transform) and is_source:
                raise GraphValidationError(
                    f"operator {name!r} is both Source and Transform"
                )
        self._check_acyclic()
        self._check_reaches_sink(sinks[0])

    def _check_acyclic(self) -> None:
        seen: set[str] = set()
        for start in self._nodes:
            name: str | None = start
            path: set[str] = set()
            while name is not None and name not in seen:
                if name in path:
                    raise GraphValidationError(f"cycle involving {name!r}")
                path.add(name)
                name = self._nodes[name].downstream
            seen.update(path)

    def _check_reaches_sink(self, sink_name: str) -> None:
        for start in self._nodes:
            name: str | None = start
            while name is not None and name != sink_name:
                name = self._nodes[name].downstream
            if name != sink_name:
                raise GraphValidationError(
                    f"operator {start!r} does not reach the sink"
                )
