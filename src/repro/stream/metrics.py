"""Per-operator and per-plan instrumentation.

The planner's cloning decisions and the speed-up experiments both need to
know where time is spent; every physical operator records items in/out and
busy time into an :class:`OperatorMetrics`, and the executor aggregates
them into an :class:`ExecutionMetrics` alongside queue statistics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.stream.queues import QueueStats

__all__ = ["OperatorMetrics", "ExecutionMetrics", "stopwatch"]


@dataclass
class OperatorMetrics:
    """Counters for one physical operator instance.

    Attributes:
        name: physical instance name (e.g. ``"partial#2"``).
        items_in: items consumed from the input queue.
        items_out: items produced to the output queue.
        busy_seconds: time spent inside ``process``/``generate`` calls.
        started_at: perf-counter timestamp of thread start.
        finished_at: perf-counter timestamp of thread completion.
        retries: per-item retry attempts beyond the first try.
        restarts: times the supervisor replaced this instance after a
            crash (``restart`` policy).
        degraded_items: items dropped under the ``degrade`` policy.
        lost_items: human-readable labels of the dropped items (for
            :class:`~repro.stream.items.DataChunk` this is
            ``"cell/Ppartition"``), in drop order.
    """

    name: str
    items_in: int = 0
    items_out: int = 0
    busy_seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    retries: int = 0
    restarts: int = 0
    degraded_items: int = 0
    lost_items: list[str] = field(default_factory=list)

    @property
    def wall_seconds(self) -> float:
        """Thread lifetime (0 until the operator finishes)."""
        if self.finished_at <= self.started_at:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def idle_seconds(self) -> float:
        """Lifetime not spent processing (queue waits, scheduling)."""
        return max(0.0, self.wall_seconds - self.busy_seconds)

    @property
    def utilization(self) -> float:
        """Fraction of lifetime spent busy, in ``[0, 1]``."""
        wall = self.wall_seconds
        if wall <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / wall)


@dataclass
class ExecutionMetrics:
    """Aggregated metrics of one plan execution.

    Attributes:
        wall_seconds: end-to-end execution time.
        operators: metrics per physical operator instance.
        queues: statistics per queue, keyed by queue name.
        injected_faults: faults the attached
            :class:`~repro.stream.faults.FaultPlan` injected during the
            run (0 when no fault plan was attached).
    """

    wall_seconds: float = 0.0
    operators: list[OperatorMetrics] = field(default_factory=list)
    queues: dict[str, QueueStats] = field(default_factory=dict)
    injected_faults: int = 0

    @property
    def total_retries(self) -> int:
        """Per-item retries summed over all operators."""
        return sum(op.retries for op in self.operators)

    @property
    def total_restarts(self) -> int:
        """Supervisor restarts summed over all operators."""
        return sum(op.restarts for op in self.operators)

    @property
    def total_degraded(self) -> int:
        """Items dropped under ``degrade`` summed over all operators."""
        return sum(op.degraded_items for op in self.operators)

    @property
    def lost_partitions(self) -> list[str]:
        """Labels of every item dropped under ``degrade``, sorted."""
        lost: list[str] = []
        for op in self.operators:
            lost.extend(op.lost_items)
        return sorted(lost)

    def busy_seconds_for(self, logical_name: str) -> float:
        """Total busy time across all clones of a logical operator."""
        prefix = f"{logical_name}#"
        return sum(
            op.busy_seconds
            for op in self.operators
            if op.name == logical_name or op.name.startswith(prefix)
        )

    def summary_lines(self) -> list[str]:
        """Human-readable per-operator summary, for CLI/example output."""
        lines = [f"total wall time: {self.wall_seconds:.3f}s"]
        for op in sorted(self.operators, key=lambda o: o.name):
            lines.append(
                f"  {op.name:<20} in={op.items_in:<6} out={op.items_out:<6} "
                f"busy={op.busy_seconds:.3f}s util={op.utilization:.0%}"
            )
        if (
            self.total_retries
            or self.total_restarts
            or self.total_degraded
            or self.injected_faults
        ):
            lines.append(
                f"  resilience: retries={self.total_retries} "
                f"restarts={self.total_restarts} "
                f"degraded={self.total_degraded} "
                f"injected_faults={self.injected_faults}"
            )
        return lines


@contextmanager
def stopwatch(metrics: OperatorMetrics):
    """Accumulate the duration of the guarded block into ``busy_seconds``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        metrics.busy_seconds += time.perf_counter() - start
