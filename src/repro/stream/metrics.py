"""Per-operator and per-plan instrumentation.

The planner's cloning decisions and the speed-up experiments both need to
know where time is spent; every physical operator records items in/out and
busy time into an :class:`OperatorMetrics`, and the executor aggregates
them into an :class:`ExecutionMetrics` alongside queue statistics.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.kernels import merge_counter_dicts
from repro.stream.queues import QueueStats

__all__ = [
    "OperatorMetrics",
    "ExecutionMetrics",
    "StallEvent",
    "CheckpointStats",
    "WorkerProcessStats",
    "ShardWorkerStats",
    "RecoveryEvent",
    "EndpointStats",
    "ServingMetrics",
    "stopwatch",
]

#: Latency samples retained per endpoint for percentile estimates; a
#: bounded reservoir keeps a long-lived server's memory flat while the
#: percentiles track the recent (most relevant) service behaviour.
_LATENCY_WINDOW = 8192


@dataclass
class OperatorMetrics:
    """Counters for one physical operator instance.

    Attributes:
        name: physical instance name (e.g. ``"partial#2"``).
        items_in: items consumed from the input queue.
        items_out: items produced to the output queue.
        busy_seconds: time spent inside ``process``/``generate`` calls.
        started_at: perf-counter timestamp of thread start.
        finished_at: perf-counter timestamp of thread completion.
        retries: per-item retry attempts beyond the first try.
        restarts: times the supervisor replaced this instance after a
            crash (``restart`` policy).
        degraded_items: items dropped under the ``degrade`` policy.
        lost_items: human-readable labels of the dropped items (for
            :class:`~repro.stream.items.DataChunk` this is
            ``"cell/Ppartition"``), in drop order.
        quarantined_files: ``"filename: reason"`` per input file a source
            moved aside under the ``quarantine`` corruption policy.
        incomplete_cells: cell ids a sink finalised with partitions
            missing (a ``degrade`` drop upstream), in finalisation order.
        kernel_counters: Lloyd-kernel instrumentation per pipeline stage
            (``{"partial": {...}, "merge": {...}}``; see
            :class:`repro.core.kernels.KernelCounters`), copied from the
            sink when the run finishes.  Empty for operators that run no
            k-means.
        tree_stats: coreset-tree accounting (depth, node counts, merges,
            query cache hits; see
            :attr:`repro.stream.coreset.CoresetTreeSink.tree_stats`),
            copied from the sink when the run finishes.  Empty for runs
            without a tree sink.
    """

    name: str
    items_in: int = 0
    items_out: int = 0
    busy_seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    retries: int = 0
    restarts: int = 0
    degraded_items: int = 0
    lost_items: list[str] = field(default_factory=list)
    quarantined_files: list[str] = field(default_factory=list)
    incomplete_cells: list[str] = field(default_factory=list)
    kernel_counters: dict = field(default_factory=dict)
    tree_stats: dict = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        """Thread lifetime (0 until the operator finishes)."""
        if self.finished_at <= self.started_at:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def idle_seconds(self) -> float:
        """Lifetime not spent processing (queue waits, scheduling)."""
        return max(0.0, self.wall_seconds - self.busy_seconds)

    @property
    def utilization(self) -> float:
        """Fraction of lifetime spent busy, in ``[0, 1]``."""
        wall = self.wall_seconds
        if wall <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / wall)


@dataclass(frozen=True)
class StallEvent:
    """One watchdog firing: the plan made no queue progress past deadline.

    Attributes:
        waited_seconds: how long progress counters were flat before the
            watchdog fired.
        suspects: physical operator names that were alive and mid-item
            (not blocked on a queue) when the stall was diagnosed.
        policies: supervision policy mode per suspect's logical operator
            (what the stall escalated into).
        queue_depths: buffered items per queue at diagnosis time.
        thread_stacks: formatted Python stack per stream worker thread.
    """

    waited_seconds: float
    suspects: tuple[str, ...]
    policies: dict[str, str]
    queue_depths: dict[str, int]
    thread_stacks: dict[str, str]


@dataclass
class WorkerProcessStats:
    """Accounting for one process-backend worker.

    Attributes:
        name: physical operator the worker serves (e.g. ``"partial#2"``).
        pid: worker process id.
        items: items the worker processed.
        busy_seconds: time spent inside ``process`` calls *in the worker*
            (excludes shared-memory transfer and pipe round-trips, so the
            gap to the dispatching operator's ``busy_seconds`` is the IPC
            overhead).
        spawn_seconds: time to start the process and build its operator
            from the pickled spec.
        shm_bytes: point-array bytes handed over via shared memory.
    """

    name: str
    pid: int = 0
    items: int = 0
    busy_seconds: float = 0.0
    spawn_seconds: float = 0.0
    shm_bytes: int = 0


@dataclass
class ShardWorkerStats:
    """Accounting for one shard-runtime worker (:mod:`repro.stream.shard`).

    Attributes:
        name: worker name (``"worker#1"``).
        pid: last process id that served this worker slot.
        cells_owned: cells ever assigned to this worker (including ones
            later reassigned away).
        cells_completed: cells this worker finished.
        partitions_computed: partition summaries the worker computed
            (journal replays excluded).
        partitions_replayed: partition summaries the worker restored
            from prior-epoch journals instead of recomputing.
        heartbeats: heartbeat messages the coordinator received.
        respawns: times the coordinator started a fresh process for this
            worker slot after a loss.
        lost_reason: why the worker was last declared lost (``""`` if it
            never was): ``"dead-pid"``, ``"missed-heartbeats"`` or
            ``"stalled"``.
    """

    name: str
    pid: int = 0
    cells_owned: int = 0
    cells_completed: int = 0
    partitions_computed: int = 0
    partitions_replayed: int = 0
    heartbeats: int = 0
    respawns: int = 0
    lost_reason: str = ""


@dataclass(frozen=True)
class RecoveryEvent:
    """One worker loss the shard coordinator recovered from (or degraded).

    Attributes:
        worker_name: the lost worker.
        reason: ``"dead-pid"``, ``"missed-heartbeats"`` or ``"stalled"``.
        cells_reassigned: cells moved to surviving workers.
        cells_degraded: cells marked ``incomplete`` because their
            reassignment budget ran out.
        replayed_records: journal records replayed while re-running the
            reassigned cells.
        recovery_seconds: loss detection until every reassigned cell
            reached a terminal state (done or degraded).
    """

    worker_name: str
    reason: str
    cells_reassigned: int
    cells_degraded: int
    replayed_records: int
    recovery_seconds: float


@dataclass
class EndpointStats:
    """Latency/throughput counters for one serving endpoint.

    The serving layer (:mod:`repro.serve`) records one sample per
    answered request; percentiles are computed over a bounded window of
    the most recent :data:`_LATENCY_WINDOW` samples so a long-lived
    server never grows without bound.

    Attributes:
        name: endpoint name (``"assign"``, ``"summary"``, ...).
        requests: requests answered (errors included).
        items: work units processed (points assigned, chunks folded, ...).
        batches: micro-batches this endpoint's requests were served in.
        errors: requests that raised instead of answering.
        total_seconds: summed request latency (enqueue to answer).
        max_seconds: worst single-request latency observed.
    """

    name: str
    requests: int = 0
    items: int = 0
    batches: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    _recent: deque = field(
        default_factory=lambda: deque(maxlen=_LATENCY_WINDOW), repr=False
    )

    def record(self, seconds: float, items: int = 1) -> None:
        """Record one answered request."""
        self.requests += 1
        self.items += items
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)
        self._recent.append(seconds)

    def record_error(self, seconds: float) -> None:
        """Record one failed request (latency still counts)."""
        self.errors += 1
        self.record(seconds)

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` (0-100) over the recent window."""
        if not self._recent:
            return 0.0
        ordered = sorted(self._recent)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    @property
    def mean_seconds(self) -> float:
        """Mean request latency."""
        if not self.requests:
            return 0.0
        return self.total_seconds / self.requests

    def snapshot(self) -> dict:
        """JSON-safe summary including p50/p99 over the recent window."""
        return {
            "requests": self.requests,
            "items": self.items,
            "batches": self.batches,
            "errors": self.errors,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.percentile(50.0),
            "p99_seconds": self.percentile(99.0),
            "max_seconds": self.max_seconds,
        }


class ServingMetrics:
    """Per-endpoint accounting for one long-lived serving process.

    Thread-safe: server worker threads record concurrently.  Alongside
    the per-endpoint latency counters it tracks **update lag** — the
    time from an ingest request's arrival to its fold being applied to
    the hot model — the serving layer's freshness metric.
    """

    def __init__(self) -> None:
        self.started_at = time.perf_counter()
        self.endpoints: dict[str, EndpointStats] = {}
        #: Ingest freshness: enqueue-to-model-applied latency.
        self.update_lag = EndpointStats("update-lag")
        self._lock = threading.Lock()

    def endpoint(self, name: str) -> EndpointStats:
        """The endpoint's counters (created on first use)."""
        with self._lock:
            stats = self.endpoints.get(name)
            if stats is None:
                stats = self.endpoints[name] = EndpointStats(name)
            return stats

    def record(
        self, name: str, seconds: float, items: int = 1, error: bool = False
    ) -> None:
        """Record one answered (or failed) request against an endpoint."""
        stats = self.endpoint(name)
        with self._lock:
            if error:
                stats.errors += 1
            stats.record(seconds, items=items)

    def record_batch(self, name: str, size: int) -> None:
        """Record one micro-batch dispatched for an endpoint."""
        stats = self.endpoint(name)
        with self._lock:
            stats.batches += 1

    def record_update_lag(self, seconds: float, items: int = 1) -> None:
        """Record one applied ingest's enqueue-to-applied lag."""
        with self._lock:
            self.update_lag.record(seconds, items=items)

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock since the metrics (i.e. the server) started."""
        return time.perf_counter() - self.started_at

    @property
    def total_requests(self) -> int:
        """Requests answered across all endpoints."""
        with self._lock:
            return sum(stats.requests for stats in self.endpoints.values())

    def qps(self) -> float:
        """Answered requests per second since the server started."""
        elapsed = self.elapsed_seconds
        if elapsed <= 0.0:
            return 0.0
        return self.total_requests / elapsed

    def snapshot(self) -> dict:
        """JSON-safe summary of every endpoint plus update lag and QPS."""
        with self._lock:
            endpoints = {
                name: stats.snapshot()
                for name, stats in sorted(self.endpoints.items())
            }
            lag = self.update_lag.snapshot()
            total = sum(stats.requests for stats in self.endpoints.values())
        elapsed = self.elapsed_seconds
        return {
            "elapsed_seconds": elapsed,
            "total_requests": total,
            "qps": (total / elapsed) if elapsed > 0.0 else 0.0,
            "endpoints": endpoints,
            "update_lag": lag,
        }

    def summary_lines(self) -> list[str]:
        """Human-readable per-endpoint summary, for CLI output."""
        lines = [
            f"served {self.total_requests} request(s) in "
            f"{self.elapsed_seconds:.3f}s ({self.qps():.0f} qps)"
        ]
        with self._lock:
            for name in sorted(self.endpoints):
                stats = self.endpoints[name]
                lines.append(
                    f"  {name:<10} n={stats.requests:<7} "
                    f"err={stats.errors:<3} batches={stats.batches:<6} "
                    f"p50={stats.percentile(50.0) * 1e3:.2f}ms "
                    f"p99={stats.percentile(99.0) * 1e3:.2f}ms "
                    f"max={stats.max_seconds * 1e3:.2f}ms"
                )
            if self.update_lag.requests:
                lines.append(
                    f"  update-lag chunks={self.update_lag.requests} "
                    f"p50={self.update_lag.percentile(50.0) * 1e3:.2f}ms "
                    f"p99={self.update_lag.percentile(99.0) * 1e3:.2f}ms"
                )
        return lines


@dataclass
class CheckpointStats:
    """Journal/recovery accounting for one checkpointed execution.

    Attributes:
        journal_path: the run journal file.
        partitions_replayed: partition summaries restored from the
            journal instead of being recomputed.
        partitions_recomputed: partition summaries computed (and
            journaled) by this execution.
        cells_replayed: cell models adopted directly from the journal.
        journal_bytes: journal size after the run.
        recovery_seconds: time spent loading + validating the journal.
        resumed: whether this execution resumed an earlier journal.
    """

    journal_path: str = ""
    partitions_replayed: int = 0
    partitions_recomputed: int = 0
    cells_replayed: int = 0
    journal_bytes: int = 0
    recovery_seconds: float = 0.0
    resumed: bool = False


@dataclass
class ExecutionMetrics:
    """Aggregated metrics of one plan execution.

    Attributes:
        wall_seconds: end-to-end execution time.
        operators: metrics per physical operator instance.
        queues: statistics per queue, keyed by queue name.
        injected_faults: faults the attached
            :class:`~repro.stream.faults.FaultPlan` injected during the
            run (0 when no fault plan was attached).
        stalls: watchdog stall diagnoses recorded during the run.
        checkpoint: journal/recovery accounting (``None`` when the run
            was not checkpointed).
        backend: execution backend the plan ran on (``"threads"``,
            ``"processes"`` or ``"shards"``).
        workers: per-worker process accounting (empty on the thread
            backend).
        shards: per-worker shard-runtime accounting (empty off the
            shard backend).
        recoveries: worker losses the shard coordinator handled.
    """

    wall_seconds: float = 0.0
    operators: list[OperatorMetrics] = field(default_factory=list)
    queues: dict[str, QueueStats] = field(default_factory=dict)
    injected_faults: int = 0
    stalls: list[StallEvent] = field(default_factory=list)
    checkpoint: CheckpointStats | None = None
    backend: str = "threads"
    workers: list[WorkerProcessStats] = field(default_factory=list)
    shards: list[ShardWorkerStats] = field(default_factory=list)
    recoveries: list[RecoveryEvent] = field(default_factory=list)

    @property
    def total_retries(self) -> int:
        """Per-item retries summed over all operators."""
        return sum(op.retries for op in self.operators)

    @property
    def total_restarts(self) -> int:
        """Supervisor restarts summed over all operators."""
        return sum(op.restarts for op in self.operators)

    @property
    def total_degraded(self) -> int:
        """Items dropped under ``degrade`` summed over all operators."""
        return sum(op.degraded_items for op in self.operators)

    @property
    def lost_partitions(self) -> list[str]:
        """Labels of every item dropped under ``degrade``, sorted."""
        lost: list[str] = []
        for op in self.operators:
            lost.extend(op.lost_items)
        return sorted(lost)

    @property
    def quarantined_files(self) -> list[str]:
        """Input files quarantined by sources, sorted."""
        quarantined: list[str] = []
        for op in self.operators:
            quarantined.extend(op.quarantined_files)
        return sorted(quarantined)

    @property
    def total_quarantined(self) -> int:
        """Input files quarantined across all sources."""
        return sum(len(op.quarantined_files) for op in self.operators)

    @property
    def incomplete_cells(self) -> list[str]:
        """Cells finalised with missing partitions, sorted."""
        incomplete: list[str] = []
        for op in self.operators:
            incomplete.extend(op.incomplete_cells)
        return sorted(incomplete)

    @property
    def kernel_counters(self) -> dict:
        """Kernel instrumentation merged across operators, per stage.

        Keys are pipeline stages (``"partial"``, ``"merge"``); values are
        :meth:`repro.core.kernels.KernelCounters.as_dict` payloads with
        numeric fields summed across all operators that reported them.
        """
        merged: dict[str, dict] = {}
        for op in self.operators:
            for stage, counters in op.kernel_counters.items():
                merge_counter_dicts(merged.setdefault(stage, {}), counters)
        return merged

    @property
    def tree_stats(self) -> dict:
        """Coreset-tree accounting merged across operators.

        Numeric fields sum, except ``max_depth`` which takes the maximum;
        empty when no operator maintained a coreset tree.
        """
        merged: dict = {}
        for op in self.operators:
            for key, value in op.tree_stats.items():
                if key == "max_depth":
                    merged[key] = max(merged.get(key, 0), value)
                elif isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    merged[key] = merged.get(key, 0) + value
                else:
                    merged[key] = value
        return merged

    @property
    def worker_busy_seconds(self) -> float:
        """In-worker compute time summed over all process workers."""
        return sum(worker.busy_seconds for worker in self.workers)

    @property
    def shm_bytes(self) -> int:
        """Point-array bytes transferred via shared memory."""
        return sum(worker.shm_bytes for worker in self.workers)

    @property
    def total_reassignments(self) -> int:
        """Cells moved between shard workers after a loss."""
        return sum(event.cells_reassigned for event in self.recoveries)

    @property
    def total_replayed_records(self) -> int:
        """Journal records replayed during shard recoveries."""
        return sum(event.replayed_records for event in self.recoveries)

    def busy_seconds_for(self, logical_name: str) -> float:
        """Total busy time across all clones of a logical operator."""
        prefix = f"{logical_name}#"
        return sum(
            op.busy_seconds
            for op in self.operators
            if op.name == logical_name or op.name.startswith(prefix)
        )

    def summary_lines(self) -> list[str]:
        """Human-readable per-operator summary, for CLI/example output."""
        lines = [f"total wall time: {self.wall_seconds:.3f}s"]
        for op in sorted(self.operators, key=lambda o: o.name):
            lines.append(
                f"  {op.name:<20} in={op.items_in:<6} out={op.items_out:<6} "
                f"busy={op.busy_seconds:.3f}s util={op.utilization:.0%}"
            )
        if (
            self.total_retries
            or self.total_restarts
            or self.total_degraded
            or self.injected_faults
        ):
            lines.append(
                f"  resilience: retries={self.total_retries} "
                f"restarts={self.total_restarts} "
                f"degraded={self.total_degraded} "
                f"injected_faults={self.injected_faults}"
            )
        if self.total_quarantined:
            lines.append(
                f"  quarantined: {self.total_quarantined} file(s): "
                + ", ".join(self.quarantined_files)
            )
        incomplete = self.incomplete_cells
        if incomplete:
            lines.append(
                f"  incomplete: {len(incomplete)} cell(s) finalised with "
                f"missing partitions: " + ", ".join(incomplete)
            )
        if self.workers:
            lines.append(f"  backend: {self.backend}")
            for worker in sorted(self.workers, key=lambda w: w.name):
                lines.append(
                    f"  worker {worker.name:<13} pid={worker.pid:<7} "
                    f"items={worker.items:<5} busy={worker.busy_seconds:.3f}s "
                    f"shm={worker.shm_bytes / 1e6:.1f}MB "
                    f"spawn={worker.spawn_seconds:.3f}s"
                )
        if self.shards:
            lines.append(f"  backend: {self.backend}")
            for shard in sorted(self.shards, key=lambda s: s.name):
                lines.append(
                    f"  shard {shard.name:<14} pid={shard.pid:<7} "
                    f"cells={shard.cells_completed}/{shard.cells_owned} "
                    f"partials={shard.partitions_computed} "
                    f"replayed={shard.partitions_replayed} "
                    f"heartbeats={shard.heartbeats}"
                    + (f" lost={shard.lost_reason}" if shard.lost_reason else "")
                )
        for event in self.recoveries:
            lines.append(
                f"  recovery: {event.worker_name} ({event.reason}) "
                f"reassigned={event.cells_reassigned} "
                f"degraded={event.cells_degraded} "
                f"replayed_records={event.replayed_records} "
                f"latency={event.recovery_seconds:.3f}s"
            )
        for stage, counters in sorted(self.kernel_counters.items()):
            computed = counters.get("distance_evals_computed", 0)
            skipped = counters.get("distance_evals_skipped", 0)
            total = computed + skipped
            saved = (skipped / total) if total else 0.0
            line = (
                f"  kernel[{stage}]: {counters.get('kernel', 'dense')} "
                f"computed={computed} skipped={skipped} ({saved:.0%} saved) "
                f"assign={counters.get('assign_seconds', 0.0):.3f}s"
            )
            # Tier-specific instrumentation: group bounds (elkan/blas) and
            # the blas tier's GEMM/refinement work, shown only when the
            # kernel recorded them.
            if counters.get("bound_groups"):
                line += f" groups={counters['bound_groups']}"
            if counters.get("gemm_calls"):
                line += (
                    f" gemm={counters['gemm_calls']} "
                    f"refined={counters.get('refine_rows', 0)}"
                )
            lines.append(line)
        tree = self.tree_stats
        if tree:
            lines.append(
                f"  coreset: cells={tree.get('cells', 0)} "
                f"nodes={tree.get('nodes', 0)} "
                f"depth={tree.get('max_depth', 0)} "
                f"merges={tree.get('node_merges', 0)} "
                f"preloaded={tree.get('nodes_preloaded', 0)} "
                f"queries={tree.get('queries', 0)} "
                f"(cache_hits={tree.get('query_cache_hits', 0)}) "
                f"query_time={tree.get('query_seconds', 0.0):.3f}s"
            )
        for stall in self.stalls:
            lines.append(
                f"  stall: no progress for {stall.waited_seconds:.1f}s; "
                f"suspects={', '.join(stall.suspects) or 'unknown'}"
            )
        if self.checkpoint is not None:
            cp = self.checkpoint
            lines.append(
                f"  checkpoint: replayed={cp.partitions_replayed} "
                f"recomputed={cp.partitions_recomputed} "
                f"cells_replayed={cp.cells_replayed} "
                f"journal={cp.journal_bytes}B "
                f"recovery={cp.recovery_seconds:.3f}s"
            )
        return lines


@contextmanager
def stopwatch(metrics: OperatorMetrics):
    """Accumulate the duration of the guarded block into ``busy_seconds``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        metrics.busy_seconds += time.perf_counter() - start
