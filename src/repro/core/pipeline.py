"""High-level partial/merge k-means API.

:class:`PartialMergeKMeans` is the library's front door: it takes a grid
cell's points (as an array or as an already-partitioned stream of chunks),
runs partial k-means over every chunk — serially or on a thread pool, which
models the paper's cloned operators — and merges the weighted centroids
into the final cell model.

For the full stream-engine execution (bounded queues, planner-driven
cloning), see :mod:`repro.stream.kmeans_ops`, which wires the same partial
and merge kernels into dataflow operators.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.merge import MergeResult, incremental_merge_kmeans, merge_kmeans
from repro.core.model import ClusterModel, as_points
from repro.core.partial import PartialResult, partial_kmeans
from repro.core.quality import mse as evaluate_mse

__all__ = ["PartialMergeKMeans", "PartialMergeReport", "split_into_chunks"]


def split_into_chunks(
    points: np.ndarray, n_chunks: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Randomly distribute points over ``n_chunks`` equal-sized chunks.

    This reproduces the paper's experiment setup: "the data points of a
    complete cell were randomly distributed over 5 or 10 'chunks'".  Chunk
    sizes differ by at most one point.
    """
    pts = as_points(points)
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if n_chunks > pts.shape[0]:
        raise ValueError(
            f"cannot split {pts.shape[0]} points into {n_chunks} chunks"
        )
    perm = rng.permutation(pts.shape[0])
    return [pts[idx] for idx in np.array_split(perm, n_chunks)]


@dataclass(frozen=True)
class PartialMergeReport:
    """Full diagnostics of one partial/merge run.

    Attributes:
        model: the final :class:`ClusterModel` for the cell.
        partials: per-partition results, in completion order.
        merge: the merge-step result.
    """

    model: ClusterModel
    partials: list[PartialResult]
    merge: MergeResult


class PartialMergeKMeans:
    """Partial/merge k-means for one grid cell.

    Args:
        k: number of centroids in the final model (and per partition).
        restarts: random-seed restarts per partition (the paper's ``R``).
        n_chunks: number of partitions when :meth:`fit` receives a flat
            array; ignored by :meth:`fit_chunks`.
        max_workers: partial-operator clones; ``1`` runs partials serially
            on one "machine" as in the paper's single-host measurements,
            larger values model cloned operators on several machines.
        merge_mode: ``"collective"`` (paper) or ``"incremental"``
            (the rejected alternative, kept for ablations).
        merge_restarts: extra randomly-seeded merge runs beyond the
            paper's deterministic largest-weight seeding; the best run
            wins.  0 (default) reproduces the paper; 2-3 repairs the
            merge collapses seen with many highly-overlapping chunks.
        seeding: restart seed strategy for partial steps.
        criterion: convergence criterion (paper's 1e-9 MSE delta when
            ``None``).
        max_iter: per-run Lloyd iteration cap.
        kernel: Lloyd assignment backend (``"dense"``/``"hamerly"``/
            ``"elkan"``/``"blas"``) used by partial and merge steps
            alike; ``None`` consults ``REPRO_KMEANS_KERNEL``.  Exact
            backends are bit-identical — a performance knob only.
        exact: ``False`` opts into the tolerance-close ``blas`` tier
            (forwarded to :func:`~repro.core.kernels.resolve_kernel`).
        early_abandon: terminate restarts whose projected SSE cannot beat
            the incumbent best (heuristic; default off).
        seed: seed for the internal random generator.

    Example:
        >>> import numpy as np
        >>> from repro.core.pipeline import PartialMergeKMeans
        >>> rng = np.random.default_rng(0)
        >>> data = rng.normal(size=(1000, 6))
        >>> algo = PartialMergeKMeans(k=8, restarts=3, n_chunks=5, seed=0)
        >>> model = algo.fit(data).model
        >>> model.k
        8
    """

    def __init__(
        self,
        k: int,
        restarts: int = 10,
        n_chunks: int = 5,
        max_workers: int = 1,
        merge_mode: str = "collective",
        merge_restarts: int = 0,
        seeding: str = "random",
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        kernel: str | None = None,
        exact: bool | None = None,
        early_abandon: bool = False,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if merge_mode not in ("collective", "incremental"):
            raise ValueError(
                f"merge_mode must be 'collective' or 'incremental', got {merge_mode!r}"
            )
        if merge_restarts < 0:
            raise ValueError(f"merge_restarts must be >= 0, got {merge_restarts}")
        self.k = k
        self.restarts = restarts
        self.n_chunks = n_chunks
        self.max_workers = max_workers
        self.merge_mode = merge_mode
        self.merge_restarts = merge_restarts
        self.seeding = seeding
        self.criterion = criterion
        self.max_iter = max_iter
        self.kernel = kernel
        self.exact = exact
        self.early_abandon = early_abandon
        self._rng = np.random.default_rng(seed)

    def fit(self, points: np.ndarray) -> PartialMergeReport:
        """Split ``points`` into ``n_chunks`` random chunks and cluster.

        The random split reproduces the paper's experimental setup; use
        :meth:`fit_chunks` to supply a custom partitioning (e.g. the
        spatial or salami strategies in :mod:`repro.data.partitioning`).
        """
        pts = as_points(points)
        chunks = split_into_chunks(pts, min(self.n_chunks, pts.shape[0]), self._rng)
        return self.fit_chunks(chunks, evaluate_on=pts)

    def fit_chunks(
        self,
        chunks: Sequence[np.ndarray] | Iterable[np.ndarray],
        evaluate_on: np.ndarray | None = None,
    ) -> PartialMergeReport:
        """Cluster pre-partitioned chunks.

        Args:
            chunks: the data partitions; each must fit in memory (by
                construction of the caller's partitioner).
            evaluate_on: if given, the final model's MSE is computed
                against these raw points (the harness's fair comparison);
                otherwise the weighted merge MSE is reported.

        Returns:
            A :class:`PartialMergeReport`.
        """
        chunk_list = [as_points(c) for c in chunks]
        if not chunk_list:
            raise ValueError("fit_chunks requires at least one chunk")

        start = time.perf_counter()
        partials = self._run_partials(chunk_list)
        merge = self._run_merge(partials)
        total = time.perf_counter() - start

        if evaluate_on is not None:
            final_mse = evaluate_mse(evaluate_on, merge.model.centroids)
        else:
            final_mse = merge.mse

        model = ClusterModel(
            centroids=merge.model.centroids,
            weights=merge.model.weights,
            mse=final_mse,
            method=f"partial/merge[{self.merge_mode}]",
            partitions=len(chunk_list),
            restarts=self.restarts,
            partial_seconds=sum(p.seconds for p in partials),
            merge_seconds=merge.seconds,
            total_seconds=total,
            extra={
                "partial_iterations": [p.iterations for p in partials],
                "merge_iterations": merge.iterations,
                "partial_mses": [p.mse for p in partials],
                "max_workers": self.max_workers,
            },
        )
        return PartialMergeReport(model=model, partials=partials, merge=merge)

    def _run_partials(self, chunks: list[np.ndarray]) -> list[PartialResult]:
        """Run the partial operator on every chunk (serially or cloned)."""
        # Pre-draw one child seed per chunk so results do not depend on
        # thread completion order.
        child_seeds = self._rng.integers(0, 2**63 - 1, size=len(chunks))
        jobs = [
            (chunk, np.random.default_rng(int(child_seed)), f"P{index}")
            for index, (chunk, child_seed) in enumerate(zip(chunks, child_seeds))
        ]

        def run(job: tuple[np.ndarray, np.random.Generator, str]) -> PartialResult:
            chunk, rng, label = job
            return partial_kmeans(
                chunk,
                self.k,
                self.restarts,
                rng,
                source=label,
                seeding=self.seeding,
                criterion=self.criterion,
                max_iter=self.max_iter,
                kernel=self.kernel,
                exact=self.exact,
                early_abandon=self.early_abandon,
            )

        if self.max_workers == 1 or len(jobs) == 1:
            return [run(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(run, jobs))

    def _run_merge(self, partials: list[PartialResult]) -> MergeResult:
        """Merge partial summaries per the configured discipline."""
        summaries = [p.summary for p in partials]
        if self.merge_mode == "incremental":
            return incremental_merge_kmeans(
                summaries,
                self.k,
                criterion=self.criterion,
                max_iter=self.max_iter,
                kernel=self.kernel,
                exact=self.exact,
            )
        return merge_kmeans(
            summaries,
            self.k,
            criterion=self.criterion,
            max_iter=self.max_iter,
            extra_random_restarts=self.merge_restarts,
            rng=self._rng,
            kernel=self.kernel,
            exact=self.exact,
        )
