"""Partial k-means: cluster one memory-sized partition into weighted centroids.

This is the paper's Step 2 (Section 3.2).  A partition ``P_j`` of a grid
cell — sized so that its points fit in available volatile memory — is
clustered with ``R`` random restarts; the minimum-MSE model is exported as a
set of weighted centroids ``{(c_1j, w_1j), ..., (c_kj, w_kj)}`` where
``w_ij`` counts the points assigned to ``c_ij``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kernels import KernelCounters, LloydKernel
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.model import WeightedCentroidSet, as_points
from repro.core.restarts import best_of_restarts

__all__ = ["PartialResult", "partial_kmeans"]


@dataclass(frozen=True)
class PartialResult:
    """Output of clustering one partition.

    Attributes:
        summary: the weighted centroid set exported to the merge step.
        mse: MSE of the winning restart *within the partition*.
        iterations: total Lloyd iterations across restarts (cost proxy).
        n_points: number of points in the partition.
        seconds: wall-clock spent clustering the partition.
        counters: kernel instrumentation aggregated across the restarts.
    """

    summary: WeightedCentroidSet
    mse: float
    iterations: int
    n_points: int
    seconds: float
    counters: KernelCounters | None = None


def partial_kmeans(
    partition: np.ndarray,
    k: int,
    restarts: int,
    rng: np.random.Generator,
    source: str = "",
    seeding: str = "random",
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    kernel: "str | LloydKernel | None" = None,
    exact: bool | None = None,
    early_abandon: bool = False,
) -> PartialResult:
    """Cluster one partition and summarise it as weighted centroids.

    Args:
        partition: ``(m, d)`` points of one memory-sized chunk.
        k: centroids per partition (the paper uses the cell-level ``k``).
        restarts: random-seed restarts; the min-MSE run is kept.
        rng: random generator for seed selection.
        source: label recorded on the output set (e.g. ``"P3"``).
        seeding: seed strategy for the restarts (paper: ``"random"``).
        criterion: convergence criterion (paper default when ``None``).
        max_iter: per-run iteration cap.
        kernel: assignment backend name (``"dense"``/``"hamerly"``/
            ``"elkan"``/``"blas"``) forwarded to every restart; exact
            backends are bit-identical.
        exact: ``False`` opts into the tolerance-close ``blas`` tier
            (forwarded to :func:`~repro.core.kernels.resolve_kernel`).
        early_abandon: forward the restart early-abandon heuristic.

    Returns:
        A :class:`PartialResult` whose ``summary`` weights sum to ``m``
        (every input point is represented exactly once).
    """
    pts = as_points(partition)
    start = time.perf_counter()
    report = best_of_restarts(
        pts,
        k,
        restarts,
        rng,
        seeding=seeding,
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
        early_abandon=early_abandon,
    )
    elapsed = time.perf_counter() - start
    summary = report.best.to_weighted_set(source=source)
    return PartialResult(
        summary=summary,
        mse=report.best.mse,
        iterations=report.total_iterations,
        n_points=pts.shape[0],
        seconds=elapsed,
        counters=report.counters,
    )
