"""Adaptive per-partition k via ECVQ — the paper's Section 3.3 remark.

The open question the paper leaves ("which is the best choice of k
depending on the partition size") is answered the way it suggests: run
ECVQ with a *maximum* k in each partial step, let under-used centroids
starve, and feed the surviving weighted centroids — however many each
partition kept — into the standard collective merge.

:class:`EcvqPartialMergeKMeans` mirrors the
:class:`~repro.core.pipeline.PartialMergeKMeans` API so the two are
drop-in comparable (see the ``ecvq`` ablation benchmark).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.ecvq import EcvqResult, ecvq
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.merge import MergeResult, merge_kmeans
from repro.core.model import ClusterModel, as_points
from repro.core.pipeline import split_into_chunks
from repro.core.quality import mse as evaluate_mse

__all__ = ["EcvqPartialMergeReport", "EcvqPartialMergeKMeans"]


@dataclass(frozen=True)
class EcvqPartialMergeReport:
    """Diagnostics of one ECVQ-partial/merge run.

    Attributes:
        model: final cell model (exactly ``k`` centroids).
        partials: the per-partition ECVQ results.
        merge: the merge-step result.
        effective_ks: the adaptive k each partition settled on.
    """

    model: ClusterModel
    partials: list[EcvqResult]
    merge: MergeResult
    effective_ks: list[int]


class EcvqPartialMergeKMeans:
    """Partial/merge with entropy-constrained partial steps.

    Args:
        k: centroids in the final merged model.
        max_k: ECVQ codebook ceiling per partition (defaults to ``2 * k``).
        lam: rate/distortion trade-off; larger prunes harder.
        n_chunks: partitions when :meth:`fit` receives a flat array.
        criterion: convergence criterion for the merge step.
        max_iter: iteration cap for all stages.
        seed: RNG seed.
    """

    def __init__(
        self,
        k: int,
        max_k: int | None = None,
        lam: float = 1.0,
        n_chunks: int = 5,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.max_k = max_k if max_k is not None else 2 * k
        if self.max_k < k:
            raise ValueError("max_k must be >= k")
        self.lam = lam
        self.n_chunks = n_chunks
        self.criterion = criterion
        self.max_iter = max_iter
        self._rng = np.random.default_rng(seed)

    def fit(self, points: np.ndarray) -> EcvqPartialMergeReport:
        """Random-split ``points`` and cluster with adaptive partial k."""
        pts = as_points(points)
        chunks = split_into_chunks(
            pts, min(self.n_chunks, pts.shape[0]), self._rng
        )
        return self.fit_chunks(chunks, evaluate_on=pts)

    def fit_chunks(
        self,
        chunks: list[np.ndarray],
        evaluate_on: np.ndarray | None = None,
    ) -> EcvqPartialMergeReport:
        """Cluster pre-partitioned chunks with ECVQ partial steps."""
        if not chunks:
            raise ValueError("fit_chunks requires at least one chunk")
        start = time.perf_counter()
        partials = [
            ecvq(
                as_points(chunk),
                max_k=self.max_k,
                lam=self.lam,
                rng=self._rng,
                max_iter=self.max_iter,
            )
            for chunk in chunks
        ]
        merged = merge_kmeans(
            [p.summary for p in partials],
            self.k,
            criterion=self.criterion,
            max_iter=self.max_iter,
        )
        total = time.perf_counter() - start

        if evaluate_on is not None:
            final_mse = evaluate_mse(evaluate_on, merged.model.centroids)
        else:
            final_mse = merged.mse
        model = ClusterModel(
            centroids=merged.model.centroids,
            weights=merged.model.weights,
            mse=final_mse,
            method="ecvq-partial/merge",
            partitions=len(chunks),
            merge_seconds=merged.seconds,
            total_seconds=total,
            extra={
                "lam": self.lam,
                "max_k": self.max_k,
                "effective_ks": [p.effective_k for p in partials],
            },
        )
        return EcvqPartialMergeReport(
            model=model,
            partials=partials,
            merge=merged,
            effective_ks=[p.effective_k for p in partials],
        )
