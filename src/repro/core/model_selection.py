"""Choosing k: distortion-curve utilities.

The paper "assume[s] that we are able to make an appropriate choice of
k" — this module provides the standard ways to actually make it:

* :func:`distortion_curve` — min-MSE across restarts for each candidate
  k (cheaply, on a sample),
* :func:`suggest_k_elbow` — the knee of that curve by maximum distance
  to the end-to-end chord (the classic geometric elbow),
* :func:`suggest_k_rate` — the smallest k whose marginal improvement
  falls below a relative threshold.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import as_points
from repro.core.restarts import best_of_restarts

__all__ = ["distortion_curve", "suggest_k_elbow", "suggest_k_rate"]


def distortion_curve(
    points: np.ndarray,
    ks: tuple[int, ...],
    restarts: int = 3,
    rng: np.random.Generator | None = None,
    sample_size: int | None = 4_000,
    max_iter: int = 100,
) -> list[tuple[int, float]]:
    """Min-MSE for each candidate k, optionally on a subsample.

    Args:
        points: the cell's data.
        ks: candidate cluster counts (must be strictly increasing).
        restarts: restarts per candidate.
        rng: randomness (fresh default if ``None``).
        sample_size: evaluate on at most this many points (``None`` uses
            everything; the curve's shape is what matters, not its
            absolute level).
        max_iter: Lloyd cap.

    Returns:
        ``[(k, mse), ...]`` in the given k order.
    """
    pts = as_points(points)
    if not ks:
        raise ValueError("ks must be non-empty")
    if list(ks) != sorted(set(ks)):
        raise ValueError("ks must be strictly increasing")
    if ks[-1] > pts.shape[0]:
        raise ValueError("largest k exceeds the number of points")
    generator = rng if rng is not None else np.random.default_rng()
    if sample_size is not None and pts.shape[0] > sample_size:
        idx = generator.choice(pts.shape[0], size=sample_size, replace=False)
        pts = pts[idx]

    curve = []
    for k in ks:
        report = best_of_restarts(
            pts, k, restarts, generator, max_iter=max_iter
        )
        curve.append((k, report.best.mse))
    return curve


def suggest_k_elbow(curve: list[tuple[int, float]]) -> int:
    """The knee of a distortion curve by maximum chord distance.

    Normalises both axes, draws the chord from the first to the last
    point, and returns the k farthest below it.
    """
    if len(curve) < 3:
        raise ValueError("elbow detection needs at least 3 curve points")
    ks = np.array([k for k, __ in curve], dtype=float)
    mses = np.array([m for __, m in curve], dtype=float)
    x = (ks - ks[0]) / max(ks[-1] - ks[0], 1e-12)
    y_span = max(mses[0] - mses[-1], 1e-12)
    y = (mses - mses[-1]) / y_span
    # Distance from each point to the chord (0,1)-(1,0): |x + y - 1| / √2.
    distances = np.abs(x + y - 1.0)
    return int(ks[int(np.argmax(distances))])


def suggest_k_rate(
    curve: list[tuple[int, float]], min_improvement: float = 0.1
) -> int:
    """Smallest k whose next step improves MSE by less than the threshold.

    Improvement is measured relative to the *initial* distortion (the
    k = ks[0] level): once a step recovers less than ``min_improvement``
    of the total reducible error, more clusters are just subdividing
    noise.  (Normalising by the current MSE instead would keep accepting
    steps forever, since within-cluster noise halves with every
    doubling of k.)

    Args:
        curve: ``[(k, mse), ...]`` with increasing k.
        min_improvement: fraction of the initial MSE below which the
            next step is not considered worth paying for.

    Returns:
        The selected k (the last k if every step keeps improving).
    """
    if len(curve) < 2:
        raise ValueError("rate detection needs at least 2 curve points")
    if not 0.0 < min_improvement < 1.0:
        raise ValueError("min_improvement must be in (0, 1)")
    initial = curve[0][1]
    if initial <= 0:
        return curve[0][0]
    for (k, mse_now), (__, mse_next) in zip(curve, curve[1:]):
        improvement = (mse_now - mse_next) / initial
        if improvement < min_improvement:
            return k
    return curve[-1][0]
