"""Merge k-means: combine partitions' weighted centroids into one model.

The paper's Step 3 (Section 3.3).  Given the pooled weighted centroids of
all partitions, a weighted k-means is run with a deliberate, non-random
initialization: the ``k`` centroids with the *largest weights*, because
heavy centroids are "likely to represent significant cluster centroids
already".

Two merge disciplines are implemented:

* **collective** (the paper's choice): pool every partition's centroids
  first, then run one weighted k-means — all partitions get "the same
  statistical chance to contribute".
* **incremental** (the paper's rejected alternative, kept for the ablation
  benchmark): fold partitions in one at a time, re-clustering the running
  summary with each new arrival; earlier partitions are treated
  preferentially, which the paper predicts (and our ablation confirms)
  yields a less faithful representation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kernels import KernelCounters, LloydKernel
from repro.core.kmeans import DEFAULT_MAX_ITER, lloyd
from repro.core.model import KMeansResult, WeightedCentroidSet
from repro.core.seeding import largest_weight_seeds, random_seeds

__all__ = ["MergeResult", "merge_kmeans", "incremental_merge_kmeans"]


@dataclass(frozen=True)
class MergeResult:
    """Output of the merge step.

    Attributes:
        model: final weighted centroid set for the whole grid cell.
        mse: weighted MSE of the merge clustering *over the input
            centroids* (the paper's ``E_pm`` normalised by weight mass).
        iterations: Lloyd iterations used by the merge k-means.
        seconds: wall-clock spent merging.
        counters: kernel instrumentation aggregated over the merge runs.
    """

    model: WeightedCentroidSet
    mse: float
    iterations: int
    seconds: float
    counters: KernelCounters | None = None


def _merge_once(
    pooled: WeightedCentroidSet,
    k: int,
    criterion: ConvergenceCriterion | None,
    max_iter: int,
    kernel: "str | LloydKernel | None" = None,
    exact: bool | None = None,
) -> KMeansResult:
    """Run one weighted k-means over pooled centroids, seeded by weight."""
    seeds = largest_weight_seeds(pooled.centroids, k, pooled.weights)
    return lloyd(
        pooled.centroids,
        seeds,
        weights=pooled.weights,
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
    )


def merge_kmeans(
    partials: list[WeightedCentroidSet],
    k: int,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    extra_random_restarts: int = 0,
    rng: np.random.Generator | None = None,
    kernel: "str | LloydKernel | None" = None,
    exact: bool | None = None,
) -> MergeResult:
    """Collective merge: pool all partials, weighted k-means once.

    Args:
        partials: one weighted centroid set per partition.
        k: number of centroids in the final model.
        criterion: convergence criterion (paper default when ``None``).
        max_iter: iteration cap for the merge k-means.
        extra_random_restarts: extension beyond the paper — additionally
            run this many randomly-seeded weighted k-means over the pool
            and keep the lowest-error run.  The paper's deterministic
            largest-weight seeding picks near-duplicate heavy centroids
            when many partitions summarise the same clusters (likely with
            10+ overlapping chunks), and a few random restarts repair
            those collapses; 0 reproduces the paper exactly.
        rng: randomness for the extra restarts (fresh default if needed).
        kernel: assignment backend forwarded to every merge k-means run
            (exact backends are bit-identical; performance knob only).
        exact: ``False`` opts into the tolerance-close ``blas`` tier.

    Returns:
        A :class:`MergeResult`; the model's weights sum to the total number
        of original points across all partitions.
    """
    if not partials:
        raise ValueError("merge_kmeans requires at least one partial result")
    if extra_random_restarts < 0:
        raise ValueError("extra_random_restarts must be >= 0")
    start = time.perf_counter()
    pooled = WeightedCentroidSet.concatenate(partials)
    if pooled.k <= k:
        # Fewer pooled centroids than requested clusters: the pooled set is
        # already the best k'-cluster model of itself.
        elapsed = time.perf_counter() - start
        return MergeResult(model=pooled, mse=0.0, iterations=0, seconds=elapsed)
    counters = KernelCounters()
    best = _merge_once(
        pooled, k, criterion, max_iter, kernel=kernel, exact=exact
    )
    iterations = best.iterations
    counters.merge(best.counters)
    if extra_random_restarts:
        generator = rng if rng is not None else np.random.default_rng()
        for __ in range(extra_random_restarts):
            seeds = random_seeds(pooled.centroids, k, generator)
            candidate = lloyd(
                pooled.centroids,
                seeds,
                weights=pooled.weights,
                criterion=criterion,
                max_iter=max_iter,
                kernel=kernel,
                exact=exact,
            )
            iterations += candidate.iterations
            counters.merge(candidate.counters)
            if candidate.mse < best.mse:
                best = candidate
    elapsed = time.perf_counter() - start
    return MergeResult(
        model=best.to_weighted_set(source="merge"),
        mse=best.mse,
        iterations=iterations,
        seconds=elapsed,
        counters=counters,
    )


def incremental_merge_kmeans(
    partials: list[WeightedCentroidSet],
    k: int,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    kernel: "str | LloydKernel | None" = None,
    exact: bool | None = None,
) -> MergeResult:
    """Incremental merge: fold each partition into a running summary.

    After each arrival the running summary (at most ``k`` weighted
    centroids) is pooled with the new partition's centroids and
    re-clustered.  Earlier partitions therefore participate in every
    subsequent merge — the statistical bias the paper rejects.  Exposed for
    the collective-vs-incremental ablation.
    """
    if not partials:
        raise ValueError("incremental merge requires at least one partial result")
    start = time.perf_counter()
    running = partials[0]
    iterations = 0
    last_mse = 0.0
    counters = KernelCounters()
    for incoming in partials[1:]:
        pooled = WeightedCentroidSet.concatenate([running, incoming])
        if pooled.k <= k:
            running = pooled
            continue
        result = _merge_once(
            pooled, k, criterion, max_iter, kernel=kernel, exact=exact
        )
        iterations += result.iterations
        last_mse = result.mse
        counters.merge(result.counters)
        running = result.to_weighted_set(source="incremental-merge")
    elapsed = time.perf_counter() - start
    return MergeResult(
        model=running,
        mse=last_mse,
        iterations=iterations,
        seconds=elapsed,
        counters=counters,
    )
