"""Seed-selection strategies for k-means initialization.

The paper uses two strategies:

* **uniform random** seeds drawn from the data points for the serial and
  partial steps (repeated ``R`` times, keeping the minimum-MSE run), and
* **largest-weight** seeds for the merge step — the ``k`` incoming weighted
  centroids with the greatest point mass, which "forces the algorithm to
  take into account which data points are likely to represent significant
  cluster centroids already".

k-means++ is included as a modern reference strategy for the ablation
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import as_points, as_weights

__all__ = [
    "random_seeds",
    "distinct_random_seeds",
    "largest_weight_seeds",
    "kmeans_plus_plus_seeds",
    "kmeans_parallel_seeds",
    "resolve_strategy",
]


def _effective_k(k: int, n: int) -> int:
    """Clamp the requested ``k`` to the number of available points.

    The paper fixes k=40 even for 250-point cells; with fewer points than
    seeds the convention here (and in the experiment harness) is to use
    every point as a seed.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return min(k, n)


def random_seeds(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``k`` seeds uniformly from the data points, without replacement.

    This is the paper's initialization for the serial and partial steps.
    """
    pts = as_points(points)
    kk = _effective_k(k, pts.shape[0])
    idx = rng.choice(pts.shape[0], size=kk, replace=False)
    return pts[idx].copy()


def distinct_random_seeds(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Like :func:`random_seeds` but sample from *distinct* point values.

    Duplicated points in the data can otherwise yield coincident seeds,
    which guarantees empty clusters on the first iteration.  Falls back to
    plain random seeds when there are fewer distinct values than ``k``.
    """
    pts = as_points(points)
    distinct = np.unique(pts, axis=0)
    if distinct.shape[0] >= min(k, pts.shape[0]):
        kk = _effective_k(k, distinct.shape[0])
        idx = rng.choice(distinct.shape[0], size=kk, replace=False)
        return distinct[idx].copy()
    return random_seeds(pts, k, rng)


def largest_weight_seeds(
    points: np.ndarray, k: int, weights: np.ndarray
) -> np.ndarray:
    """Pick the ``k`` points with the largest weights (the merge seeding).

    Ties are broken deterministically by input order so merge results are
    reproducible for a fixed input stream.
    """
    pts = as_points(points)
    wts = as_weights(weights, pts.shape[0])
    kk = _effective_k(k, pts.shape[0])
    # Stable selection of the top-k by weight: sort by (-weight, index).
    order = np.lexsort((np.arange(pts.shape[0]), -wts))
    return pts[order[:kk]].copy()


def kmeans_plus_plus_seeds(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """D^2-weighted (k-means++) seeding, optionally weight-aware.

    Not used by the paper; provided for the seeding ablation benchmark.
    """
    pts = as_points(points)
    wts = as_weights(weights, pts.shape[0])
    kk = _effective_k(k, pts.shape[0])
    n = pts.shape[0]

    probs = wts / wts.sum()
    first = int(rng.choice(n, p=probs))
    seeds = [pts[first]]
    closest_sq = ((pts - pts[first]) ** 2).sum(axis=1)

    while len(seeds) < kk:
        mass = closest_sq * wts
        total = mass.sum()
        if total <= 0.0:
            # All remaining points coincide with chosen seeds; fill uniformly.
            remaining = kk - len(seeds)
            idx = rng.choice(n, size=remaining, replace=False)
            seeds.extend(pts[i] for i in idx)
            break
        nxt = int(rng.choice(n, p=mass / total))
        seeds.append(pts[nxt])
        closest_sq = np.minimum(closest_sq, ((pts - pts[nxt]) ** 2).sum(axis=1))

    return np.asarray(seeds, dtype=np.float64)


def kmeans_parallel_seeds(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    rounds: int = 5,
    oversampling: float | None = None,
) -> np.ndarray:
    """k-means|| seeding (Bahmani et al., "Scalable K-Means++").

    Instead of ``k`` strictly sequential D^2 draws, each of ``rounds``
    passes samples ~``oversampling`` candidates *independently* with
    probability proportional to their D^2 contribution, then the
    oversampled candidate set is reduced back to ``k`` by weighting each
    candidate with the point mass it attracts and running k-means++ over
    the candidates alone.  One high-quality seed set per shard replaces
    the paper's restart-heavy ``R``-times-random seeding, which is what
    makes restart-free parallel shards practical.

    Args:
        points: ``(n, d)`` candidate pool.
        k: number of seeds wanted.
        rng: generator driving every random draw (deterministic per cell).
        weights: optional point weights (mass-aware D^2 sampling).
        rounds: number of oversampling passes (the paper suggests ~5).
        oversampling: expected candidates per round (``ell``); defaults
            to ``2 * k`` as recommended by Bahmani et al.

    Returns:
        ``(k', d)`` seed array with ``k' = min(k, n)``.
    """
    pts = as_points(points)
    wts = as_weights(weights, pts.shape[0])
    kk = _effective_k(k, pts.shape[0])
    n = pts.shape[0]
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    ell = float(oversampling) if oversampling is not None else 2.0 * kk
    if ell <= 0.0:
        raise ValueError(f"oversampling must be > 0, got {ell}")

    probs = wts / wts.sum()
    first = int(rng.choice(n, p=probs))
    chosen = {first}
    closest_sq = ((pts - pts[first]) ** 2).sum(axis=1)

    for _ in range(rounds):
        cost = float((closest_sq * wts).sum())
        if cost <= 0.0:
            break  # every point already coincides with a candidate
        # Independent Bernoulli draws: p_x = min(1, ell * d^2(x) w_x / cost).
        p = np.minimum(1.0, ell * closest_sq * wts / cost)
        drawn = np.flatnonzero(rng.random(n) < p)
        fresh = [int(i) for i in drawn if int(i) not in chosen]
        if not fresh:
            continue
        chosen.update(fresh)
        dist_new = ((pts[None, :, :] - pts[fresh][:, None, :]) ** 2).sum(
            axis=2
        )
        closest_sq = np.minimum(closest_sq, dist_new.min(axis=0))

    candidates = np.array(sorted(chosen), dtype=np.intp)
    cand_pts = pts[candidates]
    if candidates.shape[0] <= kk:
        if candidates.shape[0] == kk:
            return cand_pts.copy()
        # Too few candidates survived oversampling; top up uniformly.
        pool = np.setdiff1d(np.arange(n), candidates, assume_unique=True)
        extra = rng.choice(pool, size=kk - candidates.shape[0], replace=False)
        return np.concatenate([cand_pts, pts[extra]], axis=0)

    # Weight every candidate by the point mass it attracts, then recluster
    # the small candidate set down to k with mass-aware k-means++.
    dist = ((pts[:, None, :] - cand_pts[None, :, :]) ** 2).sum(axis=2)
    owner = dist.argmin(axis=1)
    cand_wts = np.bincount(owner, weights=wts, minlength=candidates.shape[0])
    cand_wts = np.maximum(cand_wts, np.finfo(np.float64).tiny)
    return kmeans_plus_plus_seeds(cand_pts, kk, rng, weights=cand_wts)


def resolve_strategy(name: str):
    """Map a strategy name to a callable ``(points, k, rng) -> seeds``.

    Recognised names: ``"random"``, ``"distinct"``, ``"kmeans++"``,
    ``"kmeans||"``.  The weight-based merge seeding is not resolvable here
    because its signature differs (it needs weights, not an rng).
    """
    strategies = {
        "random": random_seeds,
        "distinct": distinct_random_seeds,
        "kmeans++": kmeans_plus_plus_seeds,
        "kmeans||": kmeans_parallel_seeds,
    }
    if name not in strategies:
        raise ValueError(
            f"unknown seeding strategy {name!r}; expected one of {sorted(strategies)}"
        )
    return strategies[name]
