"""Incremental cluster-model maintenance.

Grid cells are not static: a satellite keeps revisiting, so a cell's
bucket grows between clustering runs.  The partial/merge decomposition
gives incremental maintenance for free — an existing
:class:`~repro.core.model.ClusterModel` is itself a weighted centroid
set, so folding in new points is: partial k-means on the new chunk, then
a weighted merge of {old model, new summary}.

:func:`update_model` performs one such fold; :class:`IncrementalClusterer`
wraps it into a bounded-memory online clusterer whose state is never more
than ``k`` weighted centroids plus the incoming chunk.

This differs from the rejected *incremental merge* discipline of
Section 3.3 in scope, not mechanism: there, incremental folding was an
inferior alternative for a batch of simultaneously-available partitions;
here it is the only option because the data arrives over time.  The
paper's fairness caveat therefore applies — earlier data participates in
more merges — and :attr:`IncrementalClusterer.refresh_every` lets users
bound the drift by periodically re-merging retained summaries.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kmeans import DEFAULT_MAX_ITER
from repro.core.merge import merge_kmeans
from repro.core.model import ClusterModel, WeightedCentroidSet, as_points
from repro.core.partial import partial_kmeans

__all__ = ["fold_summary", "update_model", "IncrementalClusterer"]


def fold_summary(
    model: ClusterModel | None,
    summary: WeightedCentroidSet,
    k: int | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    kernel: str | None = None,
    exact: bool | None = None,
) -> ClusterModel:
    """Merge an already-computed partition summary into a cell model.

    This is the second half of :func:`update_model` — the deterministic
    weighted merge of {old model, new summary} — exposed on its own so
    callers that journal the summary (the serving layer's ingest path)
    can replay the exact fold after a restart: :func:`merge_kmeans` uses
    deterministic largest-weight seeding, so the folded model is a pure
    function of ``(model, summary)``.

    Args:
        model: the current cell model, ``None`` for a brand-new cell, or
            a :meth:`ClusterModel.empty` watermark (a zero-point cell);
            both of the latter bootstrap from ``summary`` alone.
        summary: the new chunk's weighted centroid summary.
        k: centroids in the folded model; defaults to ``model.k`` and is
            **required** when ``model`` is ``None`` or empty.
        criterion: convergence criterion for the merge.
        max_iter: Lloyd cap for the merge.
        kernel: assignment backend for the merge (exact kernels are
            bit-identical; performance knob only).
        exact: ``False`` opts into the tolerance-close ``blas`` tier.

    Returns:
        A new :class:`ClusterModel` whose weights sum to
        ``old mass + summary mass``.

    Raises:
        ValueError: ``model`` is ``None``/empty and ``k`` was not given.
    """
    base_populated = model is not None and model.k > 0
    if k is None:
        if not base_populated:
            raise ValueError(
                "cannot fold into an empty model without k: pass k= to "
                "bootstrap a zero-point-cell watermark or a new cell"
            )
        k = model.k
    pool = [model.to_weighted_set()] if base_populated else []
    pool.append(summary)
    merged = merge_kmeans(
        pool, k, criterion=criterion, max_iter=max_iter, kernel=kernel,
        exact=exact,
    )
    base = model if model is not None else ClusterModel.empty(summary.dim)
    return ClusterModel(
        centroids=merged.model.centroids,
        weights=merged.model.weights,
        mse=merged.mse,
        method="partial/merge[incremental-update]",
        partitions=base.partitions + 1,
        restarts=base.restarts,
        partial_seconds=base.partial_seconds,
        merge_seconds=base.merge_seconds + merged.seconds,
        total_seconds=base.total_seconds + merged.seconds,
        extra={"updates": base.extra.get("updates", 0) + 1},
    )


def update_model(
    model: ClusterModel,
    new_points: np.ndarray,
    restarts: int = 3,
    rng: np.random.Generator | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    k: int | None = None,
    kernel: str | None = None,
    exact: bool | None = None,
) -> ClusterModel:
    """Fold ``new_points`` into an existing cell model.

    Args:
        model: the current cell model (its weights are point counts).
            A :meth:`ClusterModel.empty` watermark — what zero-point
            cells emit — is bootstrapped from the new points alone,
            provided ``k`` is given.
        new_points: newly arrived measurements for the same cell.
        restarts: seed restarts for the new chunk's partial k-means.
        rng: randomness for the partial step (fresh default if ``None``).
        criterion: convergence criterion for both stages.
        max_iter: Lloyd cap for both stages.
        k: centroids for the update; defaults to ``model.k`` and is
            **required** when ``model`` is an empty watermark.
        kernel: assignment backend for both stages.
        exact: ``False`` opts into the tolerance-close ``blas`` tier.

    Returns:
        A new :class:`ClusterModel` with ``k`` preserved and weights
        summing to ``old mass + len(new_points)``.

    Raises:
        ValueError: ``model`` is an empty watermark and ``k`` was not
            given.
    """
    pts = as_points(new_points)
    generator = rng if rng is not None else np.random.default_rng()
    if k is None:
        if model.k == 0:
            raise ValueError(
                "model is an empty zero-point-cell watermark: pass k= "
                "to bootstrap it from the new points"
            )
        k = model.k
    fresh = partial_kmeans(
        pts,
        k,
        restarts,
        generator,
        source="update",
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
    )
    folded = fold_summary(
        model,
        fresh.summary,
        k=k,
        criterion=criterion,
        max_iter=max_iter,
        kernel=kernel,
        exact=exact,
    )
    return replace(
        folded,
        restarts=restarts,
        partial_seconds=folded.partial_seconds + fresh.seconds,
        total_seconds=folded.total_seconds + fresh.seconds,
    )


class IncrementalClusterer:
    """Bounded-memory online clustering of one growing grid cell.

    State between chunks is at most ``refresh_every`` weighted summaries
    of ``k`` centroids each; the full point set is never retained.

    Args:
        k: centroids in the maintained model.
        restarts: seed restarts per incoming chunk.
        refresh_every: how many chunk summaries to retain before
            re-merging them collectively (1 = fold eagerly, the pure
            incremental discipline; larger values trade memory for the
            collective merge's statistical fairness).
        criterion: convergence criterion for all stages.
        max_iter: Lloyd cap for all stages.
        seed: RNG seed.

    Example:
        >>> import numpy as np
        >>> from repro.core.incremental import IncrementalClusterer
        >>> clusterer = IncrementalClusterer(k=8, seed=0)
        >>> for _ in range(5):
        ...     clusterer.add(np.random.default_rng(0).normal(size=(200, 3)))
        >>> clusterer.model().k
        8
    """

    def __init__(
        self,
        k: int,
        restarts: int = 3,
        refresh_every: int = 4,
        criterion: ConvergenceCriterion | None = None,
        max_iter: int = DEFAULT_MAX_ITER,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        self.k = k
        self.restarts = restarts
        self.refresh_every = refresh_every
        self.criterion = criterion
        self.max_iter = max_iter
        self._rng = np.random.default_rng(seed)
        self._retained: list[WeightedCentroidSet] = []
        self._chunks_seen = 0
        self._points_seen = 0

    @property
    def points_seen(self) -> int:
        """Total points folded in so far."""
        return self._points_seen

    @property
    def chunks_seen(self) -> int:
        """Chunks folded in so far."""
        return self._chunks_seen

    def adopt(self, model: ClusterModel) -> None:
        """Fold an existing cell model (e.g. journal-replayed) into state.

        The model's weighted centroids join the retained summaries as if
        they were a chunk summary, so a clusterer can warm-start from a
        journaled model and keep folding new chunks after it.  An empty
        :meth:`ClusterModel.empty` watermark — what zero-point cells
        emit — is a no-op rather than an error: the cell simply has no
        mass to contribute yet.
        """
        if model.k == 0:
            return
        self._retained.append(model.to_weighted_set())
        self._points_seen += int(round(float(model.weights.sum())))
        if len(self._retained) >= self.refresh_every:
            self._compact()

    def add(self, chunk: np.ndarray) -> None:
        """Fold one chunk of new points into the running state."""
        pts = as_points(chunk)
        summary = partial_kmeans(
            pts,
            self.k,
            self.restarts,
            self._rng,
            source=f"chunk{self._chunks_seen}",
            criterion=self.criterion,
            max_iter=self.max_iter,
        ).summary
        self._retained.append(summary)
        self._chunks_seen += 1
        self._points_seen += pts.shape[0]
        if len(self._retained) >= self.refresh_every:
            self._compact()

    def _compact(self) -> None:
        """Collectively merge retained summaries down to one."""
        merged = merge_kmeans(
            self._retained,
            self.k,
            criterion=self.criterion,
            max_iter=self.max_iter,
        )
        self._retained = [merged.model]

    def model(self) -> ClusterModel:
        """The current cell model (compacts retained state first).

        Raises:
            ValueError: if no chunk has been added yet.
        """
        if not self._retained:
            raise ValueError("no data has been added yet")
        if len(self._retained) > 1:
            self._compact()
        summary = self._retained[0]
        return ClusterModel(
            centroids=summary.centroids,
            weights=summary.weights,
            mse=float("nan"),
            method="incremental-clusterer",
            partitions=self._chunks_seen,
            restarts=self.restarts,
            extra={"points_seen": self._points_seen},
        )
