"""Weighted Lloyd k-means — the computational kernel shared by every stage.

The serial baseline, the partial operator, and the merge operator all run
the same iteration; they differ only in their inputs (raw points vs weighted
centroids) and seeding.  Implementing one weighted kernel keeps the paper's
"the code for the serial and the partial k-means implementation are
identical" property.

Algorithm (paper Section 2):

1. take ``k`` initial seeds,
2. assign every point to its nearest centroid (squared Euclidean),
3. recompute each centroid as the weighted mean of its cluster,
4. repeat until ``MSE(n-1) - MSE(n) <= tol``.

Empty clusters — which the paper does not discuss but any fixed-k
implementation must handle — are repaired by re-seeding the empty centroid
to the in-data point currently farthest from its assigned centroid, a
standard Lloyd repair that strictly reduces SSE potential.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriterion, MseDeltaCriterion
from repro.core.model import KMeansResult, as_points, as_weights
from repro.core.quality import pairwise_sq_distances

__all__ = ["lloyd", "DEFAULT_MAX_ITER"]

#: Safety cap on Lloyd iterations; the paper relies on the MSE-delta
#: criterion alone, which in floating point can stall on plateaus.
DEFAULT_MAX_ITER = 300


def _repair_empty_clusters(
    centroids: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    assignments: np.ndarray,
    sq_dists: np.ndarray,
    empty: np.ndarray,
) -> None:
    """Re-seed empty centroids to the worst-represented points (in place).

    Each empty centroid takes the positively-weighted point with the largest
    current squared distance; that point's distance is then zeroed so that
    several empty clusters pick distinct points.
    """
    penalty = sq_dists * (weights > 0)
    for centroid_index in empty:
        donor = int(np.argmax(penalty))
        if penalty[donor] <= 0.0:
            # Degenerate data (all points coincide with centroids); leave the
            # empty centroid where it is.
            continue
        centroids[centroid_index] = points[donor]
        assignments[donor] = centroid_index
        penalty[donor] = 0.0


def lloyd(
    points: np.ndarray,
    seeds: np.ndarray,
    weights: np.ndarray | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
) -> KMeansResult:
    """Run weighted Lloyd k-means from the given seeds.

    Args:
        points: ``(n, d)`` data (raw points, or centroids in the merge step).
        seeds: ``(k, d)`` initial centroids; ``k <= n`` is required.
        weights: optional ``(n,)`` non-negative point weights (the merge
            step passes the partial steps' point counts; ``None`` means
            unit weights and reproduces the classic unweighted algorithm).
        criterion: convergence test; defaults to the paper's
            ``MSE(n-1) - MSE(n) <= 1e-9``.
        max_iter: hard iteration cap.

    Returns:
        A :class:`~repro.core.model.KMeansResult`.  ``result.mse`` is the
        weighted mean square error at the final assignment.
    """
    pts = as_points(points)
    cents = as_points(seeds).copy()
    n, dim = pts.shape
    k = cents.shape[0]
    if cents.shape[1] != dim:
        raise ValueError(
            f"seed dimensionality {cents.shape[1]} does not match data {dim}"
        )
    if k > n:
        raise ValueError(f"cannot fit k={k} clusters to n={n} points")
    wts = as_weights(weights, n)
    total_mass = float(wts.sum())
    test = criterion if criterion is not None else MseDeltaCriterion()
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")

    prev_mse = np.inf
    assignments = np.zeros(n, dtype=np.intp)
    sq_dists = np.zeros(n, dtype=np.float64)
    iterations = 0
    converged = False

    for iterations in range(1, max_iter + 1):
        d2 = pairwise_sq_distances(pts, cents)
        assignments = np.argmin(d2, axis=1)
        sq_dists = d2[np.arange(n), assignments]

        cluster_mass = np.bincount(assignments, weights=wts, minlength=k)
        empty = np.flatnonzero(cluster_mass == 0)
        if empty.size:
            _repair_empty_clusters(cents, pts, wts, assignments, sq_dists, empty)
            d2 = pairwise_sq_distances(pts, cents)
            assignments = np.argmin(d2, axis=1)
            sq_dists = d2[np.arange(n), assignments]
            cluster_mass = np.bincount(assignments, weights=wts, minlength=k)

        # Weighted centroid recalculation: mu_j = sum(w_i x_i) / sum(w_i).
        weighted_pts = pts * wts[:, None]
        sums = np.zeros((k, dim), dtype=np.float64)
        np.add.at(sums, assignments, weighted_pts)
        occupied = cluster_mass > 0
        new_cents = cents.copy()
        new_cents[occupied] = sums[occupied] / cluster_mass[occupied, None]

        shift = float(np.sqrt(((new_cents - cents) ** 2).sum(axis=1)).max())
        cents = new_cents

        cur_mse = float(np.dot(wts, sq_dists)) / total_mass
        if test.converged(prev_mse, cur_mse, shift):
            converged = True
            prev_mse = cur_mse
            break
        prev_mse = cur_mse

    # Final assignment against the last recalculated centroids so that the
    # reported MSE matches the returned model exactly.
    d2 = pairwise_sq_distances(pts, cents)
    assignments = np.argmin(d2, axis=1)
    sq_dists = d2[np.arange(n), assignments]
    cluster_mass = np.bincount(assignments, weights=wts, minlength=k)
    final_sse = float(np.dot(wts, sq_dists))

    return KMeansResult(
        centroids=cents,
        assignments=assignments,
        cluster_weights=cluster_mass,
        sse=final_sse,
        mse=final_sse / total_mass,
        iterations=iterations,
        converged=converged,
    )
