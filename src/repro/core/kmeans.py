"""Weighted Lloyd k-means — the computational kernel shared by every stage.

The serial baseline, the partial operator, and the merge operator all run
the same iteration; they differ only in their inputs (raw points vs weighted
centroids) and seeding.  Implementing one weighted kernel keeps the paper's
"the code for the serial and the partial k-means implementation are
identical" property.

Algorithm (paper Section 2):

1. take ``k`` initial seeds,
2. assign every point to its nearest centroid (squared Euclidean),
3. recompute each centroid as the weighted mean of its cluster,
4. repeat until ``MSE(n-1) - MSE(n) <= tol``.

The assignment step (2) is delegated to a pluggable backend from
:mod:`repro.core.kernels` — dense reference, Hamerly bounds pruning, or
tiled matmul expansion — selected via the ``kernel=`` argument or the
``REPRO_KMEANS_KERNEL`` environment variable.  All backends are
bit-identical in every output (see the kernels module docstring), so the
choice is purely a performance knob.

Empty clusters — which the paper does not discuss but any fixed-k
implementation must handle — are repaired by re-seeding the empty centroid
to the in-data point currently farthest from its assigned centroid, a
standard Lloyd repair that strictly reduces SSE potential.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriterion, MseDeltaCriterion
from repro.core.kernels import (
    LloydKernel,
    _pair_sq_distances,
    resolve_kernel,
)
from repro.core.model import KMeansResult, as_points, as_weights

__all__ = ["lloyd", "DEFAULT_MAX_ITER"]

#: Safety cap on Lloyd iterations; the paper relies on the MSE-delta
#: criterion alone, which in floating point can stall on plateaus.
DEFAULT_MAX_ITER = 300


def _repair_empty_clusters(
    centroids: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    assignments: np.ndarray,
    sq_dists: np.ndarray,
    empty: np.ndarray,
) -> None:
    """Re-seed empty centroids to the worst-represented points (in place).

    Each empty centroid takes the positively-weighted point with the largest
    current squared distance.  After every reseed the penalty array is
    lowered to account for the just-placed centroid
    (``penalty = min(penalty, d²(points, donor))``): a point sitting next to
    a fresh donor is no longer badly represented, so two empty centroids can
    no longer land on near-duplicate donors when the zeroed donor happened
    to be the unique maximum.
    """
    penalty = sq_dists * (weights > 0)
    for centroid_index in empty:
        donor = int(np.argmax(penalty))
        if penalty[donor] <= 0.0:
            # Degenerate data (all points coincide with centroids); leave the
            # empty centroid where it is.
            continue
        centroids[centroid_index] = points[donor]
        assignments[donor] = centroid_index
        # The reseeded centroid sits exactly on the donor point, so every
        # point's distance to its nearest centroid is now at most its
        # distance to the donor.
        np.minimum(
            penalty, _pair_sq_distances(points, points[donor]), out=penalty
        )
        penalty[donor] = 0.0


def lloyd(
    points: np.ndarray,
    seeds: np.ndarray,
    weights: np.ndarray | None = None,
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    kernel: "str | LloydKernel | None" = None,
    exact: bool | None = None,
    abandon_sse: float | None = None,
) -> KMeansResult:
    """Run weighted Lloyd k-means from the given seeds.

    Args:
        points: ``(n, d)`` data (raw points, or centroids in the merge step).
        seeds: ``(k, d)`` initial centroids; ``k <= n`` is required.
        weights: optional ``(n,)`` non-negative point weights (the merge
            step passes the partial steps' point counts; ``None`` means
            unit weights and reproduces the classic unweighted algorithm).
        criterion: convergence test; defaults to the paper's
            ``MSE(n-1) - MSE(n) <= 1e-9``.
        max_iter: hard iteration cap.
        kernel: assignment backend — a name (``"dense"``, ``"hamerly"``,
            ``"elkan"``, ``"blas"``), a
            :class:`~repro.core.kernels.LloydKernel` instance, or ``None``
            to consult ``REPRO_KMEANS_KERNEL`` and fall back to the dense
            reference.  Exact backends produce bit-identical results.
        exact: ``True`` (the default when ``None`` and
            ``REPRO_KMEANS_EXACT`` is unset) restricts selection to
            bit-identical kernels; ``False`` additionally admits the
            ``blas`` tier, whose outputs are only tolerance-close
            (see :func:`repro.core.kernels.blas_mse_tolerance`).
        abandon_sse: optional incumbent SSE for restart early-abandoning.
            When the run's optimistically-projected final SSE (current SSE
            minus the latest per-iteration improvement times the remaining
            iterations) still exceeds this value, the run stops early with
            ``result.abandoned`` set.  This is a heuristic (Lloyd's SSE
            improvements shrink over time, so the linear projection is a
            lower bound in practice, not a theorem); abandoned runs always
            have ``sse`` above the incumbent at the abandoning iteration
            and are never selected by ``best_of_restarts``.

    Returns:
        A :class:`~repro.core.model.KMeansResult`.  ``result.mse`` is the
        weighted mean square error at the final assignment;
        ``result.counters`` carries the kernel's instrumentation.
    """
    pts = as_points(points)
    cents = as_points(seeds).copy()
    n, dim = pts.shape
    k = cents.shape[0]
    if cents.shape[1] != dim:
        raise ValueError(
            f"seed dimensionality {cents.shape[1]} does not match data {dim}"
        )
    if k > n:
        raise ValueError(f"cannot fit k={k} clusters to n={n} points")
    wts = as_weights(weights, n)
    total_mass = float(wts.sum())
    test = criterion if criterion is not None else MseDeltaCriterion()
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")

    backend = resolve_kernel(kernel, exact=exact)
    backend.start(pts, wts)

    # Hoisted out of the loop: the weighted points never change.
    weighted_pts = pts * wts[:, None]

    prev_sse = np.inf
    iterations = 0
    converged = False
    abandoned = False

    for iterations in range(1, max_iter + 1):
        assignments, sq_dists = backend.assign(cents)

        # Delegated: bounds kernels recount only clusters whose
        # membership changed (bit-identical subset bincount).
        cluster_mass = backend.cluster_mass(wts, assignments, k)
        empty = np.flatnonzero(cluster_mass == 0)
        repaired = bool(empty.size)
        if repaired:
            _repair_empty_clusters(cents, pts, wts, assignments, sq_dists, empty)
            # A centroid teleported; cached kernel bounds are void.
            backend.invalidate()
            assignments, sq_dists = backend.assign(cents)
            cluster_mass = backend.cluster_mass(wts, assignments, k)

        # Weighted centroid recalculation: mu_j = sum(w_i x_i) / sum(w_i).
        # Delegated to the kernel so bounds kernels can reuse cached sums
        # for untouched clusters (bit-exact) or maintain them
        # incrementally (blas tier).
        sums = backend.aggregate(weighted_pts, assignments, k)
        occupied = cluster_mass > 0
        new_cents = cents.copy()
        new_cents[occupied] = sums[occupied] / cluster_mass[occupied, None]

        shift = float(np.sqrt(((new_cents - cents) ** 2).sum(axis=1)).max())
        backend.notify_update(cents, new_cents)
        cents = new_cents

        # Delegated: the blas tier computes SSE algebraically from its
        # per-cluster sums so stale pruned-row distances never leak in.
        cur_sse = backend.compute_sse(wts, sq_dists)
        cur_mse = cur_sse / total_mass
        if test.converged(prev_sse / total_mass, cur_mse, shift):
            converged = True
            prev_sse = cur_sse
            break
        if (
            abandon_sse is not None
            and not repaired
            and np.isfinite(prev_sse)
            and cur_sse > abandon_sse
        ):
            delta = max(prev_sse - cur_sse, 0.0)
            projected = cur_sse - delta * (max_iter - iterations)
            if projected > abandon_sse:
                abandoned = True
                prev_sse = cur_sse
                break
        prev_sse = cur_sse

    # Final assignment against the last recalculated centroids so that the
    # reported MSE matches the returned model exactly.
    assignments, sq_dists = backend.assign(cents)
    # Copy: the hook may hand back a kernel-owned cache, and the result
    # must not alias state a reused kernel instance would mutate.
    cluster_mass = backend.cluster_mass(wts, assignments, k).copy()
    final_sse = backend.compute_sse(wts, sq_dists)

    return KMeansResult(
        centroids=cents,
        assignments=assignments,
        cluster_weights=cluster_mass,
        sse=final_sse,
        mse=final_sse / total_mass,
        iterations=iterations,
        converged=converged,
        kernel=backend.name,
        counters=backend.counters,
        abandoned=abandoned,
    )
