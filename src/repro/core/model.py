"""Data model for cluster representations.

The partial/merge k-means pipeline passes *weighted centroid sets* between
its stages: the partial step summarises a data partition as ``k`` centroids,
each carrying the number of points assigned to it, and the merge step
clusters those summaries as weighted points.  This module defines the
immutable containers for those intermediate and final representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import KernelCounters

__all__ = [
    "WeightedCentroidSet",
    "KMeansResult",
    "ClusterModel",
    "as_points",
    "as_weights",
]


def as_points(points: np.ndarray | list) -> np.ndarray:
    """Validate and coerce ``points`` to a C-contiguous float64 ``(n, d)`` array.

    Raises ``ValueError`` for empty input, wrong rank, or non-finite values.
    """
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"points must be 2-dimensional, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("points must contain at least one row")
    if not np.isfinite(arr).all():
        raise ValueError("points must be finite (no NaN or inf)")
    return arr


def as_weights(weights: np.ndarray | list | None, n: int) -> np.ndarray:
    """Validate ``weights`` against ``n`` points; ``None`` means unit weights.

    Weights must be non-negative, finite, and carry positive total mass.
    """
    if weights is None:
        return np.ones(n, dtype=np.float64)
    arr = np.ascontiguousarray(weights, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValueError("weights must be finite")
    if (arr < 0).any():
        raise ValueError("weights must be non-negative")
    if arr.sum() <= 0.0:
        raise ValueError("weights must have positive total mass")
    return arr


@dataclass(frozen=True)
class WeightedCentroidSet:
    """A set of centroids with point-count weights.

    This is the unit of data exchanged between the partial and merge
    operators: ``centroids[i]`` represents ``weights[i]`` original points.

    Attributes:
        centroids: ``(k, d)`` float64 array of centroid coordinates.
        weights: ``(k,)`` float64 array; ``weights[i]`` is the number of
            points (or weight mass) summarised by ``centroids[i]``.
        source: optional label identifying the producing partition.
    """

    centroids: np.ndarray
    weights: np.ndarray
    source: str = ""

    def __post_init__(self) -> None:
        cents = as_points(self.centroids)
        wts = as_weights(self.weights, cents.shape[0])
        object.__setattr__(self, "centroids", cents)
        object.__setattr__(self, "weights", wts)

    @property
    def k(self) -> int:
        """Number of centroids in the set."""
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the centroids."""
        return self.centroids.shape[1]

    @property
    def total_weight(self) -> float:
        """Total weight mass (number of original points summarised)."""
        return float(self.weights.sum())

    def mean(self) -> np.ndarray:
        """Weight-mass centre of the set (equals the data mean of the
        summarised points when centroids are exact cluster means)."""
        return np.average(self.centroids, axis=0, weights=self.weights)

    @staticmethod
    def concatenate(
        sets: "list[WeightedCentroidSet]", source: str = "merged"
    ) -> "WeightedCentroidSet":
        """Pool several centroid sets into one (the merge operator's input).

        All sets must share the same dimensionality.
        """
        if not sets:
            raise ValueError("cannot concatenate an empty list of centroid sets")
        dims = {s.dim for s in sets}
        if len(dims) != 1:
            raise ValueError(f"centroid sets have mixed dimensionality: {sorted(dims)}")
        return WeightedCentroidSet(
            centroids=np.vstack([s.centroids for s in sets]),
            weights=np.concatenate([s.weights for s in sets]),
            source=source,
        )


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one Lloyd k-means run.

    Attributes:
        centroids: ``(k, d)`` final centroid coordinates.
        assignments: ``(n,)`` int array mapping each input point to a centroid.
        cluster_weights: ``(k,)`` weight mass assigned to each centroid.
        sse: weighted sum of squared distances of points to their centroid.
        mse: ``sse`` divided by the total weight mass (the paper's MSE).
        iterations: number of Lloyd iterations executed.
        converged: whether the MSE-delta criterion was met (as opposed to
            hitting the iteration cap).
        kernel: name of the assignment backend that produced the result
            (all backends are bit-identical; this is provenance only).
        counters: the kernel's instrumentation (distance evaluations
            computed/skipped, bound-check hits, assignment wall time).
        abandoned: whether the run was cut short by the restart
            early-abandon heuristic (its SSE projection could not beat the
            incumbent best).
    """

    centroids: np.ndarray
    assignments: np.ndarray
    cluster_weights: np.ndarray
    sse: float
    mse: float
    iterations: int
    converged: bool
    kernel: str = "dense"
    counters: KernelCounters | None = None
    abandoned: bool = False

    @property
    def k(self) -> int:
        """Number of centroids."""
        return self.centroids.shape[0]

    def to_weighted_set(self, source: str = "") -> WeightedCentroidSet:
        """Export as a weighted centroid set, dropping empty clusters.

        The partial operator uses this to produce its output stream item.
        """
        occupied = self.cluster_weights > 0
        return WeightedCentroidSet(
            centroids=self.centroids[occupied],
            weights=self.cluster_weights[occupied],
            source=source,
        )


@dataclass(frozen=True)
class ClusterModel:
    """Final clustering of one grid cell, plus provenance.

    Produced by both the serial baseline and the partial/merge pipeline so
    results are directly comparable.

    Attributes:
        centroids: ``(k, d)`` final centroids.
        weights: ``(k,)`` point mass represented by each centroid.
        mse: clustering error against the data it was evaluated on.
        method: human-readable name of the producing algorithm.
        partitions: number of partitions used (1 for serial).
        restarts: number of random-seed restarts run per k-means.
        partial_seconds: wall-clock spent in partial k-means (0 for serial).
        merge_seconds: wall-clock spent in merge k-means (0 for serial).
        total_seconds: end-to-end wall-clock for the clustering.
        extra: free-form metadata (iteration counts, clone counts, ...).
    """

    centroids: np.ndarray
    weights: np.ndarray
    mse: float
    method: str
    partitions: int = 1
    restarts: int = 1
    partial_seconds: float = 0.0
    merge_seconds: float = 0.0
    total_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        cents = np.ascontiguousarray(self.centroids, dtype=np.float64)
        if cents.ndim == 2 and cents.shape[0] == 0:
            # An empty model: a cell that contributed no points (the
            # stream engine records such cells instead of dropping them).
            # The non-empty validators below would reject it.
            object.__setattr__(self, "centroids", cents)
            object.__setattr__(self, "weights", np.zeros(0, dtype=np.float64))
            return
        cents = as_points(self.centroids)
        wts = as_weights(self.weights, cents.shape[0])
        object.__setattr__(self, "centroids", cents)
        object.__setattr__(self, "weights", wts)

    @staticmethod
    def empty(
        dim: int, method: str = "empty", extra: dict | None = None
    ) -> "ClusterModel":
        """A model with zero centroids, standing in for a zero-point cell."""
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        return ClusterModel(
            centroids=np.zeros((0, dim), dtype=np.float64),
            weights=np.zeros(0, dtype=np.float64),
            mse=0.0,
            method=method,
            partitions=0,
            extra=dict(extra or {}),
        )

    @property
    def k(self) -> int:
        """Number of centroids in the model."""
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the model."""
        return self.centroids.shape[1]

    def to_weighted_set(self) -> WeightedCentroidSet:
        """View the model as a weighted centroid set."""
        return WeightedCentroidSet(self.centroids, self.weights, source=self.method)
