"""Invariant checks for cluster models.

Clustering silently produces garbage in ways assertions in downstream
code rarely catch (lost mass after a merge, a centroid flung outside the
data's support by a weighting bug, duplicate collapsed centroids).  The
checks here make those invariants explicit; pipelines call
:func:`validate_model` at stage boundaries in debug runs, and the test
suite uses the individual predicates directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import ClusterModel, as_points

__all__ = ["ModelValidationError", "ValidationReport", "validate_model"]


class ModelValidationError(Exception):
    """A cluster model violates one or more invariants."""


@dataclass
class ValidationReport:
    """Outcome of validating one model.

    Attributes:
        ok: whether every invariant held.
        violations: human-readable description of each failure.
    """

    ok: bool = True
    violations: list[str] = field(default_factory=list)

    def add(self, message: str) -> None:
        """Record one violation."""
        self.ok = False
        self.violations.append(message)


def validate_model(
    model: ClusterModel,
    points: np.ndarray | None = None,
    expected_mass: float | None = None,
    mass_rtol: float = 1e-6,
    support_margin: float = 0.0,
    min_centroid_separation: float = 0.0,
    raise_on_failure: bool = True,
) -> ValidationReport:
    """Check a model's structural invariants.

    Args:
        model: the model under test.
        points: when given, centroids must lie within the points'
            bounding box expanded by ``support_margin`` (a k-means
            centroid is a convex combination of points, so this is an
            exact invariant for margin 0).
        expected_mass: when given, the model's weights must sum to this
            within ``mass_rtol`` (conservation through partial/merge).
        mass_rtol: relative tolerance for the mass check.
        support_margin: absolute slack for the bounding-box check.
        min_centroid_separation: when positive, flag centroid pairs
            closer than this (collapsed-merge detector).
        raise_on_failure: raise :class:`ModelValidationError` instead of
            returning a failing report.

    Returns:
        A :class:`ValidationReport` (always ``ok`` when it returns and
        ``raise_on_failure`` is true).
    """
    report = ValidationReport()

    if not np.isfinite(model.centroids).all():
        report.add("centroids contain NaN or inf")
    if not np.isfinite(model.weights).all():
        report.add("weights contain NaN or inf")
    if (model.weights < 0).any():
        report.add("weights contain negative values")
    if model.weights.sum() <= 0:
        report.add("total weight mass is not positive")

    if expected_mass is not None:
        actual = float(model.weights.sum())
        if abs(actual - expected_mass) > mass_rtol * max(expected_mass, 1.0):
            report.add(
                f"mass not conserved: expected {expected_mass}, got {actual}"
            )

    if points is not None:
        pts = as_points(points)
        if pts.shape[1] != model.dim:
            report.add(
                f"dimensionality mismatch: points {pts.shape[1]}, "
                f"model {model.dim}"
            )
        else:
            lo = pts.min(axis=0) - support_margin
            hi = pts.max(axis=0) + support_margin
            outside = np.logical_or(
                model.centroids < lo, model.centroids > hi
            ).any(axis=1)
            if outside.any():
                report.add(
                    f"{int(outside.sum())} centroid(s) outside the data's "
                    f"bounding box"
                )

    if min_centroid_separation > 0 and model.k > 1:
        diffs = model.centroids[:, None, :] - model.centroids[None, :, :]
        d2 = (diffs**2).sum(axis=2)
        np.fill_diagonal(d2, np.inf)
        closest = float(np.sqrt(d2.min()))
        if closest < min_centroid_separation:
            report.add(
                f"centroids collapsed: closest pair at {closest:.3g} < "
                f"{min_centroid_separation}"
            )

    if not report.ok and raise_on_failure:
        raise ModelValidationError("; ".join(report.violations))
    return report
