"""Multi-restart driver: run k-means ``R`` times, keep the min-MSE run.

The paper runs both the serial algorithm and every partial step with ``R``
different random seed sets (R=10 in the experiments) and selects the
representation with the minimum mean square error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kmeans import DEFAULT_MAX_ITER, lloyd
from repro.core.model import KMeansResult, as_points
from repro.core.seeding import resolve_strategy

__all__ = ["RestartReport", "best_of_restarts"]


@dataclass(frozen=True)
class RestartReport:
    """Best run plus per-restart diagnostics.

    Attributes:
        best: the minimum-MSE :class:`KMeansResult` across restarts.
        mses: MSE of each restart, in run order.
        iteration_counts: Lloyd iterations of each restart.
        best_index: index of the winning restart.
    """

    best: KMeansResult
    mses: list[float] = field(default_factory=list)
    iteration_counts: list[int] = field(default_factory=list)
    best_index: int = 0

    @property
    def total_iterations(self) -> int:
        """Sum of Lloyd iterations over all restarts (cost proxy)."""
        return sum(self.iteration_counts)


def best_of_restarts(
    points: np.ndarray,
    k: int,
    restarts: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    seeding: str = "random",
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
) -> RestartReport:
    """Run ``restarts`` independent k-means and keep the lowest-MSE model.

    Args:
        points: ``(n, d)`` data to cluster.
        k: requested number of centroids (clamped to ``n`` by the seeder).
        restarts: number of independent runs (the paper's ``R``).
        rng: random generator driving seed selection.
        weights: optional point weights, forwarded to the kernel.
        seeding: seed strategy name (``"random"``, ``"distinct"``,
            ``"kmeans++"``).
        criterion: convergence criterion forwarded to the kernel.
        max_iter: per-run iteration cap.

    Returns:
        A :class:`RestartReport` with the winning run and diagnostics.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    pts = as_points(points)
    seeder = resolve_strategy(seeding)

    best: KMeansResult | None = None
    best_index = 0
    mses: list[float] = []
    iteration_counts: list[int] = []

    for run in range(restarts):
        if seeding == "kmeans++":
            seeds = seeder(pts, k, rng, weights=weights)
        else:
            seeds = seeder(pts, k, rng)
        result = lloyd(
            pts,
            seeds,
            weights=weights,
            criterion=criterion,
            max_iter=max_iter,
        )
        mses.append(result.mse)
        iteration_counts.append(result.iterations)
        if best is None or result.mse < best.mse:
            best = result
            best_index = run

    assert best is not None  # restarts >= 1 guarantees at least one run
    return RestartReport(
        best=best,
        mses=mses,
        iteration_counts=iteration_counts,
        best_index=best_index,
    )
