"""Multi-restart driver: run k-means ``R`` times, keep the min-MSE run.

The paper runs both the serial algorithm and every partial step with ``R``
different random seed sets (R=10 in the experiments) and selects the
representation with the minimum mean square error.

With ``early_abandon=True`` a restart is terminated as soon as its
optimistically-projected final SSE can no longer beat the incumbent best
(see :func:`repro.core.kmeans.lloyd`'s ``abandon_sse``); abandoned runs
still contribute their (partial-run) MSE to the diagnostics but are never
selected as the winner.  The default is off, which reproduces the paper's
full-``R`` behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.kernels import KernelCounters, LloydKernel
from repro.core.kmeans import DEFAULT_MAX_ITER, lloyd
from repro.core.model import KMeansResult, as_points
from repro.core.seeding import resolve_strategy

__all__ = ["RestartReport", "best_of_restarts"]


@dataclass(frozen=True)
class RestartReport:
    """Best run plus per-restart diagnostics.

    Attributes:
        best: the minimum-MSE :class:`KMeansResult` across restarts.
        mses: MSE of each restart, in run order (for an abandoned run this
            is the MSE at the abandoning iteration, not a converged value).
        iteration_counts: Lloyd iterations of each restart.
        best_index: index of the winning restart.
        counters: kernel instrumentation aggregated over all restarts.
        abandoned_runs: restarts cut short by the early-abandon heuristic.
    """

    best: KMeansResult
    mses: list[float] = field(default_factory=list)
    iteration_counts: list[int] = field(default_factory=list)
    best_index: int = 0
    counters: KernelCounters | None = None
    abandoned_runs: int = 0

    @property
    def total_iterations(self) -> int:
        """Sum of Lloyd iterations over all restarts (cost proxy)."""
        return sum(self.iteration_counts)


def best_of_restarts(
    points: np.ndarray,
    k: int,
    restarts: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    seeding: str = "random",
    criterion: ConvergenceCriterion | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    kernel: "str | LloydKernel | None" = None,
    exact: bool | None = None,
    early_abandon: bool = False,
) -> RestartReport:
    """Run ``restarts`` independent k-means and keep the lowest-MSE model.

    Args:
        points: ``(n, d)`` data to cluster.
        k: requested number of centroids (clamped to ``n`` by the seeder).
        restarts: number of independent runs (the paper's ``R``).
        rng: random generator driving seed selection.
        weights: optional point weights, forwarded to the kernel.
        seeding: seed strategy name (``"random"``, ``"distinct"``,
            ``"kmeans++"``, ``"kmeans||"``).
        criterion: convergence criterion forwarded to the kernel.
        max_iter: per-run iteration cap.
        kernel: assignment backend name or instance, forwarded to
            :func:`~repro.core.kmeans.lloyd` for every restart.
        exact: forwarded to :func:`~repro.core.kernels.resolve_kernel`;
            ``False`` admits the tolerance-close ``blas`` tier.
        early_abandon: terminate a restart once its projected final SSE
            exceeds the incumbent best (heuristic; default off).  Seed
            consumption from ``rng`` is unaffected, so the seeds — and the
            winning run — match the non-abandoning configuration whenever
            the heuristic's monotone-decay assumption holds.

    Returns:
        A :class:`RestartReport` with the winning run and diagnostics.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    pts = as_points(points)
    seeder = resolve_strategy(seeding)

    best: KMeansResult | None = None
    best_index = 0
    mses: list[float] = []
    iteration_counts: list[int] = []
    counters = KernelCounters()
    abandoned_runs = 0

    for run in range(restarts):
        if seeding in ("kmeans++", "kmeans||"):
            seeds = seeder(pts, k, rng, weights=weights)
        else:
            seeds = seeder(pts, k, rng)
        abandon_sse = (
            best.sse if (early_abandon and best is not None) else None
        )
        result = lloyd(
            pts,
            seeds,
            weights=weights,
            criterion=criterion,
            max_iter=max_iter,
            kernel=kernel,
            exact=exact,
            abandon_sse=abandon_sse,
        )
        mses.append(result.mse)
        iteration_counts.append(result.iterations)
        counters.merge(result.counters)
        if result.abandoned:
            abandoned_runs += 1
        elif best is None or result.mse < best.mse:
            best = result
            best_index = run

    assert best is not None  # restarts >= 1; the first run never abandons
    return RestartReport(
        best=best,
        mses=mses,
        iteration_counts=iteration_counts,
        best_index=best_index,
        counters=counters,
        abandoned_runs=abandoned_runs,
    )
