"""Clustering-quality metrics.

The paper measures quality as the (minimum over restarts) mean square error:
the weighted average squared Euclidean distance from each point to its
nearest centroid.  For the partial/merge pipeline, each "point" seen by the
merge step is itself a weighted centroid, so every metric here takes an
optional weight vector.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.core.model import as_points, as_weights

__all__ = [
    "pairwise_sq_distances",
    "assign_to_nearest",
    "sse",
    "mse",
    "weighted_mse_against_data",
    "quantization_error_profile",
    "cluster_sizes",
    "davies_bouldin",
]


def _as_cdist_operand(array: np.ndarray) -> np.ndarray:
    """Coerce an operand to C-contiguous float64 (no copy when already so).

    ``cdist`` silently upcasts float32 and copies non-contiguous inputs
    internally; coercing explicitly keeps the dtype/layout contract the
    same across every kernel (results for float32 or strided views are
    bit-identical to coercing first, by construction rather than by
    implementation accident).
    """
    arr = np.ascontiguousarray(array, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr


def pairwise_sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(n_points, n_centroids)``.

    Inputs of any float dtype or memory layout are accepted; both are
    coerced to C-contiguous float64 before the distance computation.
    """
    return cdist(
        _as_cdist_operand(points),
        _as_cdist_operand(centroids),
        metric="sqeuclidean",
    )


def assign_to_nearest(
    points: np.ndarray,
    centroids: np.ndarray,
    kernel: str | None = None,
    exact: bool | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest centroid.

    Returns ``(assignments, sq_dists)`` where ``assignments[i]`` indexes the
    nearest centroid of ``points[i]`` and ``sq_dists[i]`` is the squared
    distance to it.

    Args:
        points: ``(n, d)`` query points (any float dtype/layout).
        centroids: ``(k, d)`` model centroids.
        kernel: ``"blas"`` (with ``exact=False``) routes the one-shot
            assignment through the float32 GEMM fast path of
            :func:`repro.core.kernels.blas_assign_to_nearest` —
            assignments may differ from the dense reference only where
            two centroids are within float32 noise of equidistant, and
            returned ``sq_dists`` are always exact float64 for the chosen
            centroid.  Every other value (``None``/exact kernel names)
            uses the dense reference: bounds kernels have no advantage on
            a one-shot assignment, so there is nothing to select.
        exact: ``False`` opts into the ``blas`` tier (mirrors
            :func:`repro.core.kernels.resolve_kernel`'s gate).
    """
    if kernel is not None:
        # Validate through the central resolver so unknown names and a
        # missing exact=False waiver fail identically to the Lloyd path.
        from repro.core.kernels import blas_assign_to_nearest, resolve_kernel

        backend = resolve_kernel(kernel, exact=exact)
        if not backend.exact:
            return blas_assign_to_nearest(points, centroids)
    d2 = pairwise_sq_distances(points, centroids)
    assignments = np.argmin(d2, axis=1)
    sq_dists = d2[np.arange(d2.shape[0]), assignments]
    return assignments, sq_dists


def sse(
    points: np.ndarray,
    centroids: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Weighted sum of squared distances to nearest centroids.

    This is the paper's error function ``E`` (serial) and ``E_pm`` (weighted,
    partial/merge) depending on whether ``weights`` is supplied.
    """
    pts = as_points(points)
    cents = as_points(centroids)
    wts = as_weights(weights, pts.shape[0])
    __, sq = assign_to_nearest(pts, cents)
    return float(np.dot(wts, sq))


def mse(
    points: np.ndarray,
    centroids: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Mean square error: SSE normalised by total weight mass."""
    pts = as_points(points)
    wts = as_weights(weights, pts.shape[0])
    return sse(pts, centroids, wts) / float(wts.sum())


def weighted_mse_against_data(
    data: np.ndarray, centroids: np.ndarray
) -> float:
    """MSE of a centroid model evaluated on raw (unit-weight) data.

    This is the fair comparison metric used across serial and partial/merge
    results in the experiment harness: regardless of how the centroids were
    obtained, score them against the original points of the grid cell.
    """
    return mse(data, centroids)


def quantization_error_profile(
    points: np.ndarray, centroids: np.ndarray
) -> dict[str, float]:
    """Distributional summary of per-point quantization error.

    Returns mean, median, p95 and max of the squared distance to the nearest
    centroid — useful when comparing compression fidelity of two models with
    identical MSE.
    """
    pts = as_points(points)
    __, sq = assign_to_nearest(pts, as_points(centroids))
    return {
        "mean": float(sq.mean()),
        "median": float(np.median(sq)),
        "p95": float(np.percentile(sq, 95)),
        "max": float(sq.max()),
    }


def cluster_sizes(
    points: np.ndarray,
    centroids: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weight mass assigned to each centroid, shape ``(k,)``."""
    pts = as_points(points)
    cents = as_points(centroids)
    wts = as_weights(weights, pts.shape[0])
    assignments, __ = assign_to_nearest(pts, cents)
    return np.bincount(assignments, weights=wts, minlength=cents.shape[0])


def davies_bouldin(points: np.ndarray, centroids: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better) over occupied clusters.

    A secondary quality metric used by the ablation benchmarks to confirm
    that MSE improvements are not an artifact of the error definition.
    """
    pts = as_points(points)
    cents = as_points(centroids)
    assignments, __ = assign_to_nearest(pts, cents)
    occupied = np.unique(assignments)
    if occupied.size < 2:
        return 0.0
    used = cents[occupied]
    scatter = np.empty(occupied.size)
    for row, label in enumerate(occupied):
        members = pts[assignments == label]
        scatter[row] = float(
            np.sqrt(((members - used[row]) ** 2).sum(axis=1)).mean()
        )
    sep = cdist(used, used)
    ratios = np.zeros_like(sep)
    mask = sep > 0
    pair_scatter = scatter[:, None] + scatter[None, :]
    ratios[mask] = pair_scatter[mask] / sep[mask]
    np.fill_diagonal(ratios, -np.inf)
    return float(ratios.max(axis=1).mean())
