"""Core contribution: the partial/merge k-means algorithm.

Public surface:

* :class:`~repro.core.pipeline.PartialMergeKMeans` — the high-level API.
* :func:`~repro.core.kmeans.lloyd` — the shared weighted Lloyd kernel.
* :func:`~repro.core.partial.partial_kmeans` / \
  :func:`~repro.core.merge.merge_kmeans` — the two stream-operator kernels.
* :mod:`~repro.core.seeding`, :mod:`~repro.core.convergence`,
  :mod:`~repro.core.quality` — the supporting policies and metrics.
* :func:`~repro.core.ecvq.ecvq` — the paper's future-work extension for
  adaptive per-partition ``k``.
"""

from repro.core.adaptive_k import EcvqPartialMergeKMeans, EcvqPartialMergeReport
from repro.core.checks import (
    ModelValidationError,
    ValidationReport,
    validate_model,
)
from repro.core.convergence import (
    PAPER_MSE_DELTA,
    CentroidShiftCriterion,
    MseDeltaCriterion,
    RelativeMseCriterion,
)
from repro.core.ecvq import EcvqResult, ecvq
from repro.core.incremental import IncrementalClusterer, update_model
from repro.core.model_selection import (
    distortion_curve,
    suggest_k_elbow,
    suggest_k_rate,
)
from repro.core.kmeans import DEFAULT_MAX_ITER, lloyd
from repro.core.merge import MergeResult, incremental_merge_kmeans, merge_kmeans
from repro.core.model import ClusterModel, KMeansResult, WeightedCentroidSet
from repro.core.partial import PartialResult, partial_kmeans
from repro.core.pipeline import (
    PartialMergeKMeans,
    PartialMergeReport,
    split_into_chunks,
)
from repro.core.quality import mse, sse
from repro.core.restarts import RestartReport, best_of_restarts

__all__ = [
    "PAPER_MSE_DELTA",
    "ModelValidationError",
    "ValidationReport",
    "validate_model",
    "DEFAULT_MAX_ITER",
    "CentroidShiftCriterion",
    "MseDeltaCriterion",
    "RelativeMseCriterion",
    "ClusterModel",
    "KMeansResult",
    "WeightedCentroidSet",
    "EcvqResult",
    "ecvq",
    "EcvqPartialMergeKMeans",
    "EcvqPartialMergeReport",
    "IncrementalClusterer",
    "update_model",
    "distortion_curve",
    "suggest_k_elbow",
    "suggest_k_rate",
    "lloyd",
    "MergeResult",
    "merge_kmeans",
    "incremental_merge_kmeans",
    "PartialResult",
    "partial_kmeans",
    "PartialMergeKMeans",
    "PartialMergeReport",
    "split_into_chunks",
    "RestartReport",
    "best_of_restarts",
    "mse",
    "sse",
]

