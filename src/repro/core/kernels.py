"""Pluggable Lloyd-iteration backends: dense, Hamerly bounds, tiled matmul.

Every stage of the pipeline — the serial baseline, the partial operator,
and the merge operator — funnels through :func:`repro.core.kmeans.lloyd`,
which delegates the per-iteration *assignment step* to one of the kernels
defined here.  Three backends are provided:

* ``dense`` — the reference: one full ``(n, k)`` ``cdist`` per iteration,
  exactly the seed implementation's behaviour.
* ``hamerly`` — a Hamerly-style bounds kernel.  It maintains, per point,
  a drift-inflated upper estimate of the distance to the assigned
  centroid and a drift-deflated lower bound on the distance to the
  *second*-closest centroid.  Points whose upper estimate is strictly
  below their lower bound provably kept their assignment; for them only
  the one exact assigned distance is recomputed (the convergence test
  needs exact per-point errors), never the other ``k - 1`` candidates.
* ``tiled`` — computes distances in cache-sized row blocks via the
  ``‖x‖² − 2·x·cᵀ + ‖c‖²`` matmul expansion with point norms cached across
  iterations, never materialising the full ``(n, k)`` matrix.  Because the
  expansion is not bit-equal to ``cdist``'s pairwise accumulation, each
  row's near-minimal candidates are re-evaluated with exact pairwise
  distances before the argmin is taken.

**Determinism contract.**  All kernels produce bit-identical
``assignments``, per-point squared distances, and therefore ``centroids``,
``sse`` and ``iterations`` to the dense reference, including
``np.argmin``'s first-index tie-breaking.  Two mechanisms enforce this:

1. every distance value that can influence an output is produced by
   ``scipy.spatial.distance.cdist(..., "sqeuclidean")`` on float64
   C-contiguous inputs — ``cdist`` computes each pair independently, so a
   subset call is bit-equal to the corresponding entries of the full
   matrix — and
2. pruning/candidate decisions are made strictly *conservative*: Hamerly
   bounds carry a multiplicative guard band (``_GUARD``) absorbing
   floating-point drift-update error, and the tiled kernel's candidate
   tolerance (``_TILE_TOL``) exceeds the matmul expansion's cancellation
   error by several orders of magnitude.  A pruned point is therefore
   *provably* strictly closest to its kept centroid (no tie possible),
   and a tiled candidate set always contains every exactly-minimal column.

Kernel selection: pass ``kernel=`` to :func:`repro.core.kmeans.lloyd` (a
name or a :class:`LloydKernel` instance), or set the
``REPRO_KMEANS_KERNEL`` environment variable (``dense``/``hamerly``/
``tiled``); the explicit argument wins.  Because the kernels are
bit-identical, the knob can be flipped freely — across restarts, across
execution backends, even across a crash-resume — without changing a
single output bit.

Centroid aggregation is shared by all kernels (:func:`aggregate_weighted_sums`)
and uses one ``np.bincount`` per dimension instead of ``np.add.at`` — the
same sequential accumulation order, so bit-identical sums, at a fraction
of the scatter-add's cost.  (A one-hot matmul was evaluated for small
``k`` but rejected: BLAS reduction order differs from sequential
accumulation, which would break the bit-identity contract.)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, fields

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "KERNEL_ENV_VAR",
    "KernelCounters",
    "LloydKernel",
    "DenseKernel",
    "HamerlyKernel",
    "TiledKernel",
    "available_kernels",
    "resolve_kernel",
    "aggregate_weighted_sums",
]

#: Environment variable selecting the default kernel.
KERNEL_ENV_VAR = "REPRO_KMEANS_KERNEL"

#: Relative guard band on Hamerly bounds.  Accumulated floating-point
#: error on a drift-updated bound is a few ulps (~1e-16 relative) per
#: iteration; deflating the lower bound by 1e-9 per update absorbs that
#: with ~6 orders of magnitude to spare while costing essentially no
#: pruning power (a point is kept only when its two nearest centroids are
#: within 1e-9 relative distance — at which point recomputing is correct).
_GUARD = 1e-9

#: Relative candidate tolerance for the tiled kernel.  The matmul
#: expansion's error is bounded by a small multiple of
#: ``eps * (‖x‖² + ‖c‖²)`` (~1e-15 relative); 1e-10 keeps every
#: exactly-minimal column in the candidate set with a wide margin.
_TILE_TOL = 1e-10


@dataclass
class KernelCounters:
    """Instrumentation for one (or an aggregate of) Lloyd kernel run(s).

    Attributes:
        kernel: kernel name the counters belong to.
        distance_evals_computed: point-centroid distance evaluations
            actually performed.
        distance_evals_skipped: evaluations a dense kernel would have
            performed that this kernel proved redundant.
        bound_check_hits: points whose bound test pruned the full
            candidate scan (Hamerly) in some iteration.
        assign_calls: kernel assignment passes executed.
        assign_seconds: wall time spent inside assignment passes.
    """

    kernel: str = "dense"
    distance_evals_computed: int = 0
    distance_evals_skipped: int = 0
    bound_check_hits: int = 0
    assign_calls: int = 0
    assign_seconds: float = 0.0

    def merge(self, other: "KernelCounters | None") -> None:
        """Accumulate ``other`` into this aggregate (in place)."""
        if other is None:
            return
        self.kernel = other.kernel or self.kernel
        self.distance_evals_computed += other.distance_evals_computed
        self.distance_evals_skipped += other.distance_evals_skipped
        self.bound_check_hits += other.bound_check_hits
        self.assign_calls += other.assign_calls
        self.assign_seconds += other.assign_seconds

    def as_dict(self) -> dict:
        """JSON-safe representation (used by stream messages and traces)."""
        return {
            "kernel": self.kernel,
            "distance_evals_computed": int(self.distance_evals_computed),
            "distance_evals_skipped": int(self.distance_evals_skipped),
            "bound_check_hits": int(self.bound_check_hits),
            "assign_calls": int(self.assign_calls),
            "assign_seconds": float(self.assign_seconds),
        }

    @staticmethod
    def from_dict(payload: dict | None) -> "KernelCounters | None":
        """Rebuild counters from :meth:`as_dict` output (``None`` passes)."""
        if payload is None:
            return None
        known = {f.name for f in fields(KernelCounters)}
        return KernelCounters(
            **{key: value for key, value in payload.items() if key in known}
        )


def merge_counter_dicts(target: dict, source: dict | None) -> dict:
    """Accumulate a counters dict (``as_dict`` shape) into ``target``.

    Numeric fields add; the ``kernel`` name is carried over (last writer
    wins — mixed-kernel aggregates keep the most recent name).
    """
    if source:
        for key, value in source.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                target[key] = target.get(key, 0) + value
            else:
                target[key] = value
    return target


def _pair_sq_distances(points: np.ndarray, centroid: np.ndarray) -> np.ndarray:
    """Exact squared distances of ``points`` to one centroid, cdist-bitwise."""
    return cdist(points, centroid.reshape(1, -1), metric="sqeuclidean")[:, 0]


def _grouped_assigned_sq(
    points: np.ndarray,
    centroids: np.ndarray,
    assignments: np.ndarray,
    rows: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Exact squared distance of each point to its assigned centroid.

    Values are bitwise equal to the corresponding entries of the full
    dense ``cdist`` matrix (``cdist`` evaluates pairs independently).
    Points are grouped by centroid so each group is one vectorised call.

    When ``rows`` is given only those point indices are evaluated (and
    only those slots of ``out`` written); ``out`` may be supplied to
    avoid an allocation.
    """
    if out is None:
        out = np.empty(points.shape[0], dtype=np.float64)
    k = centroids.shape[0]
    sub_assign = assignments if rows is None else assignments[rows]
    # Labels are small ints: sorting a narrowed copy runs a one/two-byte
    # radix pass instead of a 64-bit merge sort (~6x faster here) with an
    # identical stable order.
    if k <= 256:
        order = np.argsort(sub_assign.astype(np.uint8), kind="stable")
    elif k <= 65536:
        order = np.argsort(sub_assign.astype(np.uint16), kind="stable")
    else:
        order = np.argsort(sub_assign, kind="stable")
    sorted_rows = order if rows is None else rows[order]
    sorted_assign = sub_assign[order]
    bounds = np.searchsorted(sorted_assign, np.arange(k + 1), side="left")
    # One gather up front so every group is a contiguous slice, one
    # scatter at the end — instead of k small fancy-indexing round trips.
    gathered = points[sorted_rows]
    grouped = np.empty(sorted_rows.shape[0], dtype=np.float64)
    for j in range(k):
        lo, hi = bounds[j], bounds[j + 1]
        if lo == hi:
            continue
        grouped[lo:hi] = _pair_sq_distances(gathered[lo:hi], centroids[j])
    out[sorted_rows] = grouped
    return out


class LloydKernel:
    """One Lloyd assignment backend; holds per-run state between iterations.

    Lifecycle (driven by :func:`repro.core.kmeans.lloyd`)::

        kernel.start(points, weights)
        repeat:
            assignments, sq_dists = kernel.assign(centroids)
            # (empty-cluster repair mutates centroids -> kernel.invalidate())
            kernel.notify_update(old_centroids, new_centroids)

    Kernel instances are single-run and not thread-safe; ``resolve_kernel``
    hands out a fresh instance per ``lloyd`` call.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.counters = KernelCounters(kernel=self.name)
        self._points: np.ndarray | None = None

    def start(self, points: np.ndarray, weights: np.ndarray) -> None:
        """Begin a run over ``points`` (already float64 C-contiguous)."""
        self._points = points
        self.counters = KernelCounters(kernel=self.name)

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(assignments, sq_dists)`` for the current centroids.

        Must be bit-identical to ``cdist`` + first-index ``argmin``.
        """
        raise NotImplementedError

    def notify_update(
        self, old_centroids: np.ndarray, new_centroids: np.ndarray
    ) -> None:
        """Observe the centroid update step (drift bookkeeping)."""

    def invalidate(self) -> None:
        """Drop cached bounds (an empty-cluster repair teleported a centroid)."""


class DenseKernel(LloydKernel):
    """The reference kernel: full ``(n, k)`` ``cdist`` every iteration."""

    name = "dense"

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._points is not None, "kernel used before start()"
        started = time.perf_counter()
        pts = self._points
        d2 = cdist(pts, centroids, metric="sqeuclidean")
        assignments = np.argmin(d2, axis=1)
        sq_dists = d2[np.arange(pts.shape[0]), assignments]
        self.counters.distance_evals_computed += pts.shape[0] * centroids.shape[0]
        self.counters.assign_calls += 1
        self.counters.assign_seconds += time.perf_counter() - started
        return assignments, sq_dists


class HamerlyKernel(LloydKernel):
    """Bounds-based kernel skipping provably redundant candidate scans.

    Per point the kernel keeps the assignment, the exact squared distance
    to the assigned centroid as of the *last* pass, and a deflated lower
    bound on the distance to the second-closest centroid.  After a
    centroid update the lower bound shrinks by the maximum centroid drift
    and an *upper estimate* inflates by the assigned centroid's own drift
    (``u_est = √sq_old + drift[a]`` — an overestimate of the true new
    assigned distance by the triangle inequality).  A pass then:

    1. prunes points with ``u_est·(1+guard) < l`` — for them the
       assignment is *provably* strictly unchanged, so at most the one
       exact assigned distance is recomputed (grouped by centroid; the
       MSE convergence test needs it exactly).  If the assigned centroid
       is additionally *bitwise* unchanged, last pass's value is already
       what ``cdist`` would produce and is reused with zero evaluations;
    2. scans the full candidate row only for the survivors — that row
       yields their exact assigned distance for free and refreshes the
       lower bound from the second-smallest distance.

    Against the dense kernel's ``n·k`` evaluations per pass this performs
    at most ``(n − m) + m·k ≤ n·k`` where ``m`` is the survivor count —
    near convergence ``m → 0``, centroids freeze bitwise, and the pass
    cost approaches zero.  Because a pass never exceeds dense cost, the
    exact accounting identity ``computed + skipped == dense computed``
    holds for a whole run.
    """

    name = "hamerly"

    def __init__(self) -> None:
        super().__init__()
        self._assignments: np.ndarray | None = None
        self._lower: np.ndarray | None = None
        self._sq_dists: np.ndarray | None = None
        self._drift: np.ndarray | None = None
        self._moved: np.ndarray | None = None
        self._valid = False

    def start(self, points: np.ndarray, weights: np.ndarray) -> None:
        super().start(points, weights)
        self._assignments = None
        self._lower = None
        self._sq_dists = None
        self._drift = None
        self._moved = None
        self._valid = False

    def invalidate(self) -> None:
        self._valid = False

    def _full_refresh(
        self, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        pts = self._points
        assert pts is not None
        n, k = pts.shape[0], centroids.shape[0]
        d2 = cdist(pts, centroids, metric="sqeuclidean")
        assignments = np.argmin(d2, axis=1)
        sq_dists = d2[np.arange(n), assignments]
        if k >= 2:
            second = np.partition(d2, 1, axis=1)[:, 1]
            lower = np.sqrt(second) * (1.0 - _GUARD)
        else:
            lower = np.full(n, np.inf)
        self._assignments = assignments
        self._lower = lower
        self._sq_dists = sq_dists
        self._drift = None
        self._moved = None
        self._valid = True
        self.counters.distance_evals_computed += n * k
        return assignments, sq_dists

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._points is not None, "kernel used before start()"
        started = time.perf_counter()
        pts = self._points
        n, k = pts.shape[0], centroids.shape[0]
        try:
            if not self._valid or self._assignments is None:
                return self._full_refresh(centroids)

            assignments = self._assignments
            lower = self._lower
            prev_sq = self._sq_dists
            assert lower is not None and prev_sq is not None

            # Upper estimate: last pass's exact assigned distance plus the
            # assigned centroid's accumulated drift (triangle inequality
            # makes this a strict overestimate of the new distance).
            upper_est = np.sqrt(prev_sq)
            if self._drift is not None:
                upper_est += self._drift[assignments]
            survivor_mask = upper_est * (1.0 + _GUARD) >= lower
            survivors = np.flatnonzero(survivor_mask)
            m = survivors.size
            pruned = n - m

            sq_dists = np.empty(n, dtype=np.float64)
            recompute = 0
            if pruned:
                pruned_mask = ~survivor_mask
                if self._moved is not None:
                    # Pruned point whose assigned centroid is *bitwise*
                    # unchanged: cdist would reproduce last pass's value
                    # bit for bit, so reuse it with zero evaluations.
                    stale = pruned_mask & self._moved[assignments]
                    np.copyto(
                        sq_dists, prev_sq, where=pruned_mask & ~stale
                    )
                else:
                    stale = pruned_mask
                stale_rows = np.flatnonzero(stale)
                recompute = stale_rows.size
                if recompute:
                    # Provably unchanged assignment — recompute only the
                    # one exact assigned distance (the convergence test
                    # needs it verbatim), grouped by centroid.
                    _grouped_assigned_sq(
                        pts,
                        centroids,
                        assignments,
                        rows=stale_rows,
                        out=sq_dists,
                    )

            computed = recompute + m * k
            self.counters.bound_check_hits += pruned
            self.counters.distance_evals_computed += computed
            self.counters.distance_evals_skipped += n * k - computed
            if m:
                rows = cdist(pts[survivors], centroids, metric="sqeuclidean")
                row_assign = np.argmin(rows, axis=1)
                assignments[survivors] = row_assign
                sq_dists[survivors] = rows[np.arange(m), row_assign]
                if k >= 2:
                    second = np.partition(rows, 1, axis=1)[:, 1]
                    lower[survivors] = np.sqrt(second) * (1.0 - _GUARD)
                else:
                    lower[survivors] = np.inf
            self._sq_dists = sq_dists
            self._drift = None
            self._moved = None
            return assignments, sq_dists
        finally:
            self.counters.assign_calls += 1
            self.counters.assign_seconds += time.perf_counter() - started

    def notify_update(
        self, old_centroids: np.ndarray, new_centroids: np.ndarray
    ) -> None:
        if not self._valid or self._lower is None:
            return
        drift = np.sqrt(((new_centroids - old_centroids) ** 2).sum(axis=1))
        max_drift = float(drift.max()) if drift.size else 0.0
        # Every centroid moved at most max_drift, so every point's
        # second-closest distance shrank by at most max_drift; the extra
        # multiplicative deflation absorbs this update's rounding error.
        np.maximum((self._lower - max_drift) * (1.0 - _GUARD), 0.0,
                   out=self._lower)
        # Accumulated per-centroid drift since the last assign pass
        # (defensive accumulation; lloyd issues exactly one update per
        # pass, and assign resets it).  "moved" is tracked bitwise rather
        # than as drift > 0 because a subnormal displacement can square
        # to exactly zero.
        self._drift = drift if self._drift is None else self._drift + drift
        moved = np.any(new_centroids != old_centroids, axis=1)
        self._moved = moved if self._moved is None else self._moved | moved


class TiledKernel(LloydKernel):
    """Blocked matmul-expansion kernel; memory bounded by the tile size.

    Distances are computed per row block as
    ``‖x‖² − 2·x·cᵀ + ‖c‖²`` (point norms cached across iterations,
    centroid norms per pass) so at most ``tile_rows × k`` floats are live
    at once.  Because the expansion differs from ``cdist`` in the last
    ulps, each row's candidates — columns within a conservative tolerance
    of the row minimum — are re-evaluated exactly before the argmin, which
    restores bit-identity with the dense reference (see module docstring).
    """

    name = "tiled"

    #: Default tile budget: ~4 MiB of distance block per pass.
    DEFAULT_TILE_BYTES = 4 << 20

    def __init__(self, tile_bytes: int = DEFAULT_TILE_BYTES) -> None:
        super().__init__()
        if tile_bytes < 1024:
            raise ValueError(f"tile_bytes must be >= 1024, got {tile_bytes}")
        self._tile_bytes = tile_bytes
        self._point_norms: np.ndarray | None = None

    def start(self, points: np.ndarray, weights: np.ndarray) -> None:
        super().start(points, weights)
        self._point_norms = (points * points).sum(axis=1)

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._points is not None, "kernel used before start()"
        started = time.perf_counter()
        pts = self._points
        norms = self._point_norms
        assert norms is not None
        n, k = pts.shape[0], centroids.shape[0]
        tile_rows = max(64, min(n, self._tile_bytes // (8 * max(1, k))))
        cent_norms = (centroids * centroids).sum(axis=1)
        max_cent_norm = float(cent_norms.max())

        assignments = np.empty(n, dtype=np.intp)
        sq_dists = np.empty(n, dtype=np.float64)
        exact_evals = 0
        for lo in range(0, n, tile_rows):
            hi = min(n, lo + tile_rows)
            block = pts[lo:hi]
            approx = block @ centroids.T
            approx *= -2.0
            approx += norms[lo:hi, None]
            approx += cent_norms[None, :]
            row_min = approx.min(axis=1)
            tol = _TILE_TOL * (norms[lo:hi] + max_cent_norm) + _TILE_TOL
            candidates = approx <= (row_min + tol)[:, None]
            cand_counts = candidates.sum(axis=1)
            block_assign = np.argmin(approx, axis=1)

            # Common case: one candidate column — it contains every
            # exactly-minimal column, so it *is* the exact argmin; only
            # its exact distance needs evaluating (grouped by column).
            single = np.flatnonzero(cand_counts == 1)
            if single.size:
                _grouped_assigned_sq(
                    block,
                    centroids,
                    block_assign,
                    rows=single,
                    out=sq_dists[lo:hi],
                )
                exact_evals += single.size

            # Near-ties: several columns within tolerance — evaluate each
            # candidate exactly into an inf-filled row so the argmin
            # reproduces the dense reference's first-index tie-break.
            multi = np.flatnonzero(cand_counts > 1)
            if multi.size:
                exact = np.full((multi.size, k), np.inf)
                sub_cand = candidates[multi]
                for j in range(k):
                    rows = np.flatnonzero(sub_cand[:, j])
                    if rows.size:
                        exact[rows, j] = _pair_sq_distances(
                            block[multi[rows]], centroids[j]
                        )
                        exact_evals += rows.size
                multi_assign = np.argmin(exact, axis=1)
                block_assign[multi] = multi_assign
                sq_dists[lo:hi][multi] = exact[
                    np.arange(multi.size), multi_assign
                ]
            assignments[lo:hi] = block_assign

        self.counters.distance_evals_computed += n * k + exact_evals
        self.counters.assign_calls += 1
        self.counters.assign_seconds += time.perf_counter() - started
        return assignments, sq_dists


_KERNELS: dict[str, type[LloydKernel]] = {
    DenseKernel.name: DenseKernel,
    HamerlyKernel.name: HamerlyKernel,
    TiledKernel.name: TiledKernel,
}


def available_kernels() -> tuple[str, ...]:
    """Names accepted by ``resolve_kernel`` (and the CLI/env knobs)."""
    return tuple(sorted(_KERNELS))


def resolve_kernel(kernel: "str | LloydKernel | None" = None) -> LloydKernel:
    """Resolve a kernel selection to a fresh kernel instance.

    Precedence: an explicit ``kernel`` argument (name or instance) wins,
    then the ``REPRO_KMEANS_KERNEL`` environment variable, then
    ``"dense"``.  Passing an instance hands it back as-is (the caller
    owns its lifecycle).
    """
    if isinstance(kernel, LloydKernel):
        return kernel
    name = kernel if kernel is not None else os.environ.get(KERNEL_ENV_VAR)
    if name is None or name == "":
        name = DenseKernel.name
    try:
        return _KERNELS[name]()
    except KeyError:
        raise ValueError(
            f"unknown k-means kernel {name!r}; expected one of "
            f"{', '.join(available_kernels())}"
        ) from None


def aggregate_weighted_sums(
    weighted_points: np.ndarray, assignments: np.ndarray, k: int
) -> np.ndarray:
    """Per-cluster sums of weighted points via per-dimension ``bincount``.

    Replaces the seed implementation's ``np.add.at`` scatter-add (which
    falls back to an unbuffered per-element inner loop) with one
    ``np.bincount`` per dimension.  Both accumulate sequentially in point
    order, so the sums are bit-identical — ``bincount`` is just an order
    of magnitude faster.
    """
    dim = weighted_points.shape[1]
    sums = np.empty((k, dim), dtype=np.float64)
    for column in range(dim):
        sums[:, column] = np.bincount(
            assignments, weights=weighted_points[:, column], minlength=k
        )
    return sums
