"""Pluggable Lloyd-iteration backends in two tiers: exact and ``exact=False``.

Every stage of the pipeline — the serial baseline, the partial operator,
and the merge operator — funnels through :func:`repro.core.kmeans.lloyd`,
which delegates the per-iteration *assignment step* to one of the kernels
defined here.

**Tier 1 (exact, bit-identical to dense):**

* ``dense`` — the reference: one full ``(n, k)`` ``cdist`` per iteration,
  exactly the seed implementation's behaviour.
* ``hamerly`` — a Hamerly-style bounds kernel: one upper estimate plus a
  single lower bound on the second-closest centroid per point, deflated
  by the *maximum* centroid drift.  Best at small/medium ``k``.
* ``elkan`` — a Yinyang-style group-bounds kernel: centroids are split
  into ``G ≈ k/8`` groups (ordered by first coordinate so nearby
  centroids share a group) and each point keeps one lower bound *per
  group*, deflated by that group's own maximum drift.  At high ``k`` a
  few fast-moving centroids no longer destroy every point's single bound
  (Hamerly's tax), so far fewer points survive the bound check.  An
  Elkan-style inter-centroid filter (``s(a) = ½·min_j d(c_a, c_j)``)
  prunes additionally.  Survivors get one exact full candidate row;
  pruned points with a moved assigned centroid get their one exact
  assigned distance from cache-friendly contiguous per-cluster slices.

**Tier 2 (``exact=False``, opt-in):**

* ``blas`` — a float32 GEMM kernel.  Points are copied once to a
  C-contiguous float32 matrix augmented with a constant-1 column; per
  pass the centroids become a ``(d+1, k)`` float32 matrix holding
  ``-2·c`` and ``‖c‖²``, so one ``sgemm`` per cache-sized row block
  yields argmin-equivalent scores ``‖c‖² − 2·x·c``.  The same group
  bounds as ``elkan`` restrict the GEMM to bound-check survivors; rows
  whose float32 winner margin is ambiguous are refined with exact
  float64 ``cdist`` rows; pruned points keep a stale squared distance
  whose drift-inflated upper estimate stays valid (triangle
  inequality) and loosens until the row re-enters the GEMM.  SSE is
  computed algebraically from per-cluster sums (never from the stale
  per-point values), and the sums are maintained incrementally (only
  switched points update them), legal here because bit-identity is
  waived.  See :func:`blas_mse_tolerance` for the documented error
  bound.

**Determinism contract (tier 1).**  All exact kernels produce
bit-identical ``assignments``, per-point squared distances, and therefore
``centroids``, ``sse`` and ``iterations`` to the dense reference,
including ``np.argmin``'s first-index tie-breaking.  Two mechanisms
enforce this:

1. every distance value that can influence an output is produced by
   ``scipy.spatial.distance.cdist(..., "sqeuclidean")`` on float64
   C-contiguous inputs — ``cdist`` computes each pair independently, so a
   subset call (one centroid column, a contiguous group of rows) is
   bit-equal to the corresponding entries of the full matrix — and
2. pruning decisions are strictly *conservative*: bounds carry guard
   bands (``_GUARD``, ``_GUARD32``) absorbing floating-point
   drift-update and float32-storage error, so a pruned point is
   *provably* strictly closest to its kept centroid — no tie possible.

The ``blas`` kernel deliberately waives this contract for raw speed and
therefore requires an explicit opt-in: ``exact=False`` on
``resolve_kernel``/``lloyd``/``Query.with_kernel``, ``--no-exact`` on the
CLI, or ``REPRO_KMEANS_EXACT=0`` in the environment.  Selecting ``blas``
without the waiver is a ``ValueError``, never a silent accuracy change.

Kernel selection: pass ``kernel=`` (a name or a :class:`LloydKernel`
instance) or set ``REPRO_KMEANS_KERNEL``; the explicit argument wins.
Unknown names raise a ``ValueError`` naming the bad value, the valid
kernels, and — when the name came from the environment — the variable
itself.  The retired ``tiled`` kernel name is accepted as a deprecated
alias for ``blas`` (one ``DeprecationWarning`` per process); it still
requires the ``exact=False`` waiver, because an alias must not silently
change exactness semantics.

Centroid aggregation for exact kernels uses one ``np.bincount`` per
dimension (:func:`aggregate_weighted_sums`) — the same sequential
accumulation order as the seed's ``np.add.at``, so bit-identical sums.
The ``elkan`` kernel re-sums only clusters whose *membership changed*
(a subset ``bincount`` over their members preserves per-bin accumulation
order, hence bits); unchanged clusters reuse cached sums verbatim.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, fields

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "KERNEL_ENV_VAR",
    "EXACT_ENV_VAR",
    "KernelCounters",
    "LloydKernel",
    "DenseKernel",
    "HamerlyKernel",
    "ElkanKernel",
    "BlasKernel",
    "available_kernels",
    "resolve_kernel",
    "aggregate_weighted_sums",
    "blas_assign_to_nearest",
    "blas_mse_tolerance",
]

#: Environment variable selecting the default kernel.
KERNEL_ENV_VAR = "REPRO_KMEANS_KERNEL"

#: Environment variable waiving the bit-identity requirement
#: (``0``/``false``/``no``/``off`` allows ``exact=False`` kernels).
EXACT_ENV_VAR = "REPRO_KMEANS_EXACT"

#: Deprecated alias: the retired tiled-matmul kernel resolves to ``blas``.
_TILED_ALIAS = "tiled"
_tiled_alias_warned = False

#: Relative guard band on float64 bounds.  Accumulated floating-point
#: error on a drift-updated bound is a few ulps (~1e-16 relative) per
#: iteration; deflating the lower bound by 1e-9 per update absorbs that
#: with ~6 orders of magnitude to spare while costing essentially no
#: pruning power (a point is kept only when its two nearest centroids are
#: within 1e-9 relative distance — at which point recomputing is correct).
_GUARD = 1e-9

#: Relative guard band on *float32-stored* group lower bounds (elkan).
#: float32 rounding is ~6e-8 relative per store/subtract; 4e-6 dominates
#: every rounding in the store → drift-subtract → compare chain while
#: still pruning everything not within 4e-6 relative of a tie.
_GUARD32 = 4e-6

#: blas tier: pruning guard (relative).  Mis-pruning only costs accuracy
#: here (never correctness), so the guard merely keeps the error within
#: the documented tolerance.
_BLAS_GUARD = 1e-5

#: blas tier: float32 winner margins below this relative threshold are
#: re-resolved with exact float64 rows (float32 score error is a small
#: multiple of ``eps32 · (‖x‖² + ‖c‖²)``; 1e-5 exceeds it by ~2 orders).
_BLAS_MARGIN = 1e-5


@dataclass
class KernelCounters:
    """Instrumentation for one (or an aggregate of) Lloyd kernel run(s).

    Attributes:
        kernel: kernel name the counters belong to.
        distance_evals_computed: point-centroid distance evaluations
            actually performed.
        distance_evals_skipped: evaluations a dense kernel would have
            performed that this kernel proved redundant.
        bound_check_hits: points whose bound test pruned the full
            candidate scan in some iteration.
        assign_calls: kernel assignment passes executed.
        assign_seconds: wall time spent inside assignment passes.
        gemm_calls: BLAS GEMM invocations (blas kernel row blocks).
        refine_rows: rows whose float32 margin was ambiguous and were
            re-resolved with exact float64 distances (blas kernel).
        bound_groups: centroid groups whose lower bounds were maintained,
            summed over assignment passes (elkan/blas; 0 for ungrouped
            kernels).
    """

    kernel: str = "dense"
    distance_evals_computed: int = 0
    distance_evals_skipped: int = 0
    bound_check_hits: int = 0
    assign_calls: int = 0
    assign_seconds: float = 0.0
    gemm_calls: int = 0
    refine_rows: int = 0
    bound_groups: int = 0

    def merge(self, other: "KernelCounters | None") -> None:
        """Accumulate ``other`` into this aggregate (in place)."""
        if other is None:
            return
        self.kernel = other.kernel or self.kernel
        self.distance_evals_computed += other.distance_evals_computed
        self.distance_evals_skipped += other.distance_evals_skipped
        self.bound_check_hits += other.bound_check_hits
        self.assign_calls += other.assign_calls
        self.assign_seconds += other.assign_seconds
        self.gemm_calls += other.gemm_calls
        self.refine_rows += other.refine_rows
        self.bound_groups += other.bound_groups

    def as_dict(self) -> dict:
        """JSON-safe representation (used by stream messages and traces)."""
        return {
            "kernel": self.kernel,
            "distance_evals_computed": int(self.distance_evals_computed),
            "distance_evals_skipped": int(self.distance_evals_skipped),
            "bound_check_hits": int(self.bound_check_hits),
            "assign_calls": int(self.assign_calls),
            "assign_seconds": float(self.assign_seconds),
            "gemm_calls": int(self.gemm_calls),
            "refine_rows": int(self.refine_rows),
            "bound_groups": int(self.bound_groups),
        }

    @staticmethod
    def from_dict(payload: dict | None) -> "KernelCounters | None":
        """Rebuild counters from :meth:`as_dict` output (``None`` passes)."""
        if payload is None:
            return None
        known = {f.name for f in fields(KernelCounters)}
        return KernelCounters(
            **{key: value for key, value in payload.items() if key in known}
        )


def merge_counter_dicts(target: dict, source: dict | None) -> dict:
    """Accumulate a counters dict (``as_dict`` shape) into ``target``.

    Numeric fields add; the ``kernel`` name is carried over (last writer
    wins — mixed-kernel aggregates keep the most recent name).
    """
    if source:
        for key, value in source.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                target[key] = target.get(key, 0) + value
            else:
                target[key] = value
    return target


def _pair_sq_distances(points: np.ndarray, centroid: np.ndarray) -> np.ndarray:
    """Exact squared distances of ``points`` to one centroid, cdist-bitwise.

    The centroid goes on the *left*: ``cdist`` vectorises its inner loop
    over the second operand's rows, so the ``(1, m)`` orientation runs
    ~9x faster than ``(m, 1)`` while staying bit-equal (``cdist``
    evaluates each pair independently and symmetrically).
    """
    return cdist(centroid.reshape(1, -1), points, metric="sqeuclidean")[0]


def _grouped_assigned_sq(
    points: np.ndarray,
    centroids: np.ndarray,
    assignments: np.ndarray,
    rows: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Exact squared distance of each point to its assigned centroid.

    Values are bitwise equal to the corresponding entries of the full
    dense ``cdist`` matrix (``cdist`` evaluates pairs independently).
    Points are grouped by centroid so each group is one vectorised call.

    When ``rows`` is given only those point indices are evaluated (and
    only those slots of ``out`` written); ``out`` may be supplied to
    avoid an allocation.
    """
    if out is None:
        out = np.empty(points.shape[0], dtype=np.float64)
    k = centroids.shape[0]
    sub_assign = assignments if rows is None else assignments[rows]
    # Labels are small ints: sorting a narrowed copy runs a one/two-byte
    # radix pass instead of a 64-bit merge sort (~6x faster here) with an
    # identical stable order.
    if k <= 256:
        order = np.argsort(sub_assign.astype(np.uint8), kind="stable")
    elif k <= 65536:
        order = np.argsort(sub_assign.astype(np.uint16), kind="stable")
    else:
        order = np.argsort(sub_assign, kind="stable")
    sorted_rows = order if rows is None else rows[order]
    sorted_assign = sub_assign[order]
    bounds = np.searchsorted(sorted_assign, np.arange(k + 1), side="left")
    # One gather up front so every group is a contiguous slice, one
    # scatter at the end — instead of k small fancy-indexing round trips.
    gathered = points[sorted_rows]
    grouped = np.empty(sorted_rows.shape[0], dtype=np.float64)
    for j in range(k):
        lo, hi = bounds[j], bounds[j + 1]
        if lo == hi:
            continue
        grouped[lo:hi] = _pair_sq_distances(gathered[lo:hi], centroids[j])
    out[sorted_rows] = grouped
    return out


def _label_argsort(assignments: np.ndarray, k: int) -> np.ndarray:
    """Stable argsort of cluster labels via a narrowed radix-friendly copy."""
    if k <= 256:
        return np.argsort(assignments.astype(np.uint8), kind="stable")
    if k <= 65536:
        return np.argsort(assignments.astype(np.uint16), kind="stable")
    return np.argsort(assignments, kind="stable")


def _centroid_groups(k: int, target_size: int = 8) -> np.ndarray:
    """Boundaries of ``G ≈ k/target_size`` contiguous centroid groups.

    Returns ``starts`` with ``G + 1`` entries delimiting equal-width index
    ranges ``[starts[g], starts[g+1])``.  Groups are contiguous in the
    *original* centroid order: measurements show spatial grouping (e.g.
    sorting by first coordinate) prunes no better here, and index-range
    groups let every per-group reduction run as a cheap ``reshape`` +
    ``min`` instead of a ``take`` + ``reduceat``.  Grouping only affects
    pruning power, never outputs.
    """
    n_groups = max(1, (k + target_size - 1) // target_size)
    return (np.arange(n_groups + 1, dtype=np.intp) * k) // n_groups


def _group_min_t(mat_t: np.ndarray, gstarts: np.ndarray) -> np.ndarray:
    """Per-column minimum of a *transposed* ``(k, m)`` score matrix.

    Returns ``(G, m)``.  Reducing over contiguous row slices (axis 0)
    vectorises across the ``m`` points; reducing over a short last axis
    (the ``(m, k)`` orientation) is ~10x slower in numpy, which is why
    every hot path here carries scores transposed.
    """
    n_groups = gstarts.size - 1
    out = np.empty((n_groups, mat_t.shape[1]), dtype=mat_t.dtype)
    for g in range(n_groups):
        mat_t[gstarts[g]:gstarts[g + 1]].min(axis=0, out=out[g])
    return out


class LloydKernel:
    """One Lloyd assignment backend; holds per-run state between iterations.

    Lifecycle (driven by :func:`repro.core.kmeans.lloyd`)::

        kernel.start(points, weights)
        repeat:
            assignments, sq_dists = kernel.assign(centroids)
            # (empty-cluster repair mutates centroids -> kernel.invalidate())
            sums = kernel.aggregate(weighted_points, assignments, k)
            kernel.notify_update(old_centroids, new_centroids)

    ``exact`` declares the tier: exact kernels are bit-identical to the
    dense reference; ``exact=False`` kernels trade bit-identity for speed
    and require an explicit waiver at resolution time.

    Kernel instances are single-run and not thread-safe; ``resolve_kernel``
    hands out a fresh instance per ``lloyd`` call.
    """

    name = "abstract"
    #: Whether this kernel honours the bit-identity contract.
    exact = True

    def __init__(self) -> None:
        self.counters = KernelCounters(kernel=self.name)
        self._points: np.ndarray | None = None

    def start(self, points: np.ndarray, weights: np.ndarray) -> None:
        """Begin a run over ``points`` (already float64 C-contiguous)."""
        self._points = points
        self.counters = KernelCounters(kernel=self.name)

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(assignments, sq_dists)`` for the current centroids.

        Exact kernels must be bit-identical to ``cdist`` + first-index
        ``argmin``.
        """
        raise NotImplementedError

    def aggregate(
        self, weighted_points: np.ndarray, assignments: np.ndarray, k: int
    ) -> np.ndarray:
        """Per-cluster sums of weighted points for the update step.

        The base implementation is the shared bit-exact ``bincount``
        aggregation; kernels may override it with something faster as
        long as they keep their tier's accuracy contract.  The returned
        array may be kernel-owned — callers must not mutate it.
        """
        return aggregate_weighted_sums(weighted_points, assignments, k)

    def compute_sse(
        self, weights: np.ndarray, sq_dists: np.ndarray
    ) -> float:
        """Weighted SSE of the last assignment pass.

        The base implementation is the reference dot product over the
        per-point squared distances; the ``blas`` tier overrides it with
        an algebraic per-cluster form so pruned rows never need their
        stored distance refreshed.  ``lloyd`` calls this after
        :meth:`aggregate` each iteration and once after the final pass.
        """
        return float(np.dot(weights, sq_dists))

    def cluster_mass(
        self, weights: np.ndarray, assignments: np.ndarray, k: int
    ) -> np.ndarray:
        """Per-cluster total weight for the current assignment.

        The base implementation is the reference weighted ``bincount``;
        bounds kernels override it to update only the clusters whose
        membership changed (bit-identical — a subset ``bincount``
        accumulates each bin in the same increasing-row order as the
        full one).  The returned array may be kernel-owned — callers
        must not mutate it.
        """
        return np.bincount(assignments, weights=weights, minlength=k)

    def notify_update(
        self, old_centroids: np.ndarray, new_centroids: np.ndarray
    ) -> None:
        """Observe the centroid update step (drift bookkeeping)."""

    def invalidate(self) -> None:
        """Drop cached bounds (an empty-cluster repair teleported a centroid)."""


class DenseKernel(LloydKernel):
    """The reference kernel: full ``(n, k)`` ``cdist`` every iteration."""

    name = "dense"

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._points is not None, "kernel used before start()"
        started = time.perf_counter()
        pts = self._points
        d2 = cdist(pts, centroids, metric="sqeuclidean")
        assignments = np.argmin(d2, axis=1)
        sq_dists = d2[np.arange(pts.shape[0]), assignments]
        self.counters.distance_evals_computed += pts.shape[0] * centroids.shape[0]
        self.counters.assign_calls += 1
        self.counters.assign_seconds += time.perf_counter() - started
        return assignments, sq_dists


class HamerlyKernel(LloydKernel):
    """Bounds-based kernel skipping provably redundant candidate scans.

    Per point the kernel keeps the assignment, the exact squared distance
    to the assigned centroid as of the *last* pass, and a deflated lower
    bound on the distance to the second-closest centroid.  After a
    centroid update the lower bound shrinks by the maximum centroid drift
    and an *upper estimate* inflates by the assigned centroid's own drift
    (``u_est = √sq_old + drift[a]`` — an overestimate of the true new
    assigned distance by the triangle inequality).  A pass then:

    1. prunes points with ``u_est·(1+guard) < l`` — for them the
       assignment is *provably* strictly unchanged, so at most the one
       exact assigned distance is recomputed (grouped by centroid; the
       MSE convergence test needs it exactly).  If the assigned centroid
       is additionally *bitwise* unchanged, last pass's value is already
       what ``cdist`` would produce and is reused with zero evaluations;
    2. scans the full candidate row only for the survivors — that row
       yields their exact assigned distance for free and refreshes the
       lower bound from the second-smallest distance.

    Against the dense kernel's ``n·k`` evaluations per pass this performs
    at most ``(n − m) + m·k ≤ n·k`` where ``m`` is the survivor count —
    near convergence ``m → 0``, centroids freeze bitwise, and the pass
    cost approaches zero.  Because a pass never exceeds dense cost, the
    exact accounting identity ``computed + skipped == dense computed``
    holds for a whole run.
    """

    name = "hamerly"

    def __init__(self) -> None:
        super().__init__()
        self._assignments: np.ndarray | None = None
        self._lower: np.ndarray | None = None
        self._sq_dists: np.ndarray | None = None
        self._drift: np.ndarray | None = None
        self._moved: np.ndarray | None = None
        self._valid = False

    def start(self, points: np.ndarray, weights: np.ndarray) -> None:
        super().start(points, weights)
        self._assignments = None
        self._lower = None
        self._sq_dists = None
        self._drift = None
        self._moved = None
        self._valid = False

    def invalidate(self) -> None:
        self._valid = False

    def _full_refresh(
        self, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        pts = self._points
        assert pts is not None
        n, k = pts.shape[0], centroids.shape[0]
        d2 = cdist(pts, centroids, metric="sqeuclidean")
        assignments = np.argmin(d2, axis=1)
        sq_dists = d2[np.arange(n), assignments]
        if k >= 2:
            second = np.partition(d2, 1, axis=1)[:, 1]
            lower = np.sqrt(second) * (1.0 - _GUARD)
        else:
            lower = np.full(n, np.inf)
        self._assignments = assignments
        self._lower = lower
        self._sq_dists = sq_dists
        self._drift = None
        self._moved = None
        self._valid = True
        self.counters.distance_evals_computed += n * k
        return assignments, sq_dists

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._points is not None, "kernel used before start()"
        started = time.perf_counter()
        pts = self._points
        n, k = pts.shape[0], centroids.shape[0]
        try:
            if not self._valid or self._assignments is None:
                return self._full_refresh(centroids)

            assignments = self._assignments
            lower = self._lower
            prev_sq = self._sq_dists
            assert lower is not None and prev_sq is not None

            # Upper estimate: last pass's exact assigned distance plus the
            # assigned centroid's accumulated drift (triangle inequality
            # makes this a strict overestimate of the new distance).
            upper_est = np.sqrt(prev_sq)
            if self._drift is not None:
                upper_est += self._drift[assignments]
            survivor_mask = upper_est * (1.0 + _GUARD) >= lower
            survivors = np.flatnonzero(survivor_mask)
            m = survivors.size
            pruned = n - m

            sq_dists = np.empty(n, dtype=np.float64)
            recompute = 0
            if pruned:
                pruned_mask = ~survivor_mask
                if self._moved is not None:
                    # Pruned point whose assigned centroid is *bitwise*
                    # unchanged: cdist would reproduce last pass's value
                    # bit for bit, so reuse it with zero evaluations.
                    stale = pruned_mask & self._moved[assignments]
                    np.copyto(
                        sq_dists, prev_sq, where=pruned_mask & ~stale
                    )
                else:
                    stale = pruned_mask
                stale_rows = np.flatnonzero(stale)
                recompute = stale_rows.size
                if recompute:
                    # Provably unchanged assignment — recompute only the
                    # one exact assigned distance (the convergence test
                    # needs it verbatim), grouped by centroid.
                    _grouped_assigned_sq(
                        pts,
                        centroids,
                        assignments,
                        rows=stale_rows,
                        out=sq_dists,
                    )

            computed = recompute + m * k
            self.counters.bound_check_hits += pruned
            self.counters.distance_evals_computed += computed
            self.counters.distance_evals_skipped += n * k - computed
            if m:
                rows = cdist(pts[survivors], centroids, metric="sqeuclidean")
                row_assign = np.argmin(rows, axis=1)
                assignments[survivors] = row_assign
                sq_dists[survivors] = rows[np.arange(m), row_assign]
                if k >= 2:
                    second = np.partition(rows, 1, axis=1)[:, 1]
                    lower[survivors] = np.sqrt(second) * (1.0 - _GUARD)
                else:
                    lower[survivors] = np.inf
            self._sq_dists = sq_dists
            self._drift = None
            self._moved = None
            return assignments, sq_dists
        finally:
            self.counters.assign_calls += 1
            self.counters.assign_seconds += time.perf_counter() - started

    def notify_update(
        self, old_centroids: np.ndarray, new_centroids: np.ndarray
    ) -> None:
        if not self._valid or self._lower is None:
            return
        drift = np.sqrt(((new_centroids - old_centroids) ** 2).sum(axis=1))
        max_drift = float(drift.max()) if drift.size else 0.0
        # Every centroid moved at most max_drift, so every point's
        # second-closest distance shrank by at most max_drift; the extra
        # multiplicative deflation absorbs this update's rounding error.
        np.maximum((self._lower - max_drift) * (1.0 - _GUARD), 0.0,
                   out=self._lower)
        # Accumulated per-centroid drift since the last assign pass
        # (defensive accumulation; lloyd issues exactly one update per
        # pass, and assign resets it).  "moved" is tracked bitwise rather
        # than as drift > 0 because a subnormal displacement can square
        # to exactly zero.
        self._drift = drift if self._drift is None else self._drift + drift
        moved = np.any(new_centroids != old_centroids, axis=1)
        self._moved = moved if self._moved is None else self._moved | moved


class ElkanKernel(LloydKernel):
    """Group-bounds (Yinyang-style) kernel for the high-``k`` regime.

    State per point: the assignment, the exact squared assigned distance
    as of the last pass, and one float32 lower bound per *centroid group*
    (``G ≈ k/8`` groups of first-coordinate-adjacent centroids).  Bounds
    are stored un-deflated together with the group's cumulative drift at
    refresh time; at test time the bound is reconstructed as
    ``stored − cumulative_drift_now`` — so a centroid update costs
    ``O(k)``, not ``O(n·G)``.  Guard bands (``_GUARD32``) make every
    float32 rounding strictly conservative.

    A pass first makes every point's assigned distance exact again:
    points whose assigned centroid is bitwise unchanged reuse last
    pass's value verbatim, the rest get one exact evaluation from a
    cached copy of the points sorted by cluster — contiguous per-cluster
    slices, only clusters that moved, no per-pass argsort.  The bound
    test then compares the *exact* assigned distance (no drift slack on
    the upper side — Yinyang's local filter) against the tightest group
    bound and the Elkan inter-centroid radius
    ``s(a) = ½·min_{j≠a} d(c_a, c_j)``; only the few genuine survivors
    get an exact full ``cdist`` row (same argmin/tie-break as dense),
    which also refreshes their group bounds.

    Every output-bearing value comes from ``cdist`` on float64 inputs, so
    outputs are bit-identical to the dense reference; the accounting
    identity ``computed + skipped == dense computed`` holds exactly.
    """

    name = "elkan"

    #: Rebuild the sorted-by-cluster point cache when more than this
    #: fraction of points changed assignment since it was built.
    _REBUILD_FRACTION = 8  # denominator: rebuild when dirty > n / 8

    def __init__(self) -> None:
        super().__init__()
        self._assignments: np.ndarray | None = None
        self._sq_dists: np.ndarray | None = None
        self._lower: np.ndarray | None = None  # (G, n) float32, +CD offset
        self._cum_drift: np.ndarray | None = None  # (G,) float64
        self._gstarts: np.ndarray | None = None
        self._moved: np.ndarray | None = None
        self._valid = False
        # Sorted-by-cluster cache for the exact stale-distance path.
        self._sorted_rows: np.ndarray | None = None
        self._sorted_pts: np.ndarray | None = None
        self._sorted_bounds: np.ndarray | None = None
        self._sorted_pos: np.ndarray | None = None  # inverse of sorted_rows
        self._sorted_dirty: np.ndarray | None = None  # dirty, sorted order
        self._dirty: np.ndarray | None = None
        self._dirty_chunks: list[np.ndarray] = []
        self._dirty_count = 0
        # Exact incremental aggregation cache.
        self._agg_sums: np.ndarray | None = None
        self._agg_k = -1
        self._agg_rebuild = True
        self._agg_changed: np.ndarray | None = None  # (k,) bool
        # Exact incremental cluster-mass cache (+ shared member gather).
        self._mass: np.ndarray | None = None
        self._mass_k = -1
        self._member_rows: np.ndarray | None = None
        self._member_sub_assign: np.ndarray | None = None

    def start(self, points: np.ndarray, weights: np.ndarray) -> None:
        super().start(points, weights)
        self._assignments = None
        self._sq_dists = None
        self._lower = None
        self._cum_drift = None
        self._gstarts = None
        self._moved = None
        self._valid = False
        self._sorted_rows = None
        self._sorted_pts = None
        self._sorted_bounds = None
        self._sorted_pos = None
        self._sorted_dirty = None
        self._dirty = None
        self._dirty_chunks = []
        self._dirty_count = 0
        self._agg_sums = None
        self._agg_k = -1
        self._agg_rebuild = True
        self._agg_changed = None
        self._mass = None
        self._mass_k = -1
        self._member_rows = None
        self._member_sub_assign = None

    def invalidate(self) -> None:
        self._valid = False
        self._agg_rebuild = True
        self._member_rows = None
        self._member_sub_assign = None

    def _rebuild_sorted_cache(self, k: int) -> None:
        pts = self._points
        assignments = self._assignments
        assert pts is not None and assignments is not None
        n = pts.shape[0]
        order = _label_argsort(assignments, k)
        self._sorted_rows = order
        self._sorted_pts = pts[order]
        self._sorted_bounds = np.searchsorted(
            assignments[order], np.arange(k + 1), side="left"
        )
        pos = np.empty(n, dtype=np.intp)
        pos[order] = np.arange(n, dtype=np.intp)
        self._sorted_pos = pos
        self._sorted_dirty = np.zeros(n, dtype=bool)
        self._dirty = np.zeros(n, dtype=bool)
        self._dirty_chunks = []
        self._dirty_count = 0

    def _full_refresh(
        self, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        pts = self._points
        assert pts is not None
        n, k = pts.shape[0], centroids.shape[0]
        # Transposed (k, n) distance matrix: ``cdist`` evaluates each pair
        # independently and symmetrically, so entries are bit-equal to the
        # (n, k) orientation, and axis-0 reductions vectorise across
        # points.  min + first-True match keeps the first-centroid
        # tie-break (argmax on bool returns the first row equal to the
        # columnwise minimum) and beats ``argmin(axis=0)`` ~2x.
        d2t = cdist(centroids, pts, metric="sqeuclidean")
        sq_dists = np.minimum.reduce(d2t, axis=0)
        assignments = (d2t == sq_dists).argmax(axis=0)
        ar = np.arange(n)

        self._gstarts = _centroid_groups(k)
        n_groups = self._gstarts.size - 1
        if k >= 2:
            # Mask the assigned entry so every group bound is a lower
            # bound on the distance to the *other* centroids of the group.
            d2t[assignments, ar] = np.inf
            lower = np.sqrt(_group_min_t(d2t, self._gstarts))
            lower *= 1.0 - _GUARD32
            self._lower = lower.astype(np.float32)
        else:
            self._lower = np.full((1, n), np.inf, dtype=np.float32)
        self._cum_drift = np.zeros(n_groups, dtype=np.float64)

        self._assignments = assignments
        self._sq_dists = sq_dists
        self._moved = None
        self._valid = True
        self._rebuild_sorted_cache(k)
        self._agg_rebuild = True
        self._member_rows = None
        self._member_sub_assign = None
        self.counters.distance_evals_computed += n * k
        self.counters.bound_groups += n_groups
        return assignments, sq_dists

    def _refresh_survivor_bounds(
        self, rows_d2t: np.ndarray, survivors: np.ndarray, k: int
    ) -> None:
        """Refresh group bounds for survivor rows from their exact row.

        ``rows_d2t`` is the transposed ``(k, m)`` distance block with the
        (new) assigned entries already masked with ``inf``.
        """
        lower = self._lower
        gstarts = self._gstarts
        cum = self._cum_drift
        assert lower is not None
        assert gstarts is not None and cum is not None
        vals = np.sqrt(_group_min_t(rows_d2t, gstarts))
        vals *= 1.0 - _GUARD32
        # Store with the current cumulative drift folded in, so the
        # shared per-group subtraction at test time nets out to only the
        # drift accumulated *since this refresh*.
        vals += cum[:, None]
        lower[:, survivors] = vals.astype(np.float32)

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._points is not None, "kernel used before start()"
        started = time.perf_counter()
        pts = self._points
        n, k = pts.shape[0], centroids.shape[0]
        try:
            if not self._valid or self._assignments is None:
                return self._full_refresh(centroids)

            assignments = self._assignments
            prev_sq = self._sq_dists
            lower = self._lower
            cum = self._cum_drift
            assert prev_sq is not None and lower is not None and cum is not None
            n_groups = lower.shape[0]

            # Step 1: make every assigned distance exact again.  Rows
            # whose centroid is bitwise unchanged reuse last pass's value
            # (what cdist would reproduce bit for bit); rows of moved
            # clusters are re-evaluated from the sorted-by-cluster cache —
            # contiguous per-cluster slices, no argsort, no per-point
            # masks in original order.  Rows that switched clusters since
            # the cache was built ("dirty") fall back to the grouped path.
            sq_dists = prev_sq.copy()
            recompute = 0
            moved_cols = (
                np.flatnonzero(self._moved) if self._moved is not None
                else np.arange(k)
            )
            sorted_rows = self._sorted_rows
            sorted_pts = self._sorted_pts
            sbounds = self._sorted_bounds
            sdirty = self._sorted_dirty
            assert sorted_rows is not None and sorted_pts is not None
            assert sbounds is not None and sdirty is not None
            any_dirty = self._dirty_count > 0
            for j in moved_cols:
                lo, hi = sbounds[j], sbounds[j + 1]
                if lo == hi:
                    continue
                slice_d2 = _pair_sq_distances(
                    sorted_pts[lo:hi], centroids[j]
                )
                recompute += hi - lo
                rows_slice = sorted_rows[lo:hi]
                if any_dirty:
                    sl_clean = ~sdirty[lo:hi]
                    sq_dists[rows_slice[sl_clean]] = slice_d2[sl_clean]
                else:
                    sq_dists[rows_slice] = slice_d2
            if any_dirty:
                # Dirty rows assigned to a moved centroid need an exact
                # value too; unmoved ones keep last pass's bits.
                dirty_idx = (
                    self._dirty_chunks[0] if len(self._dirty_chunks) == 1
                    else np.concatenate(self._dirty_chunks)
                )
                if self._moved is not None:
                    dirt_rows = dirty_idx[self._moved[assignments[dirty_idx]]]
                else:
                    dirt_rows = dirty_idx
                if dirt_rows.size:
                    _grouped_assigned_sq(
                        pts, centroids, assignments,
                        rows=dirt_rows, out=sq_dists,
                    )
                    recompute += dirt_rows.size

            # Step 2: bound test against the *exact* assigned distance
            # (Yinyang's local filter — no drift slack on the upper
            # side).  Tightest group bound: stored bounds share a
            # per-group scalar cumulative-drift offset, inflated slightly
            # so the float32 subtraction is strictly conservative.
            adj = cum * (1.0 + _GUARD32)
            lmin = lower[0] - np.float32(adj[0])
            for g in range(1, n_groups):
                np.minimum(lmin, lower[g] - np.float32(adj[g]), out=lmin)

            if k >= 2:
                # Elkan inter-centroid filter: a point strictly inside
                # s(a) = half the distance to a's nearest other centroid
                # provably keeps its assignment (triangle inequality).
                cc = cdist(centroids, centroids, metric="euclidean")
                np.fill_diagonal(cc, np.inf)
                s_radius = 0.5 * cc.min(axis=1)
                s_radius *= 1.0 - _GUARD
                bound = np.maximum(lmin, s_radius[assignments])
            else:
                bound = lmin.astype(np.float64)

            upper = np.sqrt(sq_dists)
            survivor_mask = upper * (1.0 + _GUARD) >= bound
            survivors = np.flatnonzero(survivor_mask)
            m = survivors.size
            pruned = n - m

            computed = recompute + m * k
            self.counters.bound_check_hits += pruned
            self.counters.bound_groups += n_groups
            self.counters.distance_evals_computed += computed
            self.counters.distance_evals_skipped += max(n * k - computed, 0)

            if m:
                rows_d2t = cdist(
                    centroids, pts[survivors], metric="sqeuclidean"
                )
                # min + first-True match is ~2x faster than argmin(axis=0)
                # and keeps the identical first-index tie-break: argmax on
                # the boolean equality matrix returns the first row whose
                # value equals the columnwise minimum.
                row_sq = np.minimum.reduce(rows_d2t, axis=0)
                row_assign = (rows_d2t == row_sq).argmax(axis=0)
                arm = np.arange(m)
                old_assign = assignments[survivors]
                changed = row_assign != old_assign
                assignments[survivors] = row_assign
                sq_dists[survivors] = row_sq
                if k >= 2:
                    rows_d2t[row_assign, arm] = np.inf
                    self._refresh_survivor_bounds(rows_d2t, survivors, k)
                if changed.any():
                    switched = survivors[changed]
                    # Exact incremental aggregation: remember which
                    # clusters' membership changed this pass.
                    if self._agg_changed is not None:
                        self._agg_changed[old_assign[changed]] = True
                        self._agg_changed[row_assign[changed]] = True
                    else:
                        self._agg_rebuild = True
                    assert self._dirty is not None
                    assert self._sorted_pos is not None
                    assert self._sorted_dirty is not None
                    newly = switched[~self._dirty[switched]]
                    if newly.size:
                        self._dirty[newly] = True
                        self._sorted_dirty[self._sorted_pos[newly]] = True
                        self._dirty_chunks.append(newly)
                        self._dirty_count += newly.size
                if self._dirty_count * self._REBUILD_FRACTION > n:
                    self._rebuild_sorted_cache(k)

            self._sq_dists = sq_dists
            self._moved = None
            return assignments, sq_dists
        finally:
            self.counters.assign_calls += 1
            self.counters.assign_seconds += time.perf_counter() - started

    def aggregate(
        self, weighted_points: np.ndarray, assignments: np.ndarray, k: int
    ) -> np.ndarray:
        """Bit-exact per-cluster sums, recomputing only changed clusters.

        A cluster whose member *set* is unchanged since the cached sums
        were built would reproduce the exact same ``bincount`` bits (same
        contributions, same point-index order), so its cached row is
        reused verbatim.  Clusters touched by a membership change are
        re-summed with a subset ``bincount`` over their current members —
        ``np.flatnonzero`` yields rows in increasing index order, so each
        bin accumulates in the same order as the full ``bincount`` and
        the result is bit-identical.
        """
        if (
            self._agg_sums is None
            or self._agg_rebuild
            or self._agg_k != k
            or self._agg_changed is None
        ):
            self._agg_sums = aggregate_weighted_sums(
                weighted_points, assignments, k
            )
            self._agg_k = k
            self._agg_rebuild = False
            self._agg_changed = np.zeros(k, dtype=bool)
            self._member_rows = None
            self._member_sub_assign = None
            return self._agg_sums
        changed = np.flatnonzero(self._agg_changed)
        if changed.size:
            # Reuse the changed-cluster member gather from cluster_mass
            # when it ran this pass (consume-once cache).
            if self._member_rows is not None:
                rows = self._member_rows
                sub_assign = self._member_sub_assign
            else:
                rows = np.flatnonzero(self._agg_changed[assignments])
                sub_assign = assignments[rows]
            self._member_rows = None
            self._member_sub_assign = None
            sub_weighted = weighted_points[rows]
            sums = self._agg_sums
            for column in range(weighted_points.shape[1]):
                col_sums = np.bincount(
                    sub_assign, weights=sub_weighted[:, column], minlength=k
                )
                sums[changed, column] = col_sums[changed]
            self._agg_changed[:] = False
        return self._agg_sums

    def cluster_mass(
        self, weights: np.ndarray, assignments: np.ndarray, k: int
    ) -> np.ndarray:
        """Bit-exact per-cluster mass, recomputing only changed clusters.

        Same argument as :meth:`aggregate`: an unchanged member set
        reproduces the full ``bincount`` bits verbatim, and a subset
        ``bincount`` accumulates changed bins in the same increasing-row
        order.  The changed-cluster member gather is cached for
        :meth:`aggregate`, which runs next in the same pass.
        """
        if (
            self._mass is None
            or self._agg_rebuild
            or self._mass_k != k
            or self._agg_changed is None
        ):
            self._mass = np.bincount(assignments, weights=weights, minlength=k)
            self._mass_k = k
            return self._mass
        changed = np.flatnonzero(self._agg_changed)
        if changed.size:
            rows = np.flatnonzero(self._agg_changed[assignments])
            sub_assign = assignments[rows]
            self._member_rows = rows
            self._member_sub_assign = sub_assign
            sub_mass = np.bincount(
                sub_assign, weights=weights[rows], minlength=k
            )
            self._mass[changed] = sub_mass[changed]
        return self._mass

    def notify_update(
        self, old_centroids: np.ndarray, new_centroids: np.ndarray
    ) -> None:
        if not self._valid or self._lower is None:
            return
        drift = np.sqrt(((new_centroids - old_centroids) ** 2).sum(axis=1))
        gstarts = self._gstarts
        cum = self._cum_drift
        assert gstarts is not None and cum is not None
        # Per-group maximum drift, slightly inflated so subtracting the
        # accumulated value at test time is strictly conservative.
        group_drift = np.maximum.reduceat(drift, gstarts[:-1])
        cum += group_drift * (1.0 + _GUARD)
        moved = np.any(new_centroids != old_centroids, axis=1)
        self._moved = moved if self._moved is None else self._moved | moved


class BlasKernel(LloydKernel):
    """float32 GEMM kernel (``exact=False``): raw speed over bit-identity.

    Per run the points are copied once to a C-contiguous float32 matrix
    augmented with a constant-1 column.  Per pass the centroids become a
    float32 ``(d+1, k)`` matrix whose columns hold ``-2·c`` with ``‖c‖²``
    in the last row, so a single ``sgemm`` per cache-sized row block
    yields scores ``‖c‖² − 2·x·c`` whose argmin equals the distance
    argmin (the omitted ``‖x‖²`` is constant per row).  The same group
    bounds as :class:`ElkanKernel` restrict the GEMM to bound-check
    survivors.  Accuracy is kept within the documented tolerance
    (:func:`blas_mse_tolerance`) by three mechanisms:

    * survivor rows whose float32 winner margin is ambiguous are
      re-resolved with exact float64 ``cdist`` rows (``refine_rows``);
    * pruned rows keep a *stale* squared distance whose drift-inflated
      upper estimate stays valid by the triangle inequality — the
      estimate loosens as drift accumulates, so stale rows eventually
      re-enter the GEMM and refresh themselves;
    * the reported SSE never reads the stale per-point distances: it is
      computed algebraically from the incrementally maintained
      per-cluster sums (``SSE = Σw‖x‖² − 2·Σ_j c_j·S_j + Σ_j ‖c_j‖²·M_j``),
      which is exact in float64 given the current assignment;
    * per-cluster weighted sums are maintained incrementally from the
      switched rows only, re-synced from scratch periodically.

    Counters: ``gemm_calls`` counts BLAS invocations, ``refine_rows`` the
    float64-refined rows; ``computed + skipped`` still sums to the dense
    cost of the *executed* passes (the iteration count itself may differ
    from dense, since this tier's trajectory is only tolerance-close).
    """

    name = "blas"
    exact = False

    #: Row-block budget for the live float32 score block (~4 MiB).
    DEFAULT_TILE_BYTES = 4 << 20

    #: Full re-sync cadence for the incrementally maintained sums.
    _AGG_RESYNC_PASSES = 32

    def __init__(self, tile_bytes: int = DEFAULT_TILE_BYTES) -> None:
        super().__init__()
        if tile_bytes < 1024:
            raise ValueError(f"tile_bytes must be >= 1024, got {tile_bytes}")
        self._tile_bytes = tile_bytes
        self._paug: np.ndarray | None = None  # (n, d+1) float32, last col 1
        self._pnorm: np.ndarray | None = None  # (n,) float32 ‖x‖²
        self._p32: np.ndarray | None = None  # (n, d) float32 view of paug
        self._dist_eps = 0.0
        self._assignments: np.ndarray | None = None
        self._sq_dists: np.ndarray | None = None  # (n,) float64, tolerance
        self._acc_drift: np.ndarray | None = None  # (n,) float64 per point
        self._lower: np.ndarray | None = None  # (G, n) float32, +CD offset
        self._cum_drift: np.ndarray | None = None
        self._gstarts: np.ndarray | None = None
        self._drift: np.ndarray | None = None
        self._valid = False
        self._agg_sums: np.ndarray | None = None
        self._agg_k = -1
        self._agg_age = 0
        self._agg_rebuild = True
        self._moves: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        # Algebraic-SSE state: Σ w·‖x‖² is constant per run; the
        # centroids seen by the latest ``assign`` anchor the identity.
        self._w2_total = 0.0
        self._wp: np.ndarray | None = None
        self._last_centroids: np.ndarray | None = None
        # Mass cache shared between ``cluster_mass`` and ``compute_sse``
        # (one weighted bincount per pass instead of two).
        self._mass: np.ndarray | None = None
        self._mass_k = -1

    def start(self, points: np.ndarray, weights: np.ndarray) -> None:
        super().start(points, weights)
        n, dim = points.shape
        pnorm64 = np.einsum("ij,ij->i", points, points)
        self._w2_total = float(np.dot(pnorm64, weights))
        self._wp = None
        self._last_centroids = None
        paug = np.empty((n, dim + 1), dtype=np.float32)
        paug[:, :dim] = points
        paug[:, dim] = 1.0
        self._paug = paug
        self._p32 = paug[:, :dim]
        self._pnorm = np.einsum(
            "ij,ij->i", self._p32, self._p32, dtype=np.float32
        )
        max_norm = float(self._pnorm.max()) if n else 0.0
        # Absolute slack for distance-space comparisons: float32 sqrt /
        # cancellation noise scales with the data magnitude.
        self._dist_eps = 1e-4 * (1.0 + np.sqrt(max(max_norm, 0.0)))
        self._assignments = None
        self._sq_dists = None
        self._acc_drift = None
        self._lower = None
        self._cum_drift = None
        self._gstarts = None
        self._drift = None
        self._valid = False
        self._agg_sums = None
        self._agg_k = -1
        self._agg_age = 0
        self._agg_rebuild = True
        self._moves = []
        self._mass = None
        self._mass_k = -1

    def invalidate(self) -> None:
        self._valid = False
        self._agg_rebuild = True
        self._mass = None

    def _tile_rows(self, k: int) -> int:
        return max(512, self._tile_bytes // (4 * max(1, k)))

    def _centroid_mats(
        self, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """float32 ``(-2c | ‖c‖²)`` GEMM operand + float32 centroids.

        The operand is ``(k, d+1)`` so ``caug_t @ block.T`` emits scores
        already transposed ``(k, m)`` — the layout every downstream
        reduction wants (see :func:`_group_min_t`).
        """
        dim = centroids.shape[1]
        c32 = np.ascontiguousarray(centroids, dtype=np.float32)
        caug_t = np.empty((centroids.shape[0], dim + 1), dtype=np.float32)
        np.multiply(c32, np.float32(-2.0), out=caug_t[:, :dim])
        cnorm = np.einsum("ij,ij->i", c32, c32, dtype=np.float32)
        caug_t[:, dim] = cnorm
        cn_max = float(cnorm.max()) if cnorm.size else 0.0
        return caug_t, c32, cn_max

    def _score_rows(
        self,
        row_lo: int,
        row_hi: int,
        rows: np.ndarray | None,
        centroids: np.ndarray,
        caug: np.ndarray,
        cn_max: float,
        out_assign: np.ndarray,
        out_sq: np.ndarray,
        refresh_bounds: bool,
    ) -> None:
        """Score one block of rows: GEMM, argmin, refine, bounds refresh.

        ``rows=None`` scores the contiguous slice ``[row_lo, row_hi)``;
        otherwise ``rows`` are point indices (survivor subsets) and
        ``row_lo/row_hi`` delimit the slice *of that index array*.
        ``out_assign``/``out_sq`` are indexed the same way as ``rows``.
        """
        paug = self._paug
        pnorm = self._pnorm
        pts = self._points
        assert paug is not None and pnorm is not None and pts is not None
        k = centroids.shape[0]
        if rows is None:
            idx = None
            block = paug[row_lo:row_hi]
            bnorm = pnorm[row_lo:row_hi]
        else:
            idx = rows[row_lo:row_hi]
            block = paug[idx]
            bnorm = pnorm[idx]
        scores_t = caug @ block.T  # (k, m) — BLAS handles the view
        self.counters.gemm_calls += 1
        m = scores_t.shape[1]
        # min + first-True match beats argmin(axis=0) ~2x while keeping
        # the first-index tie-break (argmax on bool returns the first row
        # equal to the columnwise minimum).
        best = np.minimum.reduce(scores_t, axis=0)
        ra = (scores_t == best).argmax(axis=0)
        ar = np.arange(m)
        sq_block = np.maximum(bnorm + best, np.float32(0.0)).astype(np.float64)

        grouped = None
        if k >= 2:
            scores_t[ra, ar] = np.inf
            grouped = _group_min_t(scores_t, self._gstarts)
            second = grouped[0].copy()
            for g in range(1, grouped.shape[0]):
                np.minimum(second, grouped[g], out=second)
            # Ambiguous float32 winner margin → resolve with exact rows.
            margin = second - best
            thresh = np.float32(_BLAS_MARGIN) * (bnorm + np.float32(cn_max))
            thresh += np.float32(self._dist_eps * self._dist_eps)
            amb = np.flatnonzero(margin <= thresh)
            if amb.size:
                src = amb + row_lo if idx is None else idx[amb]
                exact = cdist(pts[src], centroids, metric="sqeuclidean")
                ra[amb] = np.argmin(exact, axis=1)
                sq_block[amb] = exact[np.arange(amb.size), ra[amb]]
                self.counters.refine_rows += int(amb.size)

        out_assign[row_lo:row_hi] = ra
        out_sq[row_lo:row_hi] = sq_block

        if refresh_bounds and k >= 2:
            # All-float32 bound refresh: the doubled ulp guard plus the
            # absolute ``dist_eps`` slack (applied here and at test time)
            # dominates the few-ulp float32 sqrt/add rounding.
            dist2 = np.maximum(bnorm[None, :] + grouped, np.float32(0.0))
            vals = np.sqrt(dist2)
            vals *= np.float32(1.0 - 2.0 * _GUARD32)
            vals -= np.float32(self._dist_eps)
            vals += self._cum_drift.astype(np.float32)[:, None]
            lower = self._lower
            if idx is None:
                lower[:, row_lo:row_hi] = vals
            else:
                lower[:, idx] = vals

    def _full_refresh(
        self, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        pts = self._points
        assert pts is not None
        n, k = pts.shape[0], centroids.shape[0]
        self._gstarts = _centroid_groups(k)
        n_groups = self._gstarts.size - 1
        self._lower = np.full((max(n_groups, 1), n), np.inf, dtype=np.float32)
        self._cum_drift = np.zeros(n_groups, dtype=np.float64)
        caug, _c32, cn_max = self._centroid_mats(centroids)

        assignments = np.empty(n, dtype=np.intp)
        sq_dists = np.empty(n, dtype=np.float64)
        tile = self._tile_rows(k)
        for lo in range(0, n, tile):
            hi = min(n, lo + tile)
            self._score_rows(
                lo, hi, None, centroids, caug, cn_max,
                assignments, sq_dists, refresh_bounds=True,
            )
        self._assignments = assignments
        self._sq_dists = sq_dists
        self._acc_drift = np.zeros(n, dtype=np.float64)
        self._drift = None
        self._valid = True
        self._agg_rebuild = True
        self._moves = []
        self.counters.distance_evals_computed += n * k
        self.counters.bound_groups += n_groups
        return assignments, sq_dists

    def assign(self, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._points is not None, "kernel used before start()"
        started = time.perf_counter()
        n, k = self._points.shape[0], centroids.shape[0]
        try:
            self._last_centroids = centroids
            self._mass = None  # assignment may change; mass cache is stale
            if not self._valid or self._assignments is None:
                return self._full_refresh(centroids)

            assignments = self._assignments
            sq_dists = self._sq_dists
            acc = self._acc_drift
            lower = self._lower
            cum = self._cum_drift
            assert sq_dists is not None and acc is not None
            assert lower is not None and cum is not None
            n_groups = lower.shape[0]

            if self._drift is not None:
                acc += self._drift[assignments]
            upper_est = np.sqrt(sq_dists)
            upper_est += acc

            adj = cum * (1.0 + _GUARD32)
            lmin = lower[0] - np.float32(adj[0])
            for g in range(1, n_groups):
                np.minimum(lmin, lower[g] - np.float32(adj[g]), out=lmin)

            if k >= 2:
                cc = cdist(centroids, centroids, metric="euclidean")
                np.fill_diagonal(cc, np.inf)
                s_radius = 0.5 * cc.min(axis=1)
                s_radius *= 1.0 - _BLAS_GUARD
                s_radius -= self._dist_eps
                bound = np.maximum(lmin, s_radius[assignments])
            else:
                bound = lmin.astype(np.float64)

            survivor_mask = (
                upper_est * (1.0 + _BLAS_GUARD) + self._dist_eps >= bound
            )
            survivors = np.flatnonzero(survivor_mask)
            m = survivors.size
            pruned = n - m

            computed = m * k
            # Pruned rows keep their assignment and their *stale* squared
            # distance: ``sqrt(sq) + acc`` remains a valid upper bound by
            # the triangle inequality, and its growing slack pushes stale
            # rows back into the GEMM eventually.  SSE never reads these
            # values (see ``compute_sse``).

            if m:
                caug, _c32, cn_max = self._centroid_mats(centroids)
                ra = np.empty(m, dtype=np.intp)
                rsq = np.empty(m, dtype=np.float64)
                tile = self._tile_rows(k)
                for lo in range(0, m, tile):
                    hi = min(m, lo + tile)
                    self._score_rows(
                        lo, hi, survivors, centroids, caug, cn_max,
                        ra, rsq, refresh_bounds=True,
                    )
                old_assign = assignments[survivors]
                changed = ra != old_assign
                if changed.any():
                    rows = survivors[changed]
                    self._moves.append(
                        (rows, old_assign[changed], ra[changed])
                    )
                assignments[survivors] = ra
                sq_dists[survivors] = rsq
                acc[survivors] = 0.0

            self.counters.bound_check_hits += pruned
            self.counters.bound_groups += n_groups
            self.counters.distance_evals_computed += computed
            self.counters.distance_evals_skipped += max(n * k - computed, 0)
            self._drift = None
            return assignments, sq_dists
        finally:
            self.counters.assign_calls += 1
            self.counters.assign_seconds += time.perf_counter() - started

    def aggregate(
        self, weighted_points: np.ndarray, assignments: np.ndarray, k: int
    ) -> np.ndarray:
        """Incrementally maintained per-cluster sums (tolerance tier).

        Only rows that switched clusters update the cached sums; a full
        bit-exact re-sync runs every ``_AGG_RESYNC_PASSES`` passes (and
        after any refresh/repair) to stop float round-off from
        accumulating.
        """
        self._wp = weighted_points
        if (
            self._agg_sums is None
            or self._agg_rebuild
            or self._agg_k != k
            or self._agg_age >= self._AGG_RESYNC_PASSES
        ):
            self._agg_sums = aggregate_weighted_sums(
                weighted_points, assignments, k
            )
            self._agg_k = k
            self._agg_age = 0
            self._agg_rebuild = False
            self._moves = []
        else:
            self._flush_moves()
            self._agg_age += 1
        return self._agg_sums

    def _flush_moves(self) -> None:
        """Apply pending cluster switches to the cached per-cluster sums."""
        if not self._moves:
            return
        sums = self._agg_sums
        wp = self._wp
        assert sums is not None and wp is not None
        for rows, old, new in self._moves:
            moved_wp = wp[rows]
            np.subtract.at(sums, old, moved_wp)
            np.add.at(sums, new, moved_wp)
        self._moves = []

    def compute_sse(
        self, weights: np.ndarray, sq_dists: np.ndarray
    ) -> float:
        """Algebraic SSE from per-cluster sums — immune to stale rows.

        ``SSE = Σ_i w_i‖x_i‖² − 2·Σ_j c_j·S_j + Σ_j ‖c_j‖²·M_j`` where
        ``S_j`` are the maintained weighted sums and ``M_j`` the cluster
        masses.  This is exact (float64) for the *current* assignment,
        so the pruned rows' stale cached distances never leak into the
        reported SSE/MSE or the convergence test.
        """
        c = self._last_centroids
        if (
            c is None
            or self._agg_sums is None
            or self._wp is None
            or self._assignments is None
            or self._agg_k != c.shape[0]
        ):
            return float(np.dot(weights, sq_dists))
        self._flush_moves()
        k = c.shape[0]
        if self._mass is not None and self._mass_k == k:
            # lloyd asked for the mass of this same assignment earlier in
            # the pass — reuse it instead of a second bincount.
            mass = self._mass
        else:
            mass = np.bincount(
                self._assignments, weights=weights, minlength=k
            )
        cross = float(np.einsum("ij,ij->", c, self._agg_sums))
        cnorm = np.einsum("ij,ij->i", c, c)
        return max(self._w2_total - 2.0 * cross + float(np.dot(cnorm, mass)),
                   0.0)

    def cluster_mass(
        self, weights: np.ndarray, assignments: np.ndarray, k: int
    ) -> np.ndarray:
        """Reference weighted ``bincount``, cached for :meth:`compute_sse`."""
        self._mass = np.bincount(assignments, weights=weights, minlength=k)
        self._mass_k = k
        return self._mass

    def notify_update(
        self, old_centroids: np.ndarray, new_centroids: np.ndarray
    ) -> None:
        if not self._valid or self._lower is None:
            return
        drift = np.sqrt(((new_centroids - old_centroids) ** 2).sum(axis=1))
        gstarts = self._gstarts
        cum = self._cum_drift
        assert gstarts is not None and cum is not None
        group_drift = np.maximum.reduceat(drift, gstarts[:-1])
        cum += group_drift * (1.0 + _GUARD32)
        self._drift = drift if self._drift is None else self._drift + drift


_KERNELS: dict[str, type[LloydKernel]] = {
    DenseKernel.name: DenseKernel,
    HamerlyKernel.name: HamerlyKernel,
    ElkanKernel.name: ElkanKernel,
    BlasKernel.name: BlasKernel,
}


def available_kernels() -> tuple[str, ...]:
    """Names accepted by ``resolve_kernel`` (and the CLI/env knobs).

    The deprecated ``tiled`` alias is accepted too but not listed.
    """
    return tuple(sorted(_KERNELS))


def _resolve_exact(exact: bool | None) -> bool:
    """Resolve the exactness requirement (arg → env → exact-by-default)."""
    if exact is not None:
        return bool(exact)
    raw = os.environ.get(EXACT_ENV_VAR)
    if raw is None or raw == "":
        return True
    lowered = raw.strip().lower()
    if lowered in {"1", "true", "yes", "on"}:
        return True
    if lowered in {"0", "false", "no", "off"}:
        return False
    raise ValueError(
        f"invalid {EXACT_ENV_VAR} value {raw!r}; "
        "expected one of 1/0, true/false, yes/no, on/off"
    )


def resolve_kernel(
    kernel: "str | LloydKernel | None" = None,
    exact: bool | None = None,
) -> LloydKernel:
    """Resolve a kernel selection to a fresh kernel instance.

    Precedence: an explicit ``kernel`` argument (name or instance) wins,
    then the ``REPRO_KMEANS_KERNEL`` environment variable, then
    ``"dense"``.  Passing an instance hands it back as-is (the caller
    owns its lifecycle).

    ``exact`` gates the tier: ``None`` consults ``REPRO_KMEANS_EXACT``
    and defaults to ``True``.  Selecting an ``exact=False`` kernel (the
    ``blas`` tier, including via its deprecated ``tiled`` alias) without
    the waiver raises a ``ValueError`` — accuracy is never downgraded
    silently.  Unknown names raise a ``ValueError`` naming the bad
    value, the valid kernels, and the environment variable when the name
    came from it.
    """
    global _tiled_alias_warned
    require_exact = _resolve_exact(exact)
    if isinstance(kernel, LloydKernel):
        if require_exact and not kernel.exact:
            raise ValueError(
                f"kernel {kernel.name!r} waives the bit-identity contract; "
                f"opt in explicitly with exact=False "
                f"({EXACT_ENV_VAR}=0 / --no-exact)"
            )
        return kernel
    from_env = False
    name = kernel
    if name is None:
        env_value = os.environ.get(KERNEL_ENV_VAR)
        if env_value:
            name = env_value
            from_env = True
    if name is None or name == "":
        name = DenseKernel.name
    if name == _TILED_ALIAS:
        if not _tiled_alias_warned:
            _tiled_alias_warned = True
            warnings.warn(
                "the 'tiled' kernel was retired; the name now aliases the "
                "'blas' kernel (exact=False tier, explicit opt-in required)",
                DeprecationWarning,
                stacklevel=2,
            )
        name = BlasKernel.name
    cls = _KERNELS.get(name)
    if cls is None:
        valid = ", ".join(available_kernels())
        if from_env:
            raise ValueError(
                f"{KERNEL_ENV_VAR}={name!r} names an unknown k-means kernel; "
                f"expected one of {valid} (or the deprecated alias 'tiled')"
            )
        raise ValueError(
            f"unknown k-means kernel {name!r}; expected one of {valid} "
            f"(or the deprecated alias 'tiled')"
        )
    if require_exact and not cls.exact:
        raise ValueError(
            f"kernel {name!r} waives the bit-identity contract; "
            f"opt in explicitly with exact=False "
            f"({EXACT_ENV_VAR}=0 / --no-exact)"
        )
    return cls()


def blas_mse_tolerance(points: np.ndarray, reference_mse: float) -> float:
    """Documented error bound for the ``blas`` (``exact=False``) kernel.

    ``|mse_blas − mse_dense| ≤ 1e-3·mse_dense + 1024·eps32·scale²`` where
    ``scale² = max‖x‖²``.  The relative term covers the slightly looser
    float32 pruning (a near-tie resolved the other way shifts the local
    SSE by at most the ambiguity margin); the absolute term covers float32
    cancellation in ``‖x‖² − 2·x·c + ‖c‖²``, which scales with the data
    magnitude rather than the (possibly tiny) within-cluster distances.
    Benchmarks and Hypothesis property tests assert this bound.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    scale2 = float((pts * pts).sum(axis=1).max()) if pts.size else 0.0
    eps32 = float(np.finfo(np.float32).eps)
    return 1e-3 * float(reference_mse) + 1024.0 * eps32 * scale2


def blas_assign_to_nearest(
    points: np.ndarray,
    centroids: np.ndarray,
    tile_bytes: int = BlasKernel.DEFAULT_TILE_BYTES,
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot float32 GEMM nearest-centroid assignment (serving path).

    Same scoring as :class:`BlasKernel` — augmented float32 GEMM in row
    blocks, float64 refinement of ambiguous winner margins — without any
    cross-iteration state.  Returns ``(assignments, sq_dists)``; squared
    distances are float64 within the :func:`blas_mse_tolerance` regime.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    cents = np.ascontiguousarray(centroids, dtype=np.float64)
    n, dim = pts.shape
    k = cents.shape[0]
    paug = np.empty((n, dim + 1), dtype=np.float32)
    paug[:, :dim] = pts
    paug[:, dim] = 1.0
    pnorm = np.einsum(
        "ij,ij->i", paug[:, :dim], paug[:, :dim], dtype=np.float32
    )
    c32 = np.ascontiguousarray(cents, dtype=np.float32)
    caug = np.empty((dim + 1, k), dtype=np.float32)
    np.multiply(c32.T, np.float32(-2.0), out=caug[:dim])
    cnorm = np.einsum("ij,ij->i", c32, c32, dtype=np.float32)
    caug[dim] = cnorm
    cn_max = float(cnorm.max()) if k else 0.0

    assignments = np.empty(n, dtype=np.intp)
    sq_dists = np.empty(n, dtype=np.float64)
    tile = max(512, tile_bytes // (4 * max(1, k)))
    for lo in range(0, n, tile):
        hi = min(n, lo + tile)
        scores = paug[lo:hi] @ caug
        m = hi - lo
        ar = np.arange(m)
        ra = np.argmin(scores, axis=1)
        best = scores[ar, ra].copy()
        sq_block = np.maximum(
            pnorm[lo:hi] + best, np.float32(0.0)
        ).astype(np.float64)
        if k >= 2:
            scores[ar, ra] = np.inf
            margin = scores.min(axis=1) - best
            thresh = np.float32(_BLAS_MARGIN) * (
                pnorm[lo:hi] + np.float32(cn_max)
            )
            amb = np.flatnonzero(margin <= thresh)
            if amb.size:
                exact = cdist(pts[lo + amb], cents, metric="sqeuclidean")
                ra[amb] = np.argmin(exact, axis=1)
                sq_block[amb] = exact[np.arange(amb.size), ra[amb]]
        assignments[lo:hi] = ra
        sq_dists[lo:hi] = sq_block
    return assignments, sq_dists


def aggregate_weighted_sums(
    weighted_points: np.ndarray, assignments: np.ndarray, k: int
) -> np.ndarray:
    """Per-cluster sums of weighted points via per-dimension ``bincount``.

    Replaces the seed implementation's ``np.add.at`` scatter-add (which
    falls back to an unbuffered per-element inner loop) with one
    ``np.bincount`` per dimension.  Both accumulate sequentially in point
    order, so the sums are bit-identical — ``bincount`` is just an order
    of magnitude faster.
    """
    dim = weighted_points.shape[1]
    sums = np.empty((k, dim), dtype=np.float64)
    for column in range(dim):
        sums[:, column] = np.bincount(
            assignments, weights=weighted_points[:, column], minlength=k
        )
    return sums
