"""Entropy-Constrained Vector Quantization (ECVQ).

The paper's Section 3.3 remarks that the open problem of choosing a
per-partition ``k`` can be addressed with ECVQ (Chou, Lookabaugh & Gray
1989): start from a *maximum* ``k``, penalise assignment to rare clusters
by their code length, and let under-used centroids starve and be
discarded — finding an effective ``k`` on the fly.

Assignment cost for point ``x`` and centroid ``c_j`` with usage
probability ``p_j``:

    cost(x, j) = ||x - c_j||^2 + lam * (-log2 p_j)

Centroids whose usage probability falls below ``starvation_threshold`` are
dropped between iterations.  With ``lam = 0`` the algorithm reduces to
plain Lloyd k-means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import WeightedCentroidSet, as_points, as_weights
from repro.core.quality import pairwise_sq_distances
from repro.core.seeding import distinct_random_seeds

__all__ = ["EcvqResult", "ecvq"]

_LOG2_FLOOR = 1e-12  # probability floor so -log2 stays finite


@dataclass(frozen=True)
class EcvqResult:
    """Outcome of an ECVQ run.

    Attributes:
        summary: surviving weighted centroids (effective codebook).
        effective_k: number of surviving centroids.
        mse: weighted MSE of the final assignment (distortion only, without
            the entropy penalty).
        rate_bits: empirical entropy of the code usage in bits/point.
        lagrangian: final distortion + ``lam`` * rate objective value.
        iterations: iterations executed.
    """

    summary: WeightedCentroidSet
    effective_k: int
    mse: float
    rate_bits: float
    lagrangian: float
    iterations: int


def ecvq(
    points: np.ndarray,
    max_k: int,
    lam: float,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    starvation_threshold: float = 1e-4,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> EcvqResult:
    """Run entropy-constrained VQ from ``max_k`` random seeds.

    Args:
        points: ``(n, d)`` data.
        max_k: maximum codebook size; the result's ``effective_k`` may be
            smaller (that is the point of the method).
        lam: rate/distortion trade-off; larger values prune harder.
        rng: generator for seed selection.
        weights: optional point weights.
        starvation_threshold: minimum usage probability for a centroid to
            survive to the next iteration.
        max_iter: iteration cap.
        tol: stop when the Lagrangian objective improves by at most this.

    Returns:
        An :class:`EcvqResult`.
    """
    pts = as_points(points)
    wts = as_weights(weights, pts.shape[0])
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")
    total_mass = float(wts.sum())

    centroids = distinct_random_seeds(pts, max_k, rng)
    probs = np.full(centroids.shape[0], 1.0 / centroids.shape[0])
    prev_objective = np.inf
    iterations = 0
    assignments = np.zeros(pts.shape[0], dtype=np.intp)

    for iterations in range(1, max_iter + 1):
        penalty = -np.log2(np.maximum(probs, _LOG2_FLOOR))
        cost = pairwise_sq_distances(pts, centroids) + lam * penalty[None, :]
        assignments = np.argmin(cost, axis=1)

        mass = np.bincount(assignments, weights=wts, minlength=centroids.shape[0])
        probs = mass / total_mass

        survivors = probs > starvation_threshold
        if not survivors.any():
            # Keep the single most-used centroid rather than emptying the book.
            survivors = probs == probs.max()
        if not survivors.all():
            centroids = centroids[survivors]
            probs = probs[survivors]
            probs = probs / probs.sum()
            continue  # re-assign against the pruned codebook first

        # Centroid update: weighted means of surviving clusters.
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, pts * wts[:, None])
        occupied = mass > 0
        centroids[occupied] = sums[occupied] / mass[occupied, None]

        chosen_cost = cost[np.arange(pts.shape[0]), assignments]
        objective = float(np.dot(wts, chosen_cost)) / total_mass
        if 0.0 <= prev_objective - objective <= tol:
            break
        prev_objective = objective

    # Final bookkeeping against the surviving codebook.
    penalty = -np.log2(np.maximum(probs, _LOG2_FLOOR))
    cost = pairwise_sq_distances(pts, centroids) + lam * penalty[None, :]
    assignments = np.argmin(cost, axis=1)
    mass = np.bincount(assignments, weights=wts, minlength=centroids.shape[0])
    d2 = pairwise_sq_distances(pts, centroids)
    sq = d2[np.arange(pts.shape[0]), assignments]
    distortion = float(np.dot(wts, sq)) / total_mass
    used = mass > 0
    use_probs = mass[used] / total_mass
    rate = float(-(use_probs * np.log2(use_probs)).sum()) if used.any() else 0.0

    return EcvqResult(
        summary=WeightedCentroidSet(
            centroids=centroids[used], weights=mass[used], source="ecvq"
        ),
        effective_k=int(used.sum()),
        mse=distortion,
        rate_bits=rate,
        lagrangian=distortion + lam * rate,
        iterations=iterations,
    )
