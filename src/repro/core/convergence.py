"""Convergence criteria for iterative clustering.

The paper's criterion stops Lloyd iteration when the improvement in mean
square error between consecutive iterations drops to at most ``1e-9``:
``MSE(n-1) - MSE(n) <= 1e-9``.  Because a pathological seed set can cycle,
every criterion here is combined with an iteration cap in the driver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PAPER_MSE_DELTA",
    "ConvergenceCriterion",
    "MseDeltaCriterion",
    "RelativeMseCriterion",
    "CentroidShiftCriterion",
]

#: The paper's convergence threshold (Section 2 / experiments Section 5.2).
PAPER_MSE_DELTA = 1e-9


class ConvergenceCriterion:
    """Interface for deciding when Lloyd iteration has converged.

    Implementations are stateless; the driver feeds them the previous and
    current iteration summaries.
    """

    def converged(
        self,
        prev_mse: float,
        cur_mse: float,
        centroid_shift: float,
    ) -> bool:
        """Return ``True`` when iteration should stop."""
        raise NotImplementedError


@dataclass(frozen=True)
class MseDeltaCriterion(ConvergenceCriterion):
    """The paper's criterion: absolute MSE improvement at most ``tol``.

    A *negative* delta (MSE increased, possible after an empty-cluster
    repair) does not count as convergence: repairs legitimately trade a
    temporary MSE bump for a better final model, so iteration continues.
    """

    tol: float = PAPER_MSE_DELTA

    def converged(
        self, prev_mse: float, cur_mse: float, centroid_shift: float
    ) -> bool:
        if math.isinf(prev_mse):
            return False
        delta = prev_mse - cur_mse
        return 0.0 <= delta <= self.tol


@dataclass(frozen=True)
class RelativeMseCriterion(ConvergenceCriterion):
    """Stop when the relative MSE improvement falls below ``rtol``.

    Scale-free alternative for data whose coordinate magnitudes make the
    absolute paper threshold too strict or too loose.
    """

    rtol: float = 1e-6

    def converged(
        self, prev_mse: float, cur_mse: float, centroid_shift: float
    ) -> bool:
        if math.isinf(prev_mse):
            return False
        if prev_mse <= 0.0:
            return cur_mse <= 0.0
        delta = prev_mse - cur_mse
        return 0.0 <= delta <= self.rtol * prev_mse


@dataclass(frozen=True)
class CentroidShiftCriterion(ConvergenceCriterion):
    """Stop when the largest centroid movement falls below ``tol``.

    Movement-based stopping is stricter than MSE-based stopping near flat
    optima; it is used by the property-based tests to verify fixed points.
    """

    tol: float = 1e-12

    def converged(
        self, prev_mse: float, cur_mse: float, centroid_shift: float
    ) -> bool:
        return centroid_shift <= self.tol
