"""Unit tests for the canned experiment datasets."""

from __future__ import annotations

import pytest

from repro.data.datasets import (
    PAPER_CELL_SIZES,
    PAPER_K,
    PAPER_RESTARTS,
    build_paper_cells,
    scaled_sizes,
)


class TestPaperConstants:
    def test_table2_sizes(self):
        assert PAPER_CELL_SIZES == (250, 2_500, 12_500, 25_000, 50_000, 75_000)

    def test_k_and_restarts(self):
        assert PAPER_K == 40
        assert PAPER_RESTARTS == 10


class TestScaledSizes:
    def test_identity_scale(self):
        assert scaled_sizes(1.0) == PAPER_CELL_SIZES

    def test_downscale_preserves_order(self):
        sizes = scaled_sizes(0.1)
        assert sizes == tuple(sorted(sizes))
        assert sizes[-1] == 7_500

    def test_floor_at_50(self):
        assert scaled_sizes(0.0001)[0] == 50

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="scale"):
            scaled_sizes(0.0)


class TestBuildPaperCells:
    def test_grid_shape(self):
        cells = build_paper_cells(sizes=(100, 200), n_versions=3)
        assert len(cells) == 6
        assert {c.n_points for c in cells} == {100, 200}
        assert {c.version for c in cells} == {0, 1, 2}

    def test_points_match_declared_size(self):
        cells = build_paper_cells(sizes=(150,), n_versions=2)
        for cell in cells:
            assert cell.points.shape == (150, 6)

    def test_versions_are_distinct_datasets(self):
        import numpy as np

        cells = build_paper_cells(sizes=(100,), n_versions=2)
        assert not np.array_equal(cells[0].points, cells[1].points)

    def test_deterministic(self):
        import numpy as np

        a = build_paper_cells(sizes=(100,), n_versions=1, base_seed=5)
        b = build_paper_cells(sizes=(100,), n_versions=1, base_seed=5)
        np.testing.assert_array_equal(a[0].points, b[0].points)
