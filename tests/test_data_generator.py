"""Unit tests for the synthetic MISR data generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import (
    MISR_DIM,
    ComponentSpec,
    MisrCellDistribution,
    generate_cell_points,
    generate_versions,
    random_cell_distribution,
)


class TestComponentSpec:
    def test_valid(self):
        spec = ComponentSpec(
            mean=np.zeros(3), cov=np.eye(3), weight=1.0
        )
        assert spec.mean.shape == (3,)

    def test_rejects_cov_mismatch(self):
        with pytest.raises(ValueError, match="cov shape"):
            ComponentSpec(mean=np.zeros(3), cov=np.eye(2), weight=1.0)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            ComponentSpec(mean=np.zeros(2), cov=np.eye(2), weight=0.0)


class TestMisrCellDistribution:
    def test_mixture_weights_normalised(self, rng):
        distribution = random_cell_distribution(rng, n_components=4)
        assert distribution.mixture_weights().sum() == pytest.approx(1.0)

    def test_sample_shape(self, rng):
        distribution = random_cell_distribution(rng, n_components=3)
        points = distribution.sample(500, rng)
        assert points.shape == (500, MISR_DIM)

    def test_sample_rejects_zero(self, rng):
        distribution = random_cell_distribution(rng)
        with pytest.raises(ValueError, match="n must be"):
            distribution.sample(0, rng)

    def test_rejects_empty_components(self):
        with pytest.raises(ValueError, match="at least one"):
            MisrCellDistribution(components=())

    def test_rejects_mixed_dims(self):
        a = ComponentSpec(np.zeros(2), np.eye(2), 1.0)
        b = ComponentSpec(np.zeros(3), np.eye(3), 1.0)
        with pytest.raises(ValueError, match="mixed"):
            MisrCellDistribution(components=(a, b))

    def test_samples_are_multimodal(self, rng):
        """Far-apart components must produce visibly separated samples."""
        far = MisrCellDistribution(
            components=(
                ComponentSpec(np.zeros(2), np.eye(2) * 0.01, 1.0),
                ComponentSpec(np.full(2, 100.0), np.eye(2) * 0.01, 1.0),
            )
        )
        points = far.sample(200, rng)
        near_origin = (np.abs(points) < 50).all(axis=1).sum()
        assert 50 < near_origin < 150  # roughly half in each mode


class TestRandomCellDistribution:
    def test_default_component_range(self, rng):
        distribution = random_cell_distribution(rng)
        assert 8 <= distribution.n_components <= 20

    def test_covariances_positive_definite(self, rng):
        distribution = random_cell_distribution(rng, n_components=5)
        for component in distribution.components:
            eigenvalues = np.linalg.eigvalsh(component.cov)
            assert (eigenvalues > 0).all()

    def test_rejects_bad_component_count(self, rng):
        with pytest.raises(ValueError, match="n_components"):
            random_cell_distribution(rng, n_components=0)


class TestGenerateCellPoints:
    def test_shape_and_dtype(self):
        points = generate_cell_points(250, seed=1)
        assert points.shape == (250, MISR_DIM)
        assert points.dtype == np.float64

    def test_deterministic(self):
        a = generate_cell_points(100, seed=7)
        b = generate_cell_points(100, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = generate_cell_points(100, seed=7)
        b = generate_cell_points(100, seed=8)
        assert not np.array_equal(a, b)

    def test_custom_dim(self):
        points = generate_cell_points(50, seed=0, dim=4)
        assert points.shape == (50, 4)

    def test_finite(self):
        points = generate_cell_points(1_000, seed=3)
        assert np.isfinite(points).all()


class TestGenerateVersions:
    def test_version_count_and_shapes(self):
        versions = generate_versions(200, 3, base_seed=0)
        assert len(versions) == 3
        assert all(v.shape == (200, MISR_DIM) for v in versions)

    def test_versions_differ(self):
        versions = generate_versions(200, 2, base_seed=0)
        assert not np.array_equal(versions[0], versions[1])

    def test_rejects_zero_versions(self):
        with pytest.raises(ValueError, match="n_versions"):
            generate_versions(100, 0, base_seed=0)
