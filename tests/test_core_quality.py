"""Unit tests for repro.core.quality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality import (
    assign_to_nearest,
    cluster_sizes,
    davies_bouldin,
    mse,
    pairwise_sq_distances,
    quantization_error_profile,
    sse,
)


class TestPairwiseSqDistances:
    def test_known_values(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        centroids = np.array([[0.0, 0.0]])
        d2 = pairwise_sq_distances(points, centroids)
        np.testing.assert_allclose(d2, [[0.0], [25.0]])

    def test_shape(self):
        d2 = pairwise_sq_distances(np.ones((5, 3)), np.zeros((2, 3)))
        assert d2.shape == (5, 2)


class TestAssignToNearest:
    def test_assigns_to_closest(self):
        points = np.array([[0.1], [0.9], [2.1]])
        centroids = np.array([[0.0], [1.0], [2.0]])
        assignments, sq = assign_to_nearest(points, centroids)
        np.testing.assert_array_equal(assignments, [0, 1, 2])
        np.testing.assert_allclose(sq, [0.01, 0.01, 0.01])

    def test_tie_goes_to_first(self):
        points = np.array([[0.5]])
        centroids = np.array([[0.0], [1.0]])
        assignments, __ = assign_to_nearest(points, centroids)
        assert assignments[0] == 0


class TestSseMse:
    def test_sse_unit_weights(self):
        points = np.array([[0.0], [2.0]])
        centroids = np.array([[0.0]])
        assert sse(points, centroids) == pytest.approx(4.0)

    def test_sse_respects_weights(self):
        points = np.array([[0.0], [2.0]])
        centroids = np.array([[0.0]])
        assert sse(points, centroids, weights=np.array([1.0, 3.0])) == pytest.approx(
            12.0
        )

    def test_mse_normalises_by_mass(self):
        points = np.array([[0.0], [2.0]])
        centroids = np.array([[0.0]])
        assert mse(points, centroids, weights=np.array([1.0, 3.0])) == pytest.approx(
            3.0
        )

    def test_perfect_model_scores_zero(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert mse(points, points) == 0.0

    def test_mse_with_unit_weights_matches_mean(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 3))
        centroids = rng.normal(size=(4, 3))
        __, sq = assign_to_nearest(points, centroids)
        assert mse(points, centroids) == pytest.approx(sq.mean())


class TestClusterSizes:
    def test_counts_points(self):
        points = np.array([[0.0], [0.1], [5.0]])
        centroids = np.array([[0.0], [5.0]])
        sizes = cluster_sizes(points, centroids)
        np.testing.assert_allclose(sizes, [2.0, 1.0])

    def test_empty_cluster_counts_zero(self):
        points = np.array([[0.0], [0.1]])
        centroids = np.array([[0.0], [99.0]])
        sizes = cluster_sizes(points, centroids)
        assert sizes[1] == 0.0

    def test_weighted_sizes(self):
        points = np.array([[0.0], [5.0]])
        centroids = np.array([[0.0], [5.0]])
        sizes = cluster_sizes(points, centroids, weights=np.array([2.5, 4.0]))
        np.testing.assert_allclose(sizes, [2.5, 4.0])


class TestQuantizationErrorProfile:
    def test_keys_and_order(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(100, 2))
        profile = quantization_error_profile(points, np.zeros((1, 2)))
        assert set(profile) == {"mean", "median", "p95", "max"}
        assert profile["median"] <= profile["p95"] <= profile["max"]

    def test_zero_for_perfect_codebook(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0]])
        profile = quantization_error_profile(points, points)
        assert profile["max"] == 0.0


class TestDaviesBouldin:
    def test_well_separated_blobs_score_low(self, blobs_2d, blob_centers_2d):
        good = davies_bouldin(blobs_2d, blob_centers_2d)
        collapsed = davies_bouldin(
            blobs_2d, np.array([[5.0, 5.0], [5.1, 5.1], [4.9, 4.9], [5.0, 4.9]])
        )
        assert good < collapsed

    def test_single_occupied_cluster_scores_zero(self):
        points = np.ones((10, 2))
        assert davies_bouldin(points, np.array([[1.0, 1.0], [50.0, 50.0]])) == 0.0
