"""Unit tests for repro.core.quality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality import (
    assign_to_nearest,
    cluster_sizes,
    davies_bouldin,
    mse,
    pairwise_sq_distances,
    quantization_error_profile,
    sse,
)


class TestPairwiseSqDistances:
    def test_known_values(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        centroids = np.array([[0.0, 0.0]])
        d2 = pairwise_sq_distances(points, centroids)
        np.testing.assert_allclose(d2, [[0.0], [25.0]])

    def test_shape(self):
        d2 = pairwise_sq_distances(np.ones((5, 3)), np.zeros((2, 3)))
        assert d2.shape == (5, 2)


class TestAssignToNearest:
    def test_assigns_to_closest(self):
        points = np.array([[0.1], [0.9], [2.1]])
        centroids = np.array([[0.0], [1.0], [2.0]])
        assignments, sq = assign_to_nearest(points, centroids)
        np.testing.assert_array_equal(assignments, [0, 1, 2])
        np.testing.assert_allclose(sq, [0.01, 0.01, 0.01])

    def test_tie_goes_to_first(self):
        points = np.array([[0.5]])
        centroids = np.array([[0.0], [1.0]])
        assignments, __ = assign_to_nearest(points, centroids)
        assert assignments[0] == 0


class TestSseMse:
    def test_sse_unit_weights(self):
        points = np.array([[0.0], [2.0]])
        centroids = np.array([[0.0]])
        assert sse(points, centroids) == pytest.approx(4.0)

    def test_sse_respects_weights(self):
        points = np.array([[0.0], [2.0]])
        centroids = np.array([[0.0]])
        assert sse(points, centroids, weights=np.array([1.0, 3.0])) == pytest.approx(
            12.0
        )

    def test_mse_normalises_by_mass(self):
        points = np.array([[0.0], [2.0]])
        centroids = np.array([[0.0]])
        assert mse(points, centroids, weights=np.array([1.0, 3.0])) == pytest.approx(
            3.0
        )

    def test_perfect_model_scores_zero(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert mse(points, points) == 0.0

    def test_mse_with_unit_weights_matches_mean(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 3))
        centroids = rng.normal(size=(4, 3))
        __, sq = assign_to_nearest(points, centroids)
        assert mse(points, centroids) == pytest.approx(sq.mean())


class TestClusterSizes:
    def test_counts_points(self):
        points = np.array([[0.0], [0.1], [5.0]])
        centroids = np.array([[0.0], [5.0]])
        sizes = cluster_sizes(points, centroids)
        np.testing.assert_allclose(sizes, [2.0, 1.0])

    def test_empty_cluster_counts_zero(self):
        points = np.array([[0.0], [0.1]])
        centroids = np.array([[0.0], [99.0]])
        sizes = cluster_sizes(points, centroids)
        assert sizes[1] == 0.0

    def test_weighted_sizes(self):
        points = np.array([[0.0], [5.0]])
        centroids = np.array([[0.0], [5.0]])
        sizes = cluster_sizes(points, centroids, weights=np.array([2.5, 4.0]))
        np.testing.assert_allclose(sizes, [2.5, 4.0])


class TestQuantizationErrorProfile:
    def test_keys_and_order(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(100, 2))
        profile = quantization_error_profile(points, np.zeros((1, 2)))
        assert set(profile) == {"mean", "median", "p95", "max"}
        assert profile["median"] <= profile["p95"] <= profile["max"]

    def test_zero_for_perfect_codebook(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0]])
        profile = quantization_error_profile(points, points)
        assert profile["max"] == 0.0


class TestDaviesBouldin:
    def test_well_separated_blobs_score_low(self, blobs_2d, blob_centers_2d):
        good = davies_bouldin(blobs_2d, blob_centers_2d)
        collapsed = davies_bouldin(
            blobs_2d, np.array([[5.0, 5.0], [5.1, 5.1], [4.9, 4.9], [5.0, 4.9]])
        )
        assert good < collapsed

    def test_single_occupied_cluster_scores_zero(self):
        points = np.ones((10, 2))
        assert davies_bouldin(points, np.array([[1.0, 1.0], [50.0, 50.0]])) == 0.0


class TestDtypeAndLayoutHandling:
    """assign_to_nearest / pairwise_sq_distances coerce layout and dtype.

    The cdist path historically upcast float32 and copied non-contiguous
    inputs silently; the explicit coercion makes that contract stated and
    uniform across every Lloyd kernel.
    """

    def _reference(self, rng):
        points = rng.normal(size=(64, 5))
        centroids = rng.normal(size=(7, 5))
        return points, centroids

    def test_float32_inputs_match_float64(self):
        rng = np.random.default_rng(31)
        points, centroids = self._reference(rng)
        ref_assign, ref_sq = assign_to_nearest(points, centroids)
        f32_assign, f32_sq = assign_to_nearest(
            points.astype(np.float32), centroids.astype(np.float32)
        )
        # The float32 views are coerced up front, so the results are
        # bit-identical to converting to float64 first.
        exp_assign, exp_sq = assign_to_nearest(
            points.astype(np.float32).astype(np.float64),
            centroids.astype(np.float32).astype(np.float64),
        )
        assert f32_assign.tobytes() == exp_assign.tobytes()
        assert f32_sq.tobytes() == exp_sq.tobytes()
        assert f32_sq.dtype == np.float64
        # And close (not identical: the cast rounds) to the f64 originals.
        np.testing.assert_allclose(f32_sq, ref_sq, rtol=1e-5)
        assert (f32_assign == ref_assign).mean() > 0.9

    def test_non_contiguous_inputs_match_contiguous(self):
        rng = np.random.default_rng(32)
        points, centroids = self._reference(rng)
        # Fortran order, sliced views, and reversed strides all coerce.
        for view in (
            np.asfortranarray(points),
            points[::2],
            points[:, ::1][::-1][::-1],
            np.ascontiguousarray(points)[np.arange(64)],
        ):
            expected = pairwise_sq_distances(
                np.ascontiguousarray(view), centroids
            )
            got = pairwise_sq_distances(view, np.asfortranarray(centroids))
            assert got.tobytes() == expected.tobytes()

    def test_all_kernels_accept_float32_and_strided_inputs(self):
        from repro.core.kmeans import lloyd

        rng = np.random.default_rng(33)
        base = rng.normal(size=(300, 4)).astype(np.float32)
        strided = base[::2]  # non-contiguous float32 view
        seeds = strided[:6]
        results = {
            name: lloyd(strided, seeds, kernel=name)
            for name in ("dense", "hamerly", "elkan")
        }
        ref = results["dense"]
        assert ref.centroids.dtype == np.float64
        for name, result in results.items():
            assert result.assignments.tobytes() == ref.assignments.tobytes(), name
            assert result.centroids.tobytes() == ref.centroids.tobytes(), name
            assert result.sse == ref.sse, name
