"""Unit and property tests for partitioning strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.partitioning import (
    RandomPartitioner,
    SalamiPartitioner,
    SpatialPartitioner,
    make_partitioner,
)

ALL_NAMES = ("random", "spatial", "salami")


class TestFactory:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_known_names(self, name):
        assert make_partitioner(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("striped")


class TestCommonContract:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_exact_partition(self, name, blobs_2d):
        chunks = make_partitioner(name, seed=0).split(blobs_2d, 5)
        assert len(chunks) == 5
        assert sum(c.shape[0] for c in chunks) == blobs_2d.shape[0]
        recombined = np.sort(np.vstack(chunks), axis=0)
        np.testing.assert_allclose(recombined, np.sort(blobs_2d, axis=0))

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_rejects_too_many_chunks(self, name):
        with pytest.raises(ValueError, match="cannot split"):
            make_partitioner(name, seed=0).split(np.ones((2, 2)), 3)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_rejects_zero_chunks(self, name):
        with pytest.raises(ValueError, match="n_chunks"):
            make_partitioner(name, seed=0).split(np.ones((5, 2)), 0)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_single_chunk_is_whole_set(self, name, blobs_2d):
        (chunk,) = make_partitioner(name, seed=0).split(blobs_2d, 1)
        assert chunk.shape == blobs_2d.shape


class TestRandomPartitioner:
    def test_deterministic_given_seed(self, blobs_2d):
        a = RandomPartitioner(seed=3).split(blobs_2d, 4)
        b = RandomPartitioner(seed=3).split(blobs_2d, 4)
        for chunk_a, chunk_b in zip(a, b):
            np.testing.assert_array_equal(chunk_a, chunk_b)

    def test_chunks_overlap_spatially(self, blobs_2d):
        """The paper: random chunks' areas overlap >90%."""
        chunks = RandomPartitioner(seed=0).split(blobs_2d, 5)
        mins = np.array([c.min(axis=0) for c in chunks])
        maxs = np.array([c.max(axis=0) for c in chunks])
        # Every chunk must span nearly the full data range.
        data_span = blobs_2d.max(axis=0) - blobs_2d.min(axis=0)
        chunk_spans = maxs - mins
        assert (chunk_spans > 0.8 * data_span).all()


class TestSpatialPartitioner:
    def test_chunks_are_disjoint_ranges(self, blobs_2d):
        chunks = SpatialPartitioner(axis=0).split(blobs_2d, 4)
        uppers = [c[:, 0].max() for c in chunks]
        lowers = [c[:, 0].min() for c in chunks]
        for i in range(3):
            assert uppers[i] <= lowers[i + 1] + 1e-12

    def test_axis_out_of_range(self, blobs_2d):
        with pytest.raises(ValueError, match="axis 5 out of range"):
            SpatialPartitioner(axis=5).split(blobs_2d, 2)

    def test_negative_axis_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            SpatialPartitioner(axis=-1)


class TestSalamiPartitioner:
    def test_interleaved_assignment(self):
        points = np.arange(12, dtype=float).reshape(-1, 1)
        chunks = SalamiPartitioner().split(points, 3)
        np.testing.assert_allclose(chunks[0].ravel(), [0, 3, 6, 9])
        np.testing.assert_allclose(chunks[1].ravel(), [1, 4, 7, 10])
        np.testing.assert_allclose(chunks[2].ravel(), [2, 5, 8, 11])

    def test_deterministic(self, blobs_2d):
        a = SalamiPartitioner().split(blobs_2d, 4)
        b = SalamiPartitioner().split(blobs_2d, 4)
        for chunk_a, chunk_b in zip(a, b):
            np.testing.assert_array_equal(chunk_a, chunk_b)


class TestPartitionProperty:
    @given(
        pts=arrays(
            np.float64,
            st.tuples(st.integers(6, 50), st.integers(1, 4)),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        n_chunks=st.integers(1, 6),
        name=st.sampled_from(ALL_NAMES),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_is_always_a_partition(self, pts, n_chunks, name):
        n_chunks = min(n_chunks, pts.shape[0])
        chunks = make_partitioner(name, seed=0).split(pts, n_chunks)
        assert sum(c.shape[0] for c in chunks) == pts.shape[0]
        stacked = np.vstack(chunks)
        np.testing.assert_allclose(
            np.sort(stacked, axis=0), np.sort(pts, axis=0)
        )
