"""Unit tests for the satellite-swath simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.gridcell import GridCellId
from repro.data.swath import SwathSimulator, bin_stripes_into_buckets


class TestSwathSimulator:
    def test_stripe_shapes(self):
        simulator = SwathSimulator(footprints_per_orbit=100, seed=0)
        (stripe,) = list(simulator.fly(1))
        assert stripe.lats.shape == (100,)
        assert stripe.lons.shape == (100,)
        assert stripe.measurements.shape == (100, 6)
        assert stripe.n_footprints == 100

    def test_samples_per_footprint_multiplies_measurements(self):
        simulator = SwathSimulator(
            footprints_per_orbit=50, samples_per_footprint=4, seed=0
        )
        (stripe,) = list(simulator.fly(1))
        assert stripe.measurements.shape == (200, 6)
        assert stripe.lats.shape == (200,)

    def test_coordinates_in_valid_ranges(self):
        simulator = SwathSimulator(footprints_per_orbit=500, seed=1)
        for stripe in simulator.fly(3):
            assert (stripe.lats >= -90).all() and (stripe.lats < 90).all()
            assert (stripe.lons >= -180).all() and (stripe.lons < 180).all()

    def test_orbits_drift_westward(self):
        simulator = SwathSimulator(footprints_per_orbit=50, seed=0)
        stripes = list(simulator.fly(2))
        # Successive orbits must cover different longitude bands.
        assert abs(np.median(stripes[0].lons) - np.median(stripes[1].lons)) > 5.0

    def test_pole_to_pole_coverage(self):
        simulator = SwathSimulator(footprints_per_orbit=500, seed=0)
        (stripe,) = list(simulator.fly(1))
        assert stripe.lats.max() > 80
        assert stripe.lats.min() < -80

    def test_deterministic(self):
        a = list(SwathSimulator(footprints_per_orbit=50, seed=5).fly(2))
        b = list(SwathSimulator(footprints_per_orbit=50, seed=5).fly(2))
        for stripe_a, stripe_b in zip(a, b):
            np.testing.assert_array_equal(
                stripe_a.measurements, stripe_b.measurements
            )

    def test_same_cell_shares_distribution(self):
        """Footprints in one cell must come from one mixture: two visits
        to the same cell produce statistically similar data."""
        simulator = SwathSimulator(
            footprints_per_orbit=20, samples_per_footprint=200, seed=3
        )
        (stripe,) = list(simulator.fly(1))
        cells = [
            GridCellId.containing(lat, lon)
            for lat, lon in zip(stripe.lats, stripe.lons)
        ]
        by_cell: dict[GridCellId, list[int]] = {}
        for index, cell in enumerate(cells):
            by_cell.setdefault(cell, []).append(index)
        # Find a cell visited by two or more footprints.
        for cell, indices in by_cell.items():
            if len(indices) >= 2:
                a = stripe.measurements[indices[0]]
                b = stripe.measurements[indices[1]]
                # Same mixture, so both land within the mixture envelope.
                assert np.abs(a - b).max() < 200.0
                return

    @pytest.mark.parametrize("bad", [{"footprints_per_orbit": 0},
                                     {"samples_per_footprint": 0},
                                     {"swath_width_deg": 0.0}])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SwathSimulator(**bad)

    def test_rejects_zero_orbits(self):
        simulator = SwathSimulator(footprints_per_orbit=10, seed=0)
        with pytest.raises(ValueError, match="n_orbits"):
            list(simulator.fly(0))


class TestBinning:
    def test_every_measurement_binned_once(self):
        simulator = SwathSimulator(
            footprints_per_orbit=200, samples_per_footprint=3, seed=2
        )
        stripes = list(simulator.fly(2))
        buckets = bin_stripes_into_buckets(stripes)
        total_binned = sum(b.n_points for b in buckets.values())
        total_measured = sum(s.measurements.shape[0] for s in stripes)
        assert total_binned == total_measured

    def test_bucket_ids_match_contents(self):
        simulator = SwathSimulator(footprints_per_orbit=100, seed=4)
        buckets = bin_stripes_into_buckets(simulator.fly(1))
        for cell_id, bucket in buckets.items():
            assert bucket.cell_id == cell_id

    def test_binning_from_iterator_or_list(self):
        simulator = SwathSimulator(footprints_per_orbit=50, seed=6)
        stripes = list(simulator.fly(1))
        from_list = bin_stripes_into_buckets(stripes)
        from_iter = bin_stripes_into_buckets(iter(stripes))
        assert set(from_list) == set(from_iter)
