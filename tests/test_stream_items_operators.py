"""Tests for stream items and the operator base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import WeightedCentroidSet
from repro.stream.items import CentroidMessage, DataChunk, Watermark
from repro.stream.operators import (
    FunctionTransform,
    Operator,
    Sink,
    Source,
    Transform,
)


class TestDataChunk:
    def test_valid_chunk(self):
        chunk = DataChunk(
            cell_id="c", partition=2, points=np.ones((5, 3)), n_partitions=4
        )
        assert chunk.n_points == 5
        assert chunk.partition == 2

    def test_rejects_negative_partition(self):
        with pytest.raises(ValueError, match="partition"):
            DataChunk(cell_id="c", partition=-1, points=np.ones((2, 2)))

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            DataChunk(cell_id="c", partition=0, points=np.empty((0, 3)))

    def test_frozen(self):
        chunk = DataChunk(cell_id="c", partition=0, points=np.ones((2, 2)))
        with pytest.raises(AttributeError):
            chunk.cell_id = "other"


class TestCentroidMessage:
    def test_carries_summary(self):
        summary = WeightedCentroidSet(np.ones((2, 3)), np.array([1.0, 2.0]))
        message = CentroidMessage(
            cell_id="c", partition=0, summary=summary, n_partitions=2
        )
        assert message.summary.total_weight == 3.0
        assert message.partial_seconds == 0.0


class TestWatermark:
    def test_defaults(self):
        mark = Watermark(cell_id="c", n_partitions=5)
        assert mark.payload == {}


class TestOperatorBases:
    def test_operator_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            Operator("")

    def test_default_clone_returns_self_for_stateless(self):
        operator = Operator("op")
        assert operator.clone() is operator

    def test_nonparallelizable_clone_raises(self):
        class Singleton(Operator):
            parallelizable = False

        with pytest.raises(TypeError, match="not parallelizable"):
            Singleton("s").clone()

    def test_source_is_not_parallelizable(self):
        class MySource(Source):
            def generate(self):
                yield 1

        assert not MySource("s").parallelizable

    def test_sink_is_not_parallelizable(self):
        class MySink(Sink):
            def consume(self, item):
                pass

            def result(self):
                return None

        assert not MySink("s").parallelizable

    def test_transform_finish_defaults_empty(self):
        class MyTransform(Transform):
            def process(self, item):
                return [item]

        assert list(MyTransform("t").finish()) == []

    def test_abstract_methods_raise(self):
        with pytest.raises(NotImplementedError):
            next(iter(Source("s").generate()))
        with pytest.raises(NotImplementedError):
            Transform("t").process(1)
        with pytest.raises(NotImplementedError):
            Sink("k").consume(1)
        with pytest.raises(NotImplementedError):
            Sink("k").result()


class TestFunctionTransform:
    def test_wraps_function(self):
        transform = FunctionTransform("triple", lambda item: [item] * 3)
        assert list(transform.process("x")) == ["x", "x", "x"]

    def test_clone_is_fresh_instance_same_function(self):
        transform = FunctionTransform("t", lambda item: [item + 1])
        clone = transform.clone()
        assert clone is not transform
        assert list(clone.process(1)) == [2]
