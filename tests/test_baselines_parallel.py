"""Unit tests for the Figure-2 parallelization methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.parallel_methods import (
    method_a_cells_in_parallel,
    method_b_restarts_in_parallel,
    method_c_distance_partitioned,
)
from repro.baselines.serial import SerialKMeans


class TestMethodA:
    def test_one_model_per_cell(self, blobs_2d, blobs_6d):
        cells = {"a": blobs_2d, "b": blobs_6d}
        models = method_a_cells_in_parallel(cells, k=4, restarts=2, seed=0)
        assert set(models) == {"a", "b"}
        assert models["a"].dim == 2
        assert models["b"].dim == 6

    def test_quality_matches_serial(self, blobs_2d):
        models = method_a_cells_in_parallel(
            {"only": blobs_2d}, k=4, restarts=4, seed=0
        )
        serial = SerialKMeans(k=4, restarts=4, seed=0).fit(blobs_2d)
        assert models["only"].mse <= serial.mse * 2 + 1.0

    def test_rejects_bad_workers(self, blobs_2d):
        with pytest.raises(ValueError, match="max_workers"):
            method_a_cells_in_parallel({"a": blobs_2d}, k=3, max_workers=0)


class TestMethodB:
    def test_result_is_min_over_restarts(self, blobs_2d):
        model = method_b_restarts_in_parallel(
            blobs_2d, k=4, restarts=5, max_workers=2, seed=0
        )
        assert model.method == "method-B"
        assert model.mse == pytest.approx(min(model.extra["restart_mses"]))

    def test_weights_cover_points(self, blobs_2d):
        model = method_b_restarts_in_parallel(
            blobs_2d, k=4, restarts=3, seed=0
        )
        assert model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_worker_count_does_not_change_result(self, blobs_6d):
        a = method_b_restarts_in_parallel(
            blobs_6d, k=5, restarts=4, max_workers=1, seed=2
        )
        b = method_b_restarts_in_parallel(
            blobs_6d, k=5, restarts=4, max_workers=4, seed=2
        )
        np.testing.assert_allclose(a.mse, b.mse)


class TestMethodC:
    def test_matches_lloyd_quality(self, blobs_2d):
        model, __ = method_c_distance_partitioned(
            blobs_2d, k=4, n_slaves=2, seed=0
        )
        # Numerically identical iteration to Lloyd; must find a sane optimum.
        assert model.mse < 30.0
        assert model.weights.sum() == pytest.approx(blobs_2d.shape[0])

    def test_message_ledger_populated(self, blobs_2d):
        __, stats = method_c_distance_partitioned(
            blobs_2d, k=4, n_slaves=4, seed=0
        )
        assert stats.iterations >= 1
        assert stats.broadcasts == stats.iterations * 4 * 3
        assert stats.migrated_points >= 0
        assert len(stats.per_iteration_migrations) == stats.iterations - 1

    def test_migrations_taper_as_it_converges(self, blobs_6d):
        __, stats = method_c_distance_partitioned(
            blobs_6d, k=6, n_slaves=3, seed=1
        )
        if len(stats.per_iteration_migrations) >= 3:
            first = stats.per_iteration_migrations[0]
            last = stats.per_iteration_migrations[-1]
            assert last <= max(first, 1)

    def test_rejects_k_smaller_than_slaves(self, blobs_2d):
        with pytest.raises(ValueError, match="k >= n_slaves"):
            method_c_distance_partitioned(blobs_2d, k=2, n_slaves=4)

    def test_rejects_zero_slaves(self, blobs_2d):
        with pytest.raises(ValueError, match="n_slaves"):
            method_c_distance_partitioned(blobs_2d, k=4, n_slaves=0)
