"""Property-based tests for the binary formats and histogram bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.serial import SerialKMeans
from repro.compression.histogram import MultivariateHistogram
from repro.compression.serialization import (
    read_histogram_file,
    write_histogram_file,
)
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import (
    read_bucket_file,
    stream_bucket_points,
    write_bucket_file,
)
from repro.data.swath import SwathStripe
from repro.data.swathio import read_swath_stripes, write_swath_file

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)

format_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def point_matrices(max_rows: int = 40, max_cols: int = 5):
    return st.integers(1, max_rows).flatmap(
        lambda n: st.integers(1, max_cols).flatmap(
            lambda d: arrays(np.float64, (n, d), elements=finite)
        )
    )


class TestGridBucketRoundTrip:
    @given(
        pts=point_matrices(),
        lat=st.integers(-90, 89),
        lon=st.integers(-180, 179),
    )
    @format_settings
    def test_roundtrip_bitexact(self, tmp_path, pts, lat, lon):
        cell = GridCell(GridCellId(lat, lon), pts)
        path = write_bucket_file(tmp_path / "c.gbk", cell)
        loaded = read_bucket_file(path)
        assert loaded.cell_id == cell.cell_id
        np.testing.assert_array_equal(loaded.points, cell.points)

    @given(pts=point_matrices(), chunk=st.integers(1, 50))
    @format_settings
    def test_streaming_reassembles(self, tmp_path, pts, chunk):
        cell = GridCell(GridCellId(0, 0), pts)
        path = write_bucket_file(tmp_path / "c.gbk", cell)
        chunks = list(stream_bucket_points(path, chunk))
        np.testing.assert_array_equal(np.vstack(chunks), cell.points)
        assert all(c.shape[0] <= chunk for c in chunks)


class TestSwathRoundTrip:
    @given(
        n=st.integers(1, 30),
        dim=st.integers(1, 5),
        n_stripes=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @format_settings
    def test_roundtrip_bitexact(self, tmp_path, n, dim, n_stripes, seed):
        rng = np.random.default_rng(seed)
        stripes = [
            SwathStripe(
                orbit=index,
                lats=rng.uniform(-90, 89.9, size=n),
                lons=rng.uniform(-180, 179.9, size=n),
                measurements=rng.normal(size=(n, dim)),
            )
            for index in range(n_stripes)
        ]
        path = write_swath_file(tmp_path / "g.swf", stripes)
        loaded = list(read_swath_stripes(path))
        assert len(loaded) == n_stripes
        for original, restored in zip(stripes, loaded):
            np.testing.assert_array_equal(
                restored.measurements, original.measurements
            )
            np.testing.assert_array_equal(restored.lats, original.lats)


class TestHistogramProperties:
    @given(
        pts=point_matrices(max_rows=60, max_cols=3),
        k=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @format_settings
    def test_estimate_count_bounds(self, tmp_path, pts, k, seed):
        """0 <= estimate <= total for any query box, and the all-covering
        box returns exactly the total."""
        k = min(k, pts.shape[0])
        model = SerialKMeans(k=k, restarts=1, seed=seed, max_iter=20).fit(pts)
        histogram = MultivariateHistogram.from_model(pts, model)

        rng = np.random.default_rng(seed)
        lo = rng.uniform(-1e6, 1e6, size=pts.shape[1])
        hi = lo + rng.uniform(0, 1e6, size=pts.shape[1])
        estimate = histogram.estimate_count(lo, hi)
        assert -1e-6 <= estimate <= histogram.total_count * (1 + 1e-9)

        everything = histogram.estimate_count(
            pts.min(axis=0) - 1, pts.max(axis=0) + 1
        )
        assert everything == pytest.approx(pts.shape[0], rel=1e-9)

    @given(
        pts=point_matrices(max_rows=60, max_cols=3),
        k=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @format_settings
    def test_mvh_roundtrip_preserves_queries(self, tmp_path, pts, k, seed):
        k = min(k, pts.shape[0])
        model = SerialKMeans(k=k, restarts=1, seed=seed, max_iter=20).fit(pts)
        histogram = MultivariateHistogram.from_model(pts, model)
        path = write_histogram_file(
            tmp_path / "c.mvh", GridCellId(0, 0), histogram
        )
        __, loaded = read_histogram_file(path)
        assert loaded.total_count == pytest.approx(histogram.total_count)
        lo = pts.min(axis=0)
        hi = pts.mean(axis=0)
        assert loaded.estimate_count(lo, np.maximum(hi, lo)) == pytest.approx(
            histogram.estimate_count(lo, np.maximum(hi, lo))
        )

    @given(
        pts=point_matrices(max_rows=60, max_cols=3),
        n_bins=st.integers(1, 40),
    )
    @format_settings
    def test_marginal_mass_always_conserved(self, pts, n_bins):
        k = min(4, pts.shape[0])
        model = SerialKMeans(k=k, restarts=1, seed=0, max_iter=20).fit(pts)
        histogram = MultivariateHistogram.from_model(pts, model)
        __, counts = histogram.marginal(0, n_bins=n_bins)
        assert counts.sum() == pytest.approx(pts.shape[0], rel=1e-9)
        assert (counts >= -1e-9).all()
