"""Unit tests for repro.core.convergence."""

from __future__ import annotations

import math

from repro.core.convergence import (
    PAPER_MSE_DELTA,
    CentroidShiftCriterion,
    MseDeltaCriterion,
    RelativeMseCriterion,
)


class TestMseDeltaCriterion:
    def test_paper_threshold_is_1e_minus_9(self):
        assert PAPER_MSE_DELTA == 1e-9
        assert MseDeltaCriterion().tol == 1e-9

    def test_never_converges_from_infinite_prev(self):
        assert not MseDeltaCriterion().converged(math.inf, 100.0, 1.0)

    def test_converges_on_tiny_improvement(self):
        assert MseDeltaCriterion().converged(1.0, 1.0 - 1e-10, 0.5)

    def test_converges_on_zero_improvement(self):
        assert MseDeltaCriterion().converged(1.0, 1.0, 0.0)

    def test_keeps_going_on_large_improvement(self):
        assert not MseDeltaCriterion().converged(2.0, 1.0, 0.5)

    def test_mse_increase_does_not_converge(self):
        # An empty-cluster repair can bump MSE up; that must not stop.
        assert not MseDeltaCriterion().converged(1.0, 1.5, 0.5)

    def test_custom_tolerance(self):
        assert MseDeltaCriterion(tol=0.1).converged(1.0, 0.95, 0.5)


class TestRelativeMseCriterion:
    def test_scale_free(self):
        criterion = RelativeMseCriterion(rtol=1e-3)
        # Same relative improvement at wildly different scales.
        assert criterion.converged(1e6, 1e6 * (1 - 1e-4), 1.0)
        assert criterion.converged(1e-6, 1e-6 * (1 - 1e-4), 1.0)

    def test_keeps_going_above_rtol(self):
        assert not RelativeMseCriterion(rtol=1e-3).converged(1.0, 0.9, 1.0)

    def test_zero_prev_mse(self):
        criterion = RelativeMseCriterion()
        assert criterion.converged(0.0, 0.0, 0.0)

    def test_infinite_prev_does_not_converge(self):
        assert not RelativeMseCriterion().converged(math.inf, 5.0, 1.0)

    def test_increase_does_not_converge(self):
        assert not RelativeMseCriterion().converged(1.0, 1.1, 0.0)


class TestCentroidShiftCriterion:
    def test_converges_on_zero_shift(self):
        assert CentroidShiftCriterion().converged(5.0, 4.0, 0.0)

    def test_keeps_going_on_large_shift(self):
        assert not CentroidShiftCriterion().converged(5.0, 5.0, 1.0)

    def test_ignores_mse_entirely(self):
        assert CentroidShiftCriterion(tol=0.1).converged(math.inf, math.inf, 0.05)
