"""Behavioural tests for the coreset merge tree and its stack wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.model import WeightedCentroidSet
from repro.data.generator import generate_cell_points
from repro.data.gridcell import GridCell, GridCellId
from repro.data.gridio import write_bucket_dir
from repro.stream.checkpoint import JOURNAL_FILENAME, read_journal
from repro.stream.coreset import (
    CoresetTree,
    CoresetTreeError,
    CoresetTreeSink,
)
from repro.stream.items import CentroidMessage, Watermark
from repro.stream.query import Query, QueryError
from repro.stream.tracing import metrics_to_dict


def make_message(partition, n_partitions=0, dim=2, k=3, cell_id="cell"):
    rng = np.random.default_rng(1000 + partition)
    return CentroidMessage(
        cell_id=cell_id,
        partition=partition,
        summary=WeightedCentroidSet(
            centroids=rng.normal(size=(k, dim)),
            weights=rng.uniform(1.0, 10.0, size=k),
            source=f"{cell_id}/P{partition}",
        ),
        n_partitions=n_partitions,
    )


@pytest.fixture
def bucket_dir(tmp_path):
    cells = [
        GridCell(GridCellId(10, 20), generate_cell_points(300, seed=1)),
        GridCell(GridCellId(11, 20), generate_cell_points(250, seed=2)),
    ]
    write_bucket_dir(tmp_path / "buckets", cells)
    return tmp_path / "buckets"


class TestCoresetTree:
    def test_binary_counter_frontier(self):
        tree = CoresetTree(k=3)
        for index in range(11):
            tree.offer(make_message(index))
        # 11 = 0b1011: the frontier is the dyadic decomposition 8 + 2 + 1.
        assert [root.count for root in tree.roots] == [8, 2, 1]
        assert [root.start for root in tree.roots] == [0, 8, 10]
        assert tree.depth == 3
        assert tree.n_inserted == 11
        # Every merge is retained: 11 leaves plus one internal node per
        # binary-counter carry (n - popcount(n) = 11 - 3 = 8).
        assert tree.n_nodes == 19
        assert tree.node_merges == 8

    def test_empty_tree_refuses_queries(self):
        tree = CoresetTree(k=3)
        with pytest.raises(CoresetTreeError, match="empty"):
            tree.query_prefix()
        with pytest.raises(CoresetTreeError, match="empty"):
            tree.query_window(2)

    def test_window_validation(self):
        tree = CoresetTree(k=3)
        tree.offer(make_message(0))
        with pytest.raises(CoresetTreeError, match="window"):
            tree.query_window(0)

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError, match="k must be"):
            CoresetTree(k=0)

    def test_duplicate_partition_rejected(self):
        tree = CoresetTree(k=3)
        tree.offer(make_message(0))
        with pytest.raises(ValueError, match="duplicate partition 0"):
            tree.offer(make_message(0))
        tree.offer(make_message(5))  # stashed, out of order
        with pytest.raises(ValueError, match="duplicate partition 5"):
            tree.offer(make_message(5))

    def test_out_of_order_arrivals_stash_then_drain(self):
        tree = CoresetTree(k=3)
        assert tree.offer(make_message(2)) == 0
        assert tree.offer(make_message(1)) == 0
        assert tree.n_stashed == 2
        assert tree.n_inserted == 0
        # The gap fills: everything drains at once, in partition order.
        assert tree.offer(make_message(0)) == 3
        assert tree.n_stashed == 0
        assert tree.n_inserted == 3

    def test_query_cache_hits(self):
        tree = CoresetTree(k=3)
        for index in range(5):
            tree.offer(make_message(index))
        first = tree.query_prefix()
        second = tree.query_prefix()
        assert not first.cached
        assert second.cached
        assert tree.query_cache_hits == 1
        np.testing.assert_array_equal(
            first.model.centroids, second.model.centroids
        )
        # Growing the prefix invalidates nothing: a new range, a new entry.
        tree.offer(make_message(5))
        assert not tree.query_prefix().cached

    def test_window_query_descends_into_cached_children(self):
        tree = CoresetTree(k=3)
        for index in range(8):
            tree.offer(make_message(index))
        # The frontier is one node of 8; a window of 3 must descend to
        # the retained children [5], [6, 7].
        assert [root.count for root in tree.roots] == [8]
        answer = tree.query_window(3)
        assert (answer.start, answer.upto) == (5, 8)
        assert answer.nodes_reused == 2
        total = sum(
            make_message(i).summary.total_weight for i in range(5, 8)
        )
        assert answer.model.total_weight == pytest.approx(total)

    def test_window_larger_than_stream_covers_everything(self):
        tree = CoresetTree(k=3)
        for index in range(3):
            tree.offer(make_message(index))
        answer = tree.query_window(100)
        assert (answer.start, answer.upto) == (0, 3)

    def test_query_reduces_to_k(self):
        tree = CoresetTree(k=2)
        for index in range(6):
            tree.offer(make_message(index, k=4))
        answer = tree.query_prefix()
        assert answer.model.k <= 2

    def test_preloaded_nodes_skip_merges(self):
        recorded = {}
        tree = CoresetTree(
            k=3,
            node_sink=lambda start, count, summary: recorded.__setitem__(
                (start, count), summary
            ),
        )
        for index in range(6):
            tree.offer(make_message(index))
        # 6 leaves: one merge per binary-counter carry (6 - popcount(6)).
        assert tree.node_merges == len(recorded) == 4

        rebuilt = CoresetTree(k=3, preloaded=recorded)
        for index in range(6):
            rebuilt.offer(make_message(index))
        assert rebuilt.node_merges == 0
        assert rebuilt.nodes_preloaded == 4
        np.testing.assert_array_equal(
            tree.query_prefix().model.centroids,
            rebuilt.query_prefix().model.centroids,
        )


class TestCoresetTreeSink:
    def feed(self, sink, n_partitions=6, cell_id="cell"):
        for index in range(n_partitions):
            sink.consume(make_message(index, n_partitions, cell_id=cell_id))

    def test_scheduled_queries_every_n(self):
        sink = CoresetTreeSink(k=3, query_every=2)
        self.feed(sink, 6)
        assert [q.upto for q in sink.prefix_queries] == [2, 4, 6]
        assert all(q.cell_id == "cell" for q in sink.prefix_queries)
        assert all(q.start == 0 for q in sink.prefix_queries)

    def test_scheduled_window_queries(self):
        sink = CoresetTreeSink(k=3, query_every=2, query_window=2)
        self.feed(sink, 6)
        assert [(q.start, q.upto) for q in sink.prefix_queries] == [
            (0, 2),
            (2, 4),
            (4, 6),
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="query_every"):
            CoresetTreeSink(k=3, query_every=0)
        with pytest.raises(ValueError, match="query_window"):
            CoresetTreeSink(k=3, query_window=0)

    def test_adhoc_queries_and_unknown_cell(self):
        sink = CoresetTreeSink(k=3)
        self.feed(sink, 4)
        answer = sink.query_now("cell")
        assert answer.cell_id == "cell"
        assert answer.upto == 4
        window = sink.query_last("cell", 2)
        assert (window.start, window.upto) == (2, 4)
        with pytest.raises(CoresetTreeError, match="nope"):
            sink.query_now("nope")

    def test_final_queries_filled_by_result(self):
        sink = CoresetTreeSink(k=3)
        self.feed(sink, 4, cell_id="a")
        self.feed(sink, 3, cell_id="b")
        sink.result()
        assert {c: q.upto for c, q in sink.final_queries.items()} == {
            "a": 4,
            "b": 3,
        }

    def test_tree_stats_aggregates_cells(self):
        sink = CoresetTreeSink(k=3, query_every=2)
        self.feed(sink, 4, cell_id="a")
        self.feed(sink, 8, cell_id="b")
        stats = sink.tree_stats
        assert stats["cells"] == 2
        assert stats["partitions"] == 12
        assert stats["max_depth"] == 3
        assert stats["scheduled_queries"] == len(sink.prefix_queries)

    def test_empty_cell_watermark_builds_no_tree(self):
        sink = CoresetTreeSink(k=3, query_every=1)
        sink.consume(Watermark("hole", n_partitions=0, payload={"dim": 2}))
        models = sink.result()
        assert models["hole"].extra["empty_cell"] is True
        assert "hole" not in sink.final_queries


class TestIncompleteCellContract:
    """Regression tests for the model.extra shape shared by both sinks
    (ISSUE 6 satellite: the shape was previously unasserted)."""

    @pytest.mark.parametrize("sink_cls", [None, CoresetTreeSink])
    def test_short_finalisation_extra_shape(self, sink_cls):
        from repro.stream.kmeans_ops import MergeKMeansSink

        cls = sink_cls or MergeKMeansSink
        sink = cls(k=2)
        # Partition 1 of 3 never arrives (a degrade drop upstream).
        for index in (0, 2):
            sink.consume(make_message(index, n_partitions=3))
        models = sink.result()
        extra = models["cell"].extra
        assert extra["incomplete"] is True
        assert isinstance(extra["expected_partitions"], int)
        assert extra["expected_partitions"] == 3
        assert extra["missing_partitions"] == [1]
        assert all(isinstance(p, int) for p in extra["missing_partitions"])
        assert sink.incomplete_cells == ["cell"]
        # The shape must survive a JSON round-trip (journal cell records).
        assert json.loads(json.dumps(extra)) == extra

    def test_complete_finalisation_has_no_incomplete_marker(self):
        sink = CoresetTreeSink(k=2)
        for index in range(3):
            sink.consume(make_message(index, n_partitions=3))
        extra = sink.result()["cell"].extra
        assert "incomplete" not in extra
        assert "missing_partitions" not in extra
        assert isinstance(extra["merge_iterations"], int)
        assert extra["partial_iterations"] == [0, 0, 0]


class TestQueryWiring:
    def cells(self):
        rng = np.random.default_rng(5)
        return {
            "a": rng.normal(size=(240, 3)),
            "b": rng.normal(size=(180, 3)) + 4.0,
        }

    def run(self, **kwargs):
        query = (
            Query.scan_cells(self.cells())
            .partition(6)
            .cluster(k=4, restarts=2)
            .merge()
            .with_seed(11)
            .with_prefix_queries(**kwargs)
        )
        return query.execute()

    def test_validation(self):
        query = Query.scan_cells(self.cells()).partition(4).cluster(k=3)
        with pytest.raises(QueryError, match="every"):
            query.with_prefix_queries(every=0)
        with pytest.raises(QueryError, match="window"):
            query.with_prefix_queries(window=0)

    def test_prefix_queries_surface_in_result(self):
        result = self.run(every=2)
        assert {q.cell_id for q in result.prefix_queries} == {"a", "b"}
        assert [q.upto for q in result.prefix_queries if q.cell_id == "a"] == [
            2,
            4,
            6,
        ]
        assert set(result.final_queries) == {"a", "b"}
        for cell, query in result.final_queries.items():
            assert query.upto == 6
            assert query.model.total_weight == pytest.approx(
                result.models[cell].weights.sum()
            )

    def test_plain_query_has_empty_prefix_fields(self):
        result = (
            Query.scan_cells(self.cells())
            .partition(4)
            .cluster(k=3, restarts=1)
            .merge()
            .with_seed(1)
            .execute()
        )
        assert result.prefix_queries == []
        assert result.final_queries == {}
        assert result.execution.metrics.tree_stats == {}

    def test_tree_stats_reach_metrics_and_trace(self):
        result = self.run(every=3)
        stats = result.execution.metrics.tree_stats
        assert stats["cells"] == 2
        assert stats["node_merges"] > 0
        text = "\n".join(result.execution.metrics.summary_lines())
        assert "coreset:" in text
        payload = metrics_to_dict(result.execution.metrics)
        assert payload["tree_stats"]["cells"] == 2
        merge_ops = [
            op for op in payload["operators"] if op["name"] == "merge"
        ]
        assert merge_ops[0]["tree_stats"]["cells"] == 2

    def test_backends_bit_identical_prefix_queries(self):
        def run(backend):
            return (
                Query.scan_cells(self.cells())
                .partition(6)
                .cluster(k=4, restarts=2)
                .merge()
                .with_seed(11)
                .with_backend(backend, workers=2)
                .with_prefix_queries(every=2)
                .execute()
            )

        threads = run("threads")
        processes = run("processes")
        by_key = lambda r: {
            (q.cell_id, q.start, q.upto): q.model for q in r.prefix_queries
        }
        t, p = by_key(threads), by_key(processes)
        assert set(t) == set(p)
        for key in t:
            np.testing.assert_array_equal(t[key].centroids, p[key].centroids)
            np.testing.assert_array_equal(t[key].weights, p[key].weights)
        for cell in threads.models:
            np.testing.assert_array_equal(
                threads.models[cell].centroids,
                processes.models[cell].centroids,
            )


class TestJournalledTree:
    def query(self, bucket_dir, run_dir):
        return (
            Query.scan_buckets(str(bucket_dir))
            .partition(4)
            .cluster(k=4, restarts=2)
            .merge()
            .with_seed(9)
            .with_prefix_queries(every=2)
            .checkpoint(run_dir, resume=True, fsync=False)
        )

    def test_tree_nodes_journaled_and_decoded(self, bucket_dir, tmp_path):
        run_dir = tmp_path / "run"
        result = self.query(bucket_dir, run_dir).execute()
        assert result.prefix_queries
        state = read_journal(run_dir / JOURNAL_FILENAME)
        assert state.tree_nodes
        merges = result.execution.metrics.tree_stats["node_merges"]
        journaled = sum(len(nodes) for nodes in state.tree_nodes.values())
        assert journaled == merges
        for nodes in state.tree_nodes.values():
            for (start, count), summary in nodes.items():
                assert count >= 2  # leaves are never journaled
                assert start % count == 0  # dyadic alignment
                assert isinstance(summary, WeightedCentroidSet)

    def test_resume_adopts_journaled_tree_nodes(self, bucket_dir, tmp_path):
        from repro.stream.errors import ExecutionError
        from repro.stream.faults import FaultPlan, FaultSpec

        run_dir = tmp_path / "run"
        faults = FaultPlan(
            seed=3,
            specs=[FaultSpec(target="merge", kind="crash", at_index=5)],
        )
        with pytest.raises(ExecutionError):
            self.query(bucket_dir, run_dir).execute(fault_plan=faults)
        state = read_journal(run_dir / JOURNAL_FILENAME)
        assert not state.complete

        resumed = self.query(bucket_dir, run_dir).execute()
        stats = resumed.execution.metrics.tree_stats
        assert stats["nodes_preloaded"] > 0

        uninterrupted = (
            Query.scan_buckets(str(bucket_dir))
            .partition(4)
            .cluster(k=4, restarts=2)
            .merge()
            .with_seed(9)
            .with_prefix_queries(every=2)
            .execute()
        )
        assert set(resumed.final_queries) == set(uninterrupted.final_queries)
        for cell in resumed.final_queries:
            np.testing.assert_array_equal(
                resumed.final_queries[cell].model.centroids,
                uninterrupted.final_queries[cell].model.centroids,
            )
            np.testing.assert_array_equal(
                resumed.final_queries[cell].model.weights,
                uninterrupted.final_queries[cell].model.weights,
            )
        for cell in uninterrupted.models:
            np.testing.assert_array_equal(
                uninterrupted.models[cell].centroids,
                resumed.models[cell].centroids,
            )

    def test_old_reader_semantics_ignore_tree_nodes(self, tmp_path):
        """tree_node records ride in the same journal without disturbing
        partition/cell decoding (forward compatibility holds both ways)."""
        from repro.stream.checkpoint import JournalWriter

        path = tmp_path / "journal.rjl"
        with JournalWriter(path, fsync=False) as writer:
            writer.append_partition(make_message(0, n_partitions=2))
            writer.append_tree_node(
                "cell", 0, 2, make_message(0).summary
            )
            writer.append_partition(make_message(1, n_partitions=2))
        state = read_journal(path)
        assert len(state.partitions["cell"]) == 2
        assert ("cell" in state.tree_nodes) and (
            (0, 2) in state.tree_nodes["cell"]
        )
        assert not state.torn


class TestCLI:
    def test_prefix_query_flags(self, bucket_dir, capsys):
        rc = main(
            [
                "query",
                str(bucket_dir),
                "--k",
                "4",
                "--chunks",
                "4",
                "--restarts",
                "2",
                "--seed",
                "3",
                "--prefix-query-every",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "prefix[" in out
        assert "coreset:" in out

    def test_window_flag(self, bucket_dir, capsys):
        rc = main(
            [
                "query",
                str(bucket_dir),
                "--k",
                "4",
                "--chunks",
                "4",
                "--restarts",
                "2",
                "--seed",
                "3",
                "--prefix-query-every",
                "2",
                "--window",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "last 2 chunk(s)" in out
