"""Tests for incremental model maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.serial import SerialKMeans
from repro.core.incremental import (
    IncrementalClusterer,
    fold_summary,
    update_model,
)
from repro.core.model import ClusterModel
from repro.core.partial import partial_kmeans
from repro.core.quality import mse as evaluate_mse


class TestUpdateModel:
    def test_mass_accumulates(self, blobs_2d):
        model = SerialKMeans(k=4, restarts=2, seed=0).fit(blobs_2d[:300])
        updated = update_model(
            model, blobs_2d[300:], rng=np.random.default_rng(0)
        )
        assert updated.weights.sum() == pytest.approx(blobs_2d.shape[0])
        assert updated.partitions == 2

    def test_k_preserved(self, blobs_2d):
        model = SerialKMeans(k=4, restarts=2, seed=0).fit(blobs_2d[:300])
        updated = update_model(
            model, blobs_2d[300:], rng=np.random.default_rng(0)
        )
        assert updated.k == 4

    def test_update_counter_increments(self, blobs_2d):
        model = SerialKMeans(k=4, restarts=2, seed=0).fit(blobs_2d[:200])
        once = update_model(model, blobs_2d[200:300], rng=np.random.default_rng(0))
        twice = update_model(once, blobs_2d[300:], rng=np.random.default_rng(1))
        assert once.extra["updates"] == 1
        assert twice.extra["updates"] == 2

    def test_new_region_gets_represented(self, rng):
        base = rng.normal(loc=0.0, scale=0.3, size=(300, 2))
        model = SerialKMeans(k=4, restarts=3, seed=0).fit(base)
        far = rng.normal(loc=50.0, scale=0.3, size=(300, 2))
        updated = update_model(model, far, rng=np.random.default_rng(0))
        nearest = np.min(((updated.centroids - 50.0) ** 2).sum(axis=1))
        assert nearest < 5.0

    def test_quality_comparable_to_batch(self, blobs_2d):
        half = blobs_2d.shape[0] // 2
        model = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d[:half])
        updated = update_model(
            model, blobs_2d[half:], rng=np.random.default_rng(0)
        )
        batch = SerialKMeans(k=4, restarts=3, seed=0).fit(blobs_2d)
        incremental_mse = evaluate_mse(blobs_2d, updated.centroids)
        batch_mse = evaluate_mse(blobs_2d, batch.centroids)
        assert incremental_mse < batch_mse * 3 + 1.0


class TestEmptyWatermark:
    """Zero-point cells (PR 3) emit ``ClusterModel.empty`` watermarks;
    the incremental path must bootstrap them, not crash on ``k == 0``."""

    def test_update_model_bootstraps_with_k(self, blobs_2d):
        watermark = ClusterModel.empty(2)
        updated = update_model(
            watermark, blobs_2d[:200], k=4, rng=np.random.default_rng(0)
        )
        assert updated.k == 4
        assert updated.weights.sum() == pytest.approx(200)
        assert updated.partitions == 1

    def test_update_model_without_k_raises(self, blobs_2d):
        with pytest.raises(ValueError, match="watermark"):
            update_model(
                ClusterModel.empty(2),
                blobs_2d[:100],
                rng=np.random.default_rng(0),
            )

    def test_adopt_watermark_is_noop(self, blobs_6d):
        clusterer = IncrementalClusterer(k=5, seed=0)
        clusterer.adopt(ClusterModel.empty(6))
        assert clusterer.points_seen == 0
        clusterer.add(blobs_6d[:100])
        assert clusterer.model().weights.sum() == pytest.approx(100)

    def test_adopt_populated_model_counts_mass(self, blobs_6d):
        base = SerialKMeans(k=5, restarts=2, seed=0).fit(blobs_6d[:300])
        clusterer = IncrementalClusterer(k=5, seed=0)
        clusterer.adopt(base)
        assert clusterer.points_seen == 300
        clusterer.add(blobs_6d[300:400])
        assert clusterer.model().weights.sum() == pytest.approx(400)


class TestFoldSummary:
    def test_deterministic(self, blobs_2d):
        model = SerialKMeans(k=4, restarts=2, seed=0).fit(blobs_2d[:300])
        summary = partial_kmeans(
            blobs_2d[300:], 4, 2, np.random.default_rng(3), source="t"
        ).summary
        once = fold_summary(model, summary)
        twice = fold_summary(model, summary)
        np.testing.assert_array_equal(once.centroids, twice.centroids)
        np.testing.assert_array_equal(once.weights, twice.weights)
        assert once.mse == twice.mse

    def test_none_model_requires_k(self, blobs_2d):
        summary = partial_kmeans(
            blobs_2d[:200], 4, 2, np.random.default_rng(3), source="t"
        ).summary
        with pytest.raises(ValueError, match="without k"):
            fold_summary(None, summary)
        folded = fold_summary(None, summary, k=4)
        assert folded.k == 4
        assert folded.weights.sum() == pytest.approx(200)


class TestIncrementalClusterer:
    def test_state_is_bounded(self, blobs_6d):
        clusterer = IncrementalClusterer(k=5, refresh_every=2, seed=0)
        for start in range(0, 600, 100):
            clusterer.add(blobs_6d[start : start + 100])
            assert len(clusterer._retained) < 2 + 1  # bounded working set
        assert clusterer.chunks_seen == 6
        assert clusterer.points_seen == 600

    def test_model_mass_conserved(self, blobs_6d):
        clusterer = IncrementalClusterer(k=5, refresh_every=3, seed=0)
        for start in range(0, 600, 150):
            clusterer.add(blobs_6d[start : start + 150])
        model = clusterer.model()
        assert model.weights.sum() == pytest.approx(600)
        assert model.partitions == 4

    def test_model_before_data_raises(self):
        with pytest.raises(ValueError, match="no data"):
            IncrementalClusterer(k=3).model()

    def test_quality_on_blobs(self, blobs_2d, blob_centers_2d):
        """Incremental folding can merge nearby blobs (the paper's
        fairness caveat), but every centroid must stay in the data's
        support and most blobs must be captured."""
        clusterer = IncrementalClusterer(k=4, restarts=3, seed=1)
        for start in range(0, 400, 80):
            clusterer.add(blobs_2d[start : start + 80])
        model = clusterer.model()
        found = sum(
            np.min(((model.centroids - center) ** 2).sum(axis=1)) < 1.0
            for center in blob_centers_2d
        )
        assert found >= 2
        # No centroid may drift outside the bounding box of the data.
        lo, hi = blobs_2d.min(axis=0) - 1.0, blobs_2d.max(axis=0) + 1.0
        assert ((model.centroids >= lo) & (model.centroids <= hi)).all()

    def test_eager_fold_mode(self, blobs_6d):
        clusterer = IncrementalClusterer(k=5, refresh_every=1, seed=0)
        clusterer.add(blobs_6d[:200])
        clusterer.add(blobs_6d[200:400])
        model = clusterer.model()
        assert model.weights.sum() == pytest.approx(400)

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            IncrementalClusterer(k=0)
        with pytest.raises(ValueError, match="refresh_every"):
            IncrementalClusterer(k=3, refresh_every=0)
