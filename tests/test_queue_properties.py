"""Model-based and concurrent property tests for SmartQueue.

Two layers:

* a sequential reference model (counter + FIFO list) run against the
  real queue under arbitrary interleavings of producer registration,
  puts, gets, and producer completion — items come out exactly once, in
  order, and end-of-stream appears iff all registered producers finished
  and the buffer drained;
* real-thread schedules — N producers / M consumers never lose or
  duplicate an item, and ``abort()`` unblocks every waiter within a
  deadline.
"""

from __future__ import annotations

import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import pytest

from repro.stream.errors import QueueClosedError
from repro.stream.queues import END_OF_STREAM, SmartQueue


class QueueMachine(RuleBasedStateMachine):
    """Random single-threaded schedules against the reference model."""

    def __init__(self) -> None:
        super().__init__()
        self.queue = SmartQueue(capacity=4)
        self.model_fifo: list[int] = []
        self.producers = 0
        self.done = 0
        self.next_item = 0
        self.received: list[int] = []

    # -- rules ----------------------------------------------------------------

    @rule()
    def register(self) -> None:
        self.queue.register_producer()
        self.producers += 1

    @precondition(lambda self: self.producers > self.done)
    @rule()
    def finish_one_producer(self) -> None:
        self.queue.producer_done()
        self.done += 1

    @precondition(
        lambda self: self.producers > self.done and len(self.model_fifo) < 4
    )
    @rule()
    def put(self) -> None:
        self.queue.put(self.next_item)
        self.model_fifo.append(self.next_item)
        self.next_item += 1

    @precondition(lambda self: self.producers == self.done)
    @rule()
    def put_after_close_rejected(self) -> None:
        if self.producers == 0:
            return  # queue not closed yet (no producers registered)
        try:
            self.queue.put(-1)
            raise AssertionError("put on a closed queue must raise")
        except QueueClosedError:
            pass

    @precondition(lambda self: len(self.model_fifo) > 0)
    @rule()
    def get(self) -> None:
        item = self.queue.get(timeout=1.0)
        assert item is not END_OF_STREAM
        expected = self.model_fifo.pop(0)
        assert item == expected
        self.received.append(item)

    @precondition(
        lambda self: self.producers > 0
        and self.producers == self.done
        and not self.model_fifo
    )
    @rule()
    def get_eos_when_drained(self) -> None:
        assert self.queue.get(timeout=1.0) is END_OF_STREAM

    # -- invariants ------------------------------------------------------------

    @invariant()
    def buffer_length_matches_model(self) -> None:
        assert len(self.queue) == len(self.model_fifo)

    @invariant()
    def received_in_order_without_loss(self) -> None:
        assert self.received == sorted(self.received)
        assert len(set(self.received)) == len(self.received)

    @invariant()
    def closed_iff_all_producers_done(self) -> None:
        expected_closed = self.producers > 0 and self.producers == self.done
        assert self.queue.closed == expected_closed


TestQueueModel = QueueMachine.TestCase
TestQueueModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


class TestConcurrentNoLossNoDup:
    """Real threads: every produced item is consumed exactly once."""

    @given(
        n_producers=st.integers(min_value=1, max_value=4),
        n_consumers=st.integers(min_value=1, max_value=4),
        items_each=st.integers(min_value=0, max_value=50),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_n_producers_m_consumers(
        self, n_producers, n_consumers, items_each, capacity
    ):
        queue = SmartQueue(capacity=capacity)
        for _ in range(n_producers):
            queue.register_producer()

        def produce(pid: int) -> None:
            for i in range(items_each):
                queue.put((pid, i))
            queue.producer_done()

        consumed: list[list[tuple[int, int]]] = [[] for _ in range(n_consumers)]

        def consume(cid: int) -> None:
            while True:
                item = queue.get(timeout=5.0)
                if item is END_OF_STREAM:
                    return
                consumed[cid].append(item)

        threads = [
            threading.Thread(target=produce, args=(pid,))
            for pid in range(n_producers)
        ] + [
            threading.Thread(target=consume, args=(cid,))
            for cid in range(n_consumers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)

        received = [item for per_consumer in consumed for item in per_consumer]
        expected = {
            (pid, i) for pid in range(n_producers) for i in range(items_each)
        }
        assert len(received) == len(expected)  # no loss, no duplication
        assert set(received) == expected
        # Per-producer order is preserved at each consumer.
        for per_consumer in consumed:
            for pid in range(n_producers):
                sequence = [i for p, i in per_consumer if p == pid]
                assert sequence == sorted(sequence)


class TestAbortUnblocksWaiters:
    DEADLINE = 2.0

    def _assert_all_released(self, threads, errors, expected):
        for t in threads:
            t.join(timeout=self.DEADLINE)
        assert not any(t.is_alive() for t in threads), (
            "abort() left waiters blocked past the deadline"
        )
        assert len(errors) == expected
        assert all(isinstance(e, QueueClosedError) for e in errors)

    def test_abort_releases_blocked_consumers(self):
        queue = SmartQueue(capacity=2)
        queue.register_producer()  # keeps the queue open (and empty)
        errors: list[Exception] = []
        started = threading.Barrier(4)

        def blocked_get() -> None:
            started.wait()
            try:
                queue.get()
            except QueueClosedError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=blocked_get) for _ in range(3)]
        for t in threads:
            t.start()
        started.wait()
        time.sleep(0.05)  # let every consumer reach the condition wait
        queue.abort()
        self._assert_all_released(threads, errors, expected=3)

    def test_abort_releases_blocked_producers(self):
        queue = SmartQueue(capacity=1)
        queue.register_producer()
        queue.put("fills-the-buffer")
        errors: list[Exception] = []
        started = threading.Barrier(4)

        def blocked_put(i: int) -> None:
            started.wait()
            try:
                queue.put(i)
            except QueueClosedError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=blocked_put, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        started.wait()
        time.sleep(0.05)  # let every producer block on backpressure
        queue.abort()
        self._assert_all_released(threads, errors, expected=3)

    def test_operations_after_abort_raise(self):
        queue = SmartQueue(capacity=2)
        queue.register_producer()
        queue.abort()
        with pytest.raises(QueueClosedError):
            queue.put(1)
        with pytest.raises(QueueClosedError):
            queue.get(timeout=0.1)
