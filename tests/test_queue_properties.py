"""Model-based property tests for SmartQueue.

A sequential reference model (counter + FIFO list) is run against the
real queue under arbitrary interleavings of producer registration, puts,
gets, and producer completion.  Invariants: items come out exactly once,
in order, and end-of-stream appears if and only if all registered
producers have finished and the buffer drained.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.stream.errors import QueueClosedError
from repro.stream.queues import END_OF_STREAM, SmartQueue


class QueueMachine(RuleBasedStateMachine):
    """Random single-threaded schedules against the reference model."""

    def __init__(self) -> None:
        super().__init__()
        self.queue = SmartQueue(capacity=4)
        self.model_fifo: list[int] = []
        self.producers = 0
        self.done = 0
        self.next_item = 0
        self.received: list[int] = []

    # -- rules ----------------------------------------------------------------

    @rule()
    def register(self) -> None:
        self.queue.register_producer()
        self.producers += 1

    @precondition(lambda self: self.producers > self.done)
    @rule()
    def finish_one_producer(self) -> None:
        self.queue.producer_done()
        self.done += 1

    @precondition(
        lambda self: self.producers > self.done and len(self.model_fifo) < 4
    )
    @rule()
    def put(self) -> None:
        self.queue.put(self.next_item)
        self.model_fifo.append(self.next_item)
        self.next_item += 1

    @precondition(lambda self: self.producers == self.done)
    @rule()
    def put_after_close_rejected(self) -> None:
        if self.producers == 0:
            return  # queue not closed yet (no producers registered)
        try:
            self.queue.put(-1)
            raise AssertionError("put on a closed queue must raise")
        except QueueClosedError:
            pass

    @precondition(lambda self: len(self.model_fifo) > 0)
    @rule()
    def get(self) -> None:
        item = self.queue.get(timeout=1.0)
        assert item is not END_OF_STREAM
        expected = self.model_fifo.pop(0)
        assert item == expected
        self.received.append(item)

    @precondition(
        lambda self: self.producers > 0
        and self.producers == self.done
        and not self.model_fifo
    )
    @rule()
    def get_eos_when_drained(self) -> None:
        assert self.queue.get(timeout=1.0) is END_OF_STREAM

    # -- invariants ------------------------------------------------------------

    @invariant()
    def buffer_length_matches_model(self) -> None:
        assert len(self.queue) == len(self.model_fifo)

    @invariant()
    def received_in_order_without_loss(self) -> None:
        assert self.received == sorted(self.received)
        assert len(set(self.received)) == len(self.received)

    @invariant()
    def closed_iff_all_producers_done(self) -> None:
        expected_closed = self.producers > 0 and self.producers == self.done
        assert self.queue.closed == expected_closed


TestQueueModel = QueueMachine.TestCase
TestQueueModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
