"""Unit tests for mini-batch k-means."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.minibatch import MiniBatchKMeans


class TestMiniBatchKMeans:
    def test_fit_returns_model(self, blobs_2d):
        model = MiniBatchKMeans(k=4, batch_size=64, seed=0).fit(blobs_2d)
        assert model.method == "minibatch"
        assert model.k == 4
        assert model.total_seconds >= 0.0

    def test_default_steps_cover_one_epoch(self, blobs_2d):
        model = MiniBatchKMeans(k=4, batch_size=100, seed=0).fit(blobs_2d)
        assert model.extra["steps"] == 4  # 400 points / 100 per batch

    def test_explicit_step_count(self, blobs_2d):
        model = MiniBatchKMeans(k=4, batch_size=50, n_batches=11, seed=0).fit(
            blobs_2d
        )
        assert model.extra["steps"] == 11

    def test_finds_most_blob_structure(self, blobs_2d, blob_centers_2d):
        """One-pass mini-batch can miss a blob on an unlucky seeding, so
        require at least 3 of the 4 blobs captured and a sane error."""
        model = MiniBatchKMeans(
            k=4, batch_size=128, n_batches=30, seed=0
        ).fit(blobs_2d)
        captured = sum(
            np.min(((model.centroids - center) ** 2).sum(axis=1)) < 2.0
            for center in blob_centers_2d
        )
        assert captured >= 3
        assert model.mse < 40.0

    def test_batch_larger_than_data(self, blobs_2d):
        model = MiniBatchKMeans(k=4, batch_size=10_000, seed=0).fit(blobs_2d)
        assert model.k == 4

    def test_deterministic(self, blobs_6d):
        a = MiniBatchKMeans(k=5, batch_size=100, seed=4).fit(blobs_6d)
        b = MiniBatchKMeans(k=5, batch_size=100, seed=4).fit(blobs_6d)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            MiniBatchKMeans(k=0)
        with pytest.raises(ValueError, match="batch_size"):
            MiniBatchKMeans(k=3, batch_size=0)
