"""Tests for the shared-nothing cluster simulator."""

from __future__ import annotations

import pytest

from repro.stream.distributed import (
    ClusterSpec,
    DistributedSimulation,
    MachineSpec,
    NetworkSpec,
    calibrate_ops_per_second,
    paper_testbed,
)


class TestSpecs:
    def test_paper_testbed_shape(self):
        cluster = paper_testbed(4)
        assert cluster.n_machines == 4
        assert cluster.machines[0].name == "pc0"

    def test_validation(self):
        with pytest.raises(ValueError, match="ops_per_second"):
            MachineSpec(name="m", ops_per_second=0)
        with pytest.raises(ValueError, match="latency"):
            NetworkSpec(latency_seconds=-1)
        with pytest.raises(ValueError, match="bandwidth"):
            NetworkSpec(bandwidth_bytes_per_second=0)
        with pytest.raises(ValueError, match="at least one machine"):
            ClusterSpec(machines=())
        with pytest.raises(ValueError, match="n_machines"):
            paper_testbed(0)

    def test_transfer_time(self):
        network = NetworkSpec(
            latency_seconds=0.001, bandwidth_bytes_per_second=1e6
        )
        assert network.transfer_seconds(1e6) == pytest.approx(1.001)


class TestPartialMergeSimulation:
    def _run(self, n_machines: int, n_chunks: int = 8):
        sim = DistributedSimulation(paper_testbed(n_machines))
        return sim.simulate_partial_merge(
            n_points=50_000,
            dim=6,
            k=40,
            n_chunks=n_chunks,
            restarts=10,
            partial_iterations=15.0,
        )

    def test_single_machine_has_no_network(self):
        report = self._run(1)
        assert report.network_bytes == 0.0
        assert report.makespan_seconds > 0

    def test_two_machines_near_double(self):
        one = self._run(1)
        two = self._run(2)
        speedup = one.makespan_seconds / two.makespan_seconds
        assert 1.7 < speedup <= 2.05

    def test_four_machines_monotone(self):
        times = [self._run(m).makespan_seconds for m in (1, 2, 4)]
        assert times[0] > times[1] > times[2]

    def test_chunk_imbalance_caps_speedup(self):
        """10 chunks on 4 machines: the 3-chunk machines bound the makespan."""
        one = self._run(1, n_chunks=10)
        four = self._run(4, n_chunks=10)
        speedup = one.makespan_seconds / four.makespan_seconds
        assert speedup <= 10 / 3 + 0.1

    def test_utilization_bounded(self):
        report = self._run(4)
        for value in report.utilization().values():
            assert 0.0 <= value <= 1.0

    def test_events_cover_all_chunks(self):
        report = self._run(2, n_chunks=6)
        partials = [e for e in report.events if e.kind == "partial"]
        assert len(partials) == 6
        merges = [e for e in report.events if e.kind == "merge"]
        assert len(merges) == 1
        assert merges[0].machine == "pc0"

    def test_merge_starts_after_last_centroid(self):
        report = self._run(3, n_chunks=6)
        merge = next(e for e in report.events if e.kind == "merge")
        last_partial_end = max(
            e.end for e in report.events if e.kind == "partial"
        )
        assert merge.start >= last_partial_end

    def test_rejects_bad_chunks(self):
        sim = DistributedSimulation(paper_testbed(2))
        with pytest.raises(ValueError, match="n_chunks"):
            sim.simulate_partial_merge(
                n_points=100, dim=2, k=4, n_chunks=0,
                restarts=1, partial_iterations=5.0,
            )


class TestMethodCSimulation:
    def test_network_cost_scales_with_iterations(self):
        """Per-iteration traffic grows linearly on top of the fixed
        initial shard distribution."""
        sim = DistributedSimulation(paper_testbed(4))
        ten = sim.simulate_method_c(50_000, 6, 40, iterations=10)
        thirty = sim.simulate_method_c(50_000, 6, 40, iterations=30)
        fifty = sim.simulate_method_c(50_000, 6, 40, iterations=50)
        first_step = thirty.network_bytes - ten.network_bytes
        second_step = fifty.network_bytes - thirty.network_bytes
        assert first_step > 0
        assert second_step == pytest.approx(first_step, rel=1e-9)

    def test_method_c_moves_more_bytes_than_partial_merge(self):
        """The paper's communication argument on equal hardware."""
        sim = DistributedSimulation(paper_testbed(4))
        partial = sim.simulate_partial_merge(
            n_points=50_000, dim=6, k=40, n_chunks=8,
            restarts=10, partial_iterations=15.0,
        )
        method_c = sim.simulate_method_c(50_000, 6, 40, iterations=40)
        assert method_c.network_bytes > partial.network_bytes

    def test_single_slave_has_no_broadcasts(self):
        sim = DistributedSimulation(paper_testbed(1))
        report = sim.simulate_method_c(10_000, 6, 40, iterations=10)
        assert report.network_bytes == 0.0

    def test_validation(self):
        sim = DistributedSimulation(paper_testbed(2))
        with pytest.raises(ValueError, match="iterations"):
            sim.simulate_method_c(100, 2, 4, iterations=0)
        with pytest.raises(ValueError, match="migration_fraction"):
            sim.simulate_method_c(100, 2, 4, iterations=5, migration_fraction=2.0)


class TestReportInvariants:
    def test_zero_makespan_utilization_is_zero(self):
        from repro.stream.distributed import SimReport

        report = SimReport(
            makespan_seconds=0.0, compute_seconds={"pc0": 0.0, "pc1": 0.0}
        )
        assert report.utilization() == {"pc0": 0.0, "pc1": 0.0}

    def test_busy_time_never_exceeds_makespan(self):
        sim = DistributedSimulation(paper_testbed(4))
        report = sim.simulate_partial_merge(
            n_points=50_000, dim=6, k=40, n_chunks=8,
            restarts=10, partial_iterations=15.0,
        )
        for busy in report.compute_seconds.values():
            assert busy <= report.makespan_seconds + 1e-12

    def test_events_have_positive_extent(self):
        sim = DistributedSimulation(paper_testbed(3))
        report = sim.simulate_partial_merge(
            n_points=20_000, dim=6, k=20, n_chunks=6,
            restarts=4, partial_iterations=10.0,
        )
        for event in report.events:
            assert event.end >= event.start >= 0.0
            assert event.kind in {"transfer", "partial", "merge", "broadcast"}


class TestMethodCBranches:
    def test_zero_migration_fraction_skips_point_traffic(self):
        """With no migrating points, traffic is shards + mean broadcasts."""
        sim = DistributedSimulation(paper_testbed(4))
        report = sim.simulate_method_c(
            40_000, 6, 40, iterations=5, migration_fraction=0.0
        )
        point_bytes = 6 * 8
        shard_bytes = (40_000 / 4) * point_bytes * 3
        mean_bytes = 40 * 7 * 8
        expected = shard_bytes + mean_bytes * 4 * 3 * 5
        assert report.network_bytes == pytest.approx(expected)

    def test_sub_single_point_migration_is_dropped(self):
        """A migration volume below one point moves no bytes."""
        sim = DistributedSimulation(paper_testbed(2))
        tiny = sim.simulate_method_c(
            10, 2, 2, iterations=3, migration_fraction=0.05
        )
        none = sim.simulate_method_c(
            10, 2, 2, iterations=3, migration_fraction=0.0
        )
        assert tiny.network_bytes == none.network_bytes

    def test_more_slaves_broadcast_more(self):
        two = DistributedSimulation(paper_testbed(2)).simulate_method_c(
            40_000, 6, 40, iterations=10, migration_fraction=0.0
        )
        four = DistributedSimulation(paper_testbed(4)).simulate_method_c(
            40_000, 6, 40, iterations=10, migration_fraction=0.0
        )
        # Broadcast traffic is quadratic in the slave count; even after
        # subtracting the (larger) shard distribution it must dominate.
        assert four.network_bytes > two.network_bytes


class TestCalibration:
    def test_calibration_positive_and_plausible(self):
        ops = calibrate_ops_per_second(n_points=2_000, k=10)
        assert 1e5 < ops < 1e12
