"""Tests for the experiment harness, tables, figures and speed-up."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.configs import (
    ExperimentConfig,
    paper_config,
    quick_config,
    smoke_config,
)
from repro.experiments.figures import figure6, figure7, figure8, render_figure
from repro.experiments.harness import run_case, run_grid
from repro.experiments.speedup import render_speedup, run_speedup_experiment
from repro.experiments.tables import render_table2, table2_rows


@pytest.fixture(scope="module")
def smoke_results():
    return run_grid(smoke_config())


class TestConfigs:
    def test_paper_config_matches_paper(self):
        config = paper_config()
        assert config.sizes == (250, 2_500, 12_500, 25_000, 50_000, 75_000)
        assert config.k == 40
        assert config.restarts == 10
        assert config.splits == (5, 10)
        assert config.versions == 5

    def test_quick_config_preserves_structure(self):
        config = quick_config()
        assert config.k == 40
        assert config.splits == (5, 10)
        assert config.sizes == tuple(sorted(config.sizes))

    def test_cases_order(self):
        assert smoke_config().cases == ("serial", "3split", "5split")

    def test_validation(self):
        with pytest.raises(ValueError, match="sizes"):
            ExperimentConfig(sizes=())
        with pytest.raises(ValueError, match="split"):
            ExperimentConfig(splits=(1,))
        with pytest.raises(ValueError, match=">= k"):
            ExperimentConfig(sizes=(10,), k=40)


class TestRunCase:
    def test_serial_case(self, blobs_6d):
        config = smoke_config()
        case_mse, paper_mse, t_partial, t_merge, t_overall = run_case(
            blobs_6d, "serial", config, seed=0
        )
        assert case_mse > 0
        assert paper_mse == case_mse  # same metric for serial
        assert t_partial == 0.0 and t_merge == 0.0
        assert t_overall > 0

    def test_split_case(self, blobs_6d):
        config = smoke_config()
        case_mse, paper_mse, t_partial, t_merge, t_overall = run_case(
            blobs_6d, "3split", config, seed=0
        )
        assert case_mse > 0
        assert paper_mse >= 0  # E_pm over weighted centroids
        assert t_partial > 0
        assert t_overall >= t_merge

    def test_unknown_case(self, blobs_6d):
        with pytest.raises(ValueError, match="unknown case"):
            run_case(blobs_6d, "weird", smoke_config(), seed=0)


class TestRunGrid:
    def test_row_count(self, smoke_results):
        config = smoke_results.config
        expected = len(config.sizes) * config.versions * len(config.cases)
        assert len(smoke_results.rows) == expected

    def test_mean_over_versions(self, smoke_results):
        aggregated = smoke_results.mean_over_versions(
            smoke_results.config.sizes[0], "serial"
        )
        assert aggregated.version == -1
        assert aggregated.mse > 0

    def test_missing_aggregation_raises(self, smoke_results):
        with pytest.raises(KeyError):
            smoke_results.mean_over_versions(999_999, "serial")

    def test_series_alignment(self, smoke_results):
        xs, ys = smoke_results.series("serial", "overall_seconds")
        assert xs == list(smoke_results.config.sizes)
        assert len(ys) == len(xs)

    def test_progress_callback_invoked(self):
        lines = []
        run_grid(smoke_config(), progress=lines.append)
        assert len(lines) > 0
        assert any("serial" in line for line in lines)


class TestTable2:
    def test_rows_cover_grid(self, smoke_results):
        rows = table2_rows(smoke_results)
        config = smoke_results.config
        assert len(rows) == len(config.sizes) * len(config.cases)

    def test_largest_first(self, smoke_results):
        rows = table2_rows(smoke_results)
        assert rows[0]["data_pts"] == max(smoke_results.config.sizes)

    def test_render_contains_all_cases(self, smoke_results):
        text = render_table2(smoke_results)
        for case in smoke_results.config.cases:
            assert case in text
        assert "Min MSE" in text


class TestFigures:
    def test_figure6_series(self, smoke_results):
        figure = figure6(smoke_results)
        assert set(figure.series) == set(smoke_results.config.cases)
        assert figure.x == list(smoke_results.config.sizes)

    def test_figure7_is_mse(self, smoke_results):
        figure = figure7(smoke_results)
        assert "MSE" in figure.y_label

    def test_figure8_excludes_serial(self, smoke_results):
        figure = figure8(smoke_results)
        assert "serial" not in figure.series
        assert len(figure.series) == 2

    def test_render_is_plain_text(self, smoke_results):
        text = render_figure(figure6(smoke_results))
        assert "Figure 6" in text
        assert len(text.splitlines()) > 10


class TestSpeedup:
    def test_speedup_points(self):
        points = run_speedup_experiment(
            n_points=600,
            k=6,
            restarts=1,
            n_chunks=4,
            clone_counts=(1, 2),
            max_iter=20,
        )
        assert [p.clones for p in points] == [1, 2]
        assert points[0].speedup == pytest.approx(1.0)
        assert all(p.wall_seconds > 0 for p in points)

    def test_render(self):
        points = run_speedup_experiment(
            n_points=400, k=4, restarts=1, n_chunks=2,
            clone_counts=(1,), max_iter=10,
        )
        text = render_speedup(points)
        assert "clones" in text

    def test_rejects_bad_clone_counts(self):
        with pytest.raises(ValueError, match="clone counts"):
            run_speedup_experiment(clone_counts=(0,))


class TestReport:
    def test_generate_report_reuses_results(self, tmp_path, smoke_results):
        from repro.experiments.report import generate_report

        path = generate_report(
            smoke_results.config,
            tmp_path / "r.md",
            results=smoke_results,
            include_speedup=False,
            include_convergence=False,
        )
        text = path.read_text()
        for heading in ("Table 2", "Figure 6", "Figure 7", "Figure 8"):
            assert heading in text

    def test_generate_report_progress_callback(self, tmp_path, smoke_results):
        from repro.experiments.report import generate_report

        messages: list[str] = []
        generate_report(
            smoke_results.config,
            tmp_path / "r.md",
            results=smoke_results,
            include_speedup=False,
            include_convergence=False,
            progress=messages.append,
        )
        assert any("report written" in m for m in messages)


class TestFigure7Fair:
    def test_uses_raw_metric(self, smoke_results):
        from repro.experiments.figures import figure7_fair

        figure = figure7_fair(smoke_results)
        assert "raw points" in figure.y_label
        assert set(figure.series) == set(smoke_results.config.cases)

    def test_serial_series_identical_across_metrics(self, smoke_results):
        """For the serial case the paper metric and the raw metric are
        the same thing; the two figures must agree on that curve."""
        from repro.experiments.figures import figure7, figure7_fair

        paper = figure7(smoke_results).series["serial"]
        fair = figure7_fair(smoke_results).series["serial"]
        assert paper == fair

    def test_split_paper_metric_at_most_raw(self, smoke_results):
        """E_pm quantizes already-quantized weighted centroids, so the
        paper metric can only be <= the raw-point metric per case."""
        from repro.experiments.figures import figure7, figure7_fair

        paper = figure7(smoke_results)
        fair = figure7_fair(smoke_results)
        for case in paper.series:
            if case == "serial":
                continue
            for paper_value, fair_value in zip(
                paper.series[case], fair.series[case]
            ):
                assert paper_value <= fair_value + 1e-9
